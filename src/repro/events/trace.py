"""The :class:`Trace` container: everything the detectors need, nothing more.

A trace is the post-mortem log described in Section 5 of the paper: the
chronologically ordered list of target (kernel) events and data-operation
events, together with the number of target devices.  The detection
algorithms, the optimization-potential estimator and the space-overhead
accounting all consume this object.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro.events.records import (
    DATA_OP_EVENT_BYTES,
    TARGET_EVENT_BYTES,
    AllocationPair,
    DataOpEvent,
    DataOpKind,
    TargetEvent,
    get_alloc_delete_pairs,
)

_TRACE_FORMAT_VERSION = 1


@dataclass
class Trace:
    """An ordered log of OpenMP target events for one program execution."""

    num_devices: int = 1
    target_events: list[TargetEvent] = field(default_factory=list)
    data_op_events: list[DataOpEvent] = field(default_factory=list)
    program_name: Optional[str] = None
    #: Total virtual runtime of the traced program in seconds (set by the
    #: runtime simulator / collector; falls back to the last event end time).
    total_runtime: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def host_device_num(self) -> int:
        """OpenMP initial-device number used for the host in this trace."""
        return self.num_devices

    @property
    def end_time(self) -> float:
        """Timestamp of the latest event end (0.0 for an empty trace).

        The maximum is taken over *all* events, not just the last list
        element: events are appended in chronological start order, but an
        earlier event with a long duration can end after the last one.
        """
        last = 0.0
        if self.target_events:
            last = max(last, max(e.end_time for e in self.target_events))
        if self.data_op_events:
            last = max(last, max(e.end_time for e in self.data_op_events))
        return last

    @property
    def num_data_op_events(self) -> int:
        return len(self.data_op_events)

    @property
    def num_target_events(self) -> int:
        return len(self.target_events)

    @property
    def runtime(self) -> float:
        """Program runtime: explicit total if known, else the last event end."""
        if self.total_runtime is not None:
            return self.total_runtime
        return self.end_time

    def __len__(self) -> int:
        return len(self.target_events) + len(self.data_op_events)

    def is_empty(self) -> bool:
        return len(self) == 0

    # ------------------------------------------------------------------ #
    # Views used by the detectors
    # ------------------------------------------------------------------ #
    def transfers(self) -> list[DataOpEvent]:
        """All transfer events, in chronological order."""
        return [e for e in self.data_op_events if e.is_transfer]

    def transfers_to_devices(self) -> list[DataOpEvent]:
        """Host-to-device transfer events only."""
        return [e for e in self.data_op_events if e.kind is DataOpKind.TRANSFER_TO_DEVICE]

    def transfers_from_devices(self) -> list[DataOpEvent]:
        """Device-to-host transfer events only."""
        return [e for e in self.data_op_events if e.kind is DataOpKind.TRANSFER_FROM_DEVICE]

    def allocations(self) -> list[DataOpEvent]:
        return [e for e in self.data_op_events if e.is_alloc]

    def deletions(self) -> list[DataOpEvent]:
        return [e for e in self.data_op_events if e.is_delete]

    def alloc_delete_pairs(self) -> list[AllocationPair]:
        return get_alloc_delete_pairs(self.data_op_events)

    def kernel_events(self) -> list[TargetEvent]:
        """Target events that execute device code, in chronological order."""
        return [e for e in self.target_events if e.executes_kernel]

    def events_for_device(self, device_num: int) -> "Trace":
        """Return a sub-trace containing only events touching ``device_num``."""
        sub = Trace(num_devices=self.num_devices, program_name=self.program_name)
        sub.target_events = [e for e in self.target_events if e.device_num == device_num]
        sub.data_op_events = [
            e
            for e in self.data_op_events
            if device_num in (e.src_device_num, e.dest_device_num)
        ]
        sub.total_runtime = self.total_runtime
        return sub

    # ------------------------------------------------------------------ #
    # Aggregate statistics
    # ------------------------------------------------------------------ #
    def total_bytes_transferred(self) -> int:
        return sum(e.nbytes for e in self.data_op_events if e.is_transfer)

    def total_transfer_time(self) -> float:
        return sum(e.duration for e in self.data_op_events if e.is_transfer)

    def total_alloc_time(self) -> float:
        return sum(e.duration for e in self.data_op_events if e.is_alloc or e.is_delete)

    def total_kernel_time(self) -> float:
        return sum(e.duration for e in self.kernel_events())

    def space_overhead_bytes(self) -> int:
        """Collector memory footprint per Section 7.4 (72 B + 24 B accounting)."""
        return (
            DATA_OP_EVENT_BYTES * len(self.data_op_events)
            + TARGET_EVENT_BYTES * len(self.target_events)
        )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def append_target_event(self, event: TargetEvent) -> None:
        self.target_events.append(event)

    def append_data_op_event(self, event: DataOpEvent) -> None:
        self.data_op_events.append(event)

    def extend(self, other: "Trace") -> None:
        """Append another trace's events (used to stitch phases together).

        The other trace must use the same device count; its events must not
        precede this trace's last event.
        """
        if other.num_devices != self.num_devices:
            raise ValueError("cannot merge traces with different device counts")
        self.target_events.extend(other.target_events)
        self.data_op_events.extend(other.data_op_events)
        if other.total_runtime is not None:
            base = self.total_runtime or 0.0
            self.total_runtime = max(base, other.total_runtime)

    def to_columnar(self):
        """Convert to the structure-of-arrays representation."""
        from repro.events.columnar import ColumnarTrace

        return ColumnarTrace.from_trace(self)

    def sorted_copy(self) -> "Trace":
        """Return a copy with events re-sorted chronologically (stable)."""
        out = Trace(
            num_devices=self.num_devices,
            program_name=self.program_name,
            total_runtime=self.total_runtime,
        )
        out.target_events = sorted(self.target_events, key=lambda e: (e.start_time, e.seq))
        out.data_op_events = sorted(self.data_op_events, key=lambda e: (e.start_time, e.seq))
        return out

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "format_version": _TRACE_FORMAT_VERSION,
            "program_name": self.program_name,
            "num_devices": self.num_devices,
            "total_runtime": self.total_runtime,
            "target_events": [e.to_dict() for e in self.target_events],
            "data_op_events": [e.to_dict() for e in self.data_op_events],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Trace":
        version = d.get("format_version", _TRACE_FORMAT_VERSION)
        if version != _TRACE_FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        trace = cls(
            num_devices=int(d["num_devices"]),
            program_name=d.get("program_name"),
            total_runtime=d.get("total_runtime"),
        )
        trace.target_events = [TargetEvent.from_dict(e) for e in d.get("target_events", [])]
        trace.data_op_events = [DataOpEvent.from_dict(e) for e in d.get("data_op_events", [])]
        return trace

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json(indent=2), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # ------------------------------------------------------------------ #
    # Iteration
    # ------------------------------------------------------------------ #
    def all_events_chronological(self) -> Iterator[DataOpEvent | TargetEvent]:
        """Yield every event interleaved in chronological (start time) order."""
        merged: list[tuple[float, int, DataOpEvent | TargetEvent]] = []
        for e in self.target_events:
            merged.append((e.start_time, e.seq, e))
        for e in self.data_op_events:
            merged.append((e.start_time, e.seq, e))
        merged.sort(key=lambda t: (t[0], t[1]))
        for _, _, e in merged:
            yield e

    def summary(self) -> dict:
        """Summary statistics useful for reports and tests."""
        return {
            "program_name": self.program_name,
            "num_devices": self.num_devices,
            "num_target_events": len(self.target_events),
            "num_kernel_events": len(self.kernel_events()),
            "num_data_op_events": len(self.data_op_events),
            "num_transfers": len(self.transfers()),
            "num_allocations": len(self.allocations()),
            "bytes_transferred": self.total_bytes_transferred(),
            "transfer_time": self.total_transfer_time(),
            "alloc_time": self.total_alloc_time(),
            "kernel_time": self.total_kernel_time(),
            "runtime": self.runtime,
            "space_overhead_bytes": self.space_overhead_bytes(),
        }
