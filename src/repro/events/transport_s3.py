"""Real S3-compatible object storage behind the :class:`ShardTransport` protocol.

:class:`S3ObjectStoreTransport` is the production sibling of the in-memory
:class:`~repro.events.transport.FakeObjectStoreTransport`: the same S3-like
primitive surface (whole-object put/get, server-side prefix listing,
idempotent delete, copy-then-delete rename), but issued against a genuine
S3 API through boto3 — AWS itself, or any S3-compatible endpoint (MinIO,
moto, localstack) selected with ``endpoint_url`` or the
``OMPDATAPERF_S3_ENDPOINT`` environment variable.

Semantics the rest of the stack relies on:

* ``write_blob`` is an atomic publish (S3 puts are whole-object: readers
  see the old object or the new one, never a torn prefix).  Payloads at or
  above ``multipart_threshold`` go through the multipart-upload API in
  ``multipart_part_size`` chunks — the upload only becomes visible at
  ``CompleteMultipartUpload``, so the atomic-publish contract holds for
  arbitrarily large shards too.
* ``rename_blob`` is S3's non-atomic copy-then-delete.  A *claim* rename
  racing another claimant therefore resolves exactly like the fake
  transport: the loser's copy fails on the vanished source and surfaces as
  :class:`TransportError` — so ``try_claim_blob`` returns ``False`` and a
  queue's second claimer gets ``None``, never an exception.  Both racers
  can transiently hold a copy; claimed work must be idempotent (the
  distributed engine's folds are).
* Every operation runs under a **bounded retry loop**: throttling
  (``SlowDown`` and friends), HTTP 5xx and connection drops are retried up
  to ``max_attempts`` times with exponential backoff and uniform jitter in
  ``[backoff/2, backoff]``; anything else (``NoSuchKey``, access denied)
  fails immediately as :class:`TransportError`.  :meth:`stats` exposes the
  per-operation request counts and the retry/throttle/backoff counters so
  tests — and dashboards — can see exactly how hostile the endpoint was.

The transport is picklable (the boto3 client is rebuilt lazily after
unpickling, with credentials resolved from the environment as usual), and
``spec()`` round-trips through
:func:`~repro.events.transport.transport_from_spec` so process-engine and
distributed workers can reopen an s3-backed store from its small spec.
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Optional

from repro.events.transport import TransportError, _check_blob_name

try:  # gated: the core library only needs numpy; boto3 is optional
    import boto3
    from botocore.config import Config as _BotoConfig
    from botocore.exceptions import BotoCoreError, ClientError
except ImportError:  # pragma: no cover - exercised only without boto3
    boto3 = None
    _BotoConfig = None
    BotoCoreError = ()  # type: ignore[assignment]
    ClientError = ()  # type: ignore[assignment]

#: ``s3://bucket/prefix`` spec strings accepted everywhere a store path is.
S3_URL_PREFIX = "s3://"

#: Endpoint override (MinIO, localstack) when none is passed explicitly.
ENDPOINT_ENV = "OMPDATAPERF_S3_ENDPOINT"

#: Payloads at or above this size upload through the multipart API.
DEFAULT_MULTIPART_THRESHOLD = 8 * 1024 * 1024

#: Part size for multipart uploads (must stay >= S3's 5 MiB minimum).
DEFAULT_MULTIPART_PART_SIZE = 8 * 1024 * 1024

#: Error codes retried as throttling (counted separately in ``stats()``).
_THROTTLE_CODES = frozenset({
    "SlowDown",
    "Throttling",
    "ThrottlingException",
    "RequestLimitExceeded",
    "TooManyRequestsException",
    "ProvisionedThroughputExceededException",
})

#: Error codes retried as transient server failures.
_SERVER_ERROR_CODES = frozenset({
    "InternalError",
    "ServiceUnavailable",
    "RequestTimeout",
})

#: Codes that mean "no such object" rather than a failed request.
_MISSING_CODES = frozenset({"NoSuchKey", "404", "NotFound"})

_MISSING_BUCKET_CODES = frozenset({"NoSuchBucket"})


def is_s3_url(text) -> bool:
    """True when ``text`` is an ``s3://bucket[/prefix]`` spec string."""
    return isinstance(text, str) and text.startswith(S3_URL_PREFIX)


def parse_s3_url(url: str) -> tuple[str, str]:
    """Split ``s3://bucket/prefix`` into ``(bucket, prefix)``.

    The prefix may be empty; a trailing slash is normalised away (the
    transport re-appends exactly one when keying blobs).
    """
    if not is_s3_url(url):
        raise ValueError(f"not an s3:// URL: {url!r}")
    rest = url[len(S3_URL_PREFIX):]
    bucket, _, prefix = rest.partition("/")
    if not bucket:
        raise ValueError(f"s3 URL {url!r} names no bucket")
    return bucket, prefix.strip("/")


class S3ObjectStoreTransport:
    """Blobs as objects under one ``s3://bucket/prefix`` namespace."""

    kind = "s3"

    def __init__(
        self,
        bucket: str,
        prefix: str = "",
        *,
        endpoint_url: Optional[str] = None,
        region: Optional[str] = None,
        multipart_threshold: int = DEFAULT_MULTIPART_THRESHOLD,
        multipart_part_size: int = DEFAULT_MULTIPART_PART_SIZE,
        max_attempts: int = 5,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        create: bool = False,
        client=None,
    ) -> None:
        if boto3 is None and client is None:
            raise RuntimeError(
                "s3 transports need boto3, which is not installed; "
                "`pip install boto3` (and `moto` for offline tests)"
            )
        if not bucket:
            raise ValueError("an s3 transport needs a bucket name")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if multipart_part_size < 1:
            raise ValueError("multipart_part_size must be positive")
        self.bucket = bucket
        self.prefix = prefix.strip("/")
        self.endpoint_url = endpoint_url or os.environ.get(ENDPOINT_ENV) or None
        self.region = region
        self.multipart_threshold = int(multipart_threshold)
        self.multipart_part_size = int(multipart_part_size)
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._client = client
        self._client_lock = threading.Lock()
        # Injectable for tests: the backoff sleeper and the jitter source.
        self._sleep = time.sleep
        self._jitter = random.Random()
        self._reset_stats()
        if create:
            self.ensure_bucket()

    # -- lifecycle -------------------------------------------------------- #
    def _reset_stats(self) -> None:
        self._stats = {
            "ops": {},
            "retries": 0,
            "throttled": 0,
            "server_errors": 0,
            "connection_errors": 0,
            "backoff_seconds": 0.0,
            "giveups": 0,
            "multipart_uploads": 0,
        }

    def stats(self) -> dict:
        """A snapshot of the request/retry counter block.

        ``ops`` counts logical operations by kind (``get``, ``put``,
        ``list``, ``delete``, ``head``, ``copy``, ``multipart``);
        ``retries`` counts re-issued requests, split into ``throttled``
        / ``server_errors`` / ``connection_errors`` by cause;
        ``backoff_seconds`` is the total jittered sleep spent between
        attempts and ``giveups`` the operations that exhausted
        ``max_attempts``.
        """
        out = dict(self._stats)
        out["ops"] = dict(self._stats["ops"])
        return out

    @property
    def client(self):
        """The boto3 S3 client, built lazily (and rebuilt after pickling)."""
        if self._client is None:
            with self._client_lock:
                if self._client is None:
                    # botocore has its own retry layer; collapse it to one
                    # attempt so THIS transport's bounded/jittered loop is
                    # the only retry policy (and its counters are honest).
                    self._client = boto3.client(
                        "s3",
                        endpoint_url=self.endpoint_url,
                        region_name=self.region,
                        config=_BotoConfig(retries={"max_attempts": 1}),
                    )
        return self._client

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_client"] = None  # rebuilt lazily from env credentials
        state["_client_lock"] = None
        state["_sleep"] = None
        state["_jitter"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._client_lock = threading.Lock()
        self._sleep = time.sleep
        self._jitter = random.Random()

    def ensure_bucket(self) -> None:
        """Create the bucket if it does not exist (idempotent)."""
        try:
            self._call("head", lambda: self.client.head_bucket(Bucket=self.bucket))
            return
        except TransportError:
            pass
        try:
            kwargs = {"Bucket": self.bucket}
            if self.region and self.region != "us-east-1":
                kwargs["CreateBucketConfiguration"] = {
                    "LocationConstraint": self.region
                }
            self._call("put", lambda: self.client.create_bucket(**kwargs))
        except TransportError as exc:
            # A concurrent creator got there first: that is success.
            if "BucketAlready" not in str(exc):
                raise

    # -- bounded retry with jittered backoff ------------------------------ #
    def _classify(self, exc) -> Optional[str]:
        """The retry class of an exception, or ``None`` when not retryable."""
        if isinstance(exc, ClientError):
            error = exc.response.get("Error", {})
            code = str(error.get("Code", ""))
            status = exc.response.get("ResponseMetadata", {}).get("HTTPStatusCode")
            if code in _THROTTLE_CODES or status == 429:
                return "throttled"
            if code in _SERVER_ERROR_CODES or (
                isinstance(status, int) and status >= 500
            ):
                return "server_errors"
            return None
        if isinstance(exc, BotoCoreError):
            # Connection resets, endpoint timeouts: worth another attempt.
            return "connection_errors"
        return None

    def _call(self, op: str, fn):
        """Run one request under the bounded retry/backoff loop."""
        ops = self._stats["ops"]
        ops[op] = ops.get(op, 0) + 1
        last: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except (ClientError, BotoCoreError) as exc:
                cause = self._classify(exc)
                if cause is None:
                    raise self._translate(op, exc) from exc
                self._stats[cause] += 1
                last = exc
                if attempt + 1 >= self.max_attempts:
                    break
                self._stats["retries"] += 1
                ceiling = min(self.backoff_cap, self.backoff_base * (2.0**attempt))
                pause = ceiling * self._jitter.uniform(0.5, 1.0)
                self._stats["backoff_seconds"] += pause
                self._sleep(pause)
        self._stats["giveups"] += 1
        raise TransportError(
            f"{self.describe()}: {op} failed after {self.max_attempts} "
            f"attempt(s): {last}"
        ) from last

    def _translate(self, op: str, exc) -> TransportError:
        code = ""
        if isinstance(exc, ClientError):
            code = str(exc.response.get("Error", {}).get("Code", ""))
        if code in _MISSING_CODES:
            return TransportError(f"{self.describe()}: no object ({op}): {exc}")
        if code in _MISSING_BUCKET_CODES:
            return TransportError(
                f"{self.describe()}: no such bucket {self.bucket!r} ({op}): {exc}"
            )
        return TransportError(f"{self.describe()}: {op} failed: {exc}")

    # -- keys ------------------------------------------------------------- #
    def _key(self, name: str) -> str:
        name = _check_blob_name(name)
        return f"{self.prefix}/{name}" if self.prefix else name

    def _unkey(self, key: str) -> str:
        if self.prefix:
            return key[len(self.prefix) + 1:]
        return key

    def _is_missing(self, exc) -> bool:
        if not isinstance(exc, ClientError):
            return False
        code = str(exc.response.get("Error", {}).get("Code", ""))
        return code in _MISSING_CODES or code in _MISSING_BUCKET_CODES

    # -- S3-like primitive surface ---------------------------------------- #
    def put_object(self, name: str, body: bytes) -> None:
        key = self._key(name)
        if len(body) >= self.multipart_threshold:
            self._multipart_put(key, body)
            return
        self._call(
            "put", lambda: self.client.put_object(Bucket=self.bucket, Key=key, Body=body)
        )

    def _multipart_put(self, key: str, body: bytes) -> None:
        """Upload one object in parts; visible only at completion."""
        self._stats["multipart_uploads"] += 1
        upload = self._call(
            "multipart",
            lambda: self.client.create_multipart_upload(Bucket=self.bucket, Key=key),
        )
        upload_id = upload["UploadId"]
        try:
            parts = []
            for number, lo in enumerate(
                range(0, len(body), self.multipart_part_size), start=1
            ):
                chunk = body[lo: lo + self.multipart_part_size]
                part = self._call(
                    "multipart",
                    lambda n=number, c=chunk: self.client.upload_part(
                        Bucket=self.bucket,
                        Key=key,
                        UploadId=upload_id,
                        PartNumber=n,
                        Body=c,
                    ),
                )
                parts.append({"PartNumber": number, "ETag": part["ETag"]})
            self._call(
                "multipart",
                lambda: self.client.complete_multipart_upload(
                    Bucket=self.bucket,
                    Key=key,
                    UploadId=upload_id,
                    MultipartUpload={"Parts": parts},
                ),
            )
        except BaseException:
            # Best effort: an abandoned upload is invisible but billable.
            try:
                self.client.abort_multipart_upload(
                    Bucket=self.bucket, Key=key, UploadId=upload_id
                )
            except (ClientError, BotoCoreError):  # pragma: no cover - cleanup
                pass
            raise

    def get_object(self, name: str) -> bytes:
        key = self._key(name)

        def fetch() -> bytes:
            response = self.client.get_object(Bucket=self.bucket, Key=key)
            return response["Body"].read()

        return self._call("get", fetch)

    def list_objects(self, prefix: str = "") -> list[str]:
        """Blob names under ``prefix``, answered server-side in one listing.

        ``prefix`` is blob-name-level (the distributed queue's
        ``tasks/`` / ``results/`` namespaces); the bucket-level key prefix
        is applied underneath.  A missing bucket lists as empty — workers
        may poll a queue location into existence.
        """
        scope = f"{self.prefix}/{prefix}" if self.prefix else prefix

        def scan() -> list[str]:
            names: list[str] = []
            paginator = self.client.get_paginator("list_objects_v2")
            for page in paginator.paginate(Bucket=self.bucket, Prefix=scope):
                for entry in page.get("Contents", ()):
                    names.append(self._unkey(entry["Key"]))
            return sorted(names)

        try:
            return self._call("list", scan)
        except TransportError as exc:
            if "no such bucket" in str(exc):
                return []
            raise

    def delete_object(self, name: str) -> None:
        key = self._key(name)
        try:
            self._call(
                "delete",
                lambda: self.client.delete_object(Bucket=self.bucket, Key=key),
            )
        except TransportError as exc:
            # S3 deletes of missing objects already succeed; a missing
            # bucket degrades to the same idempotent no-op.
            if "no such bucket" not in str(exc):
                raise

    def head_object(self, name: str) -> dict:
        key = self._key(name)
        response = self._call(
            "head", lambda: self.client.head_object(Bucket=self.bucket, Key=key)
        )
        return {"ContentLength": int(response["ContentLength"])}

    def copy_object(self, src: str, dst: str) -> None:
        self._call(
            "copy",
            lambda: self.client.copy_object(
                Bucket=self.bucket,
                Key=self._key(dst),
                CopySource={"Bucket": self.bucket, "Key": self._key(src)},
            ),
        )

    # -- ShardTransport surface ------------------------------------------- #
    def list_blobs(self) -> list[str]:
        return self.list_objects()

    def read_blob(self, name: str) -> bytes:
        return self.get_object(name)

    def write_blob(self, name: str, data: bytes) -> None:
        self.put_object(name, data)

    def delete_blob(self, name: str) -> None:
        self.delete_object(name)

    def rename_blob(self, src: str, dst: str) -> None:
        # Object stores have no rename: copy, then delete the source.  A
        # lost claim race surfaces here as the copy's missing-source
        # TransportError, which try_claim_blob converts to False.
        self.copy_object(src, dst)
        self.delete_object(src)

    def blob_exists(self, name: str) -> bool:
        key = self._key(name)
        try:
            self._call(
                "head", lambda: self.client.head_object(Bucket=self.bucket, Key=key)
            )
        except TransportError as exc:
            cause = exc.__cause__
            if cause is not None and self._is_missing(cause):
                return False
            if "no object" in str(exc) or "no such bucket" in str(exc):
                return False
            raise
        return True

    def blob_size(self, name: str) -> int:
        return int(self.head_object(name)["ContentLength"])

    def spec(self) -> dict:
        return {
            "kind": self.kind,
            "bucket": self.bucket,
            "prefix": self.prefix,
            "endpoint_url": self.endpoint_url,
            "region": self.region,
            "multipart_threshold": self.multipart_threshold,
            "multipart_part_size": self.multipart_part_size,
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
        }

    def describe(self) -> str:
        return f"s3://{self.bucket}/{self.prefix}" if self.prefix else f"s3://{self.bucket}"

    # -- construction helpers --------------------------------------------- #
    @classmethod
    def from_url(cls, url: str, **kwargs) -> "S3ObjectStoreTransport":
        """Build a transport from an ``s3://bucket/prefix`` spec string."""
        bucket, prefix = parse_s3_url(url)
        return cls(bucket, prefix, **kwargs)

    @classmethod
    def from_spec(cls, spec: dict) -> "S3ObjectStoreTransport":
        """Rebuild from :meth:`spec` output (the worker-side inverse)."""
        return cls(
            spec["bucket"],
            spec.get("prefix", ""),
            endpoint_url=spec.get("endpoint_url"),
            region=spec.get("region"),
            multipart_threshold=spec.get(
                "multipart_threshold", DEFAULT_MULTIPART_THRESHOLD
            ),
            multipart_part_size=spec.get(
                "multipart_part_size", DEFAULT_MULTIPART_PART_SIZE
            ),
            max_attempts=spec.get("max_attempts", 5),
            backoff_base=spec.get("backoff_base", 0.05),
            backoff_cap=spec.get("backoff_cap", 2.0),
        )
