"""Event record types.

These mirror the information delivered by the OMPT EMI callbacks that
OMPDataPerf requires (``ompt_callback_target_emi`` and
``ompt_callback_target_data_op_emi``) plus the content hash the tool computes
for transferred payloads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence

#: Bytes allocated by the collector for every recorded data-op event
#: (Section 7.4: "OMPDataPerf allocates 72 B for every OpenMP data transfer
#: event").  Used by the space-overhead accounting.
DATA_OP_EVENT_BYTES = 72

#: Bytes allocated by the collector for every recorded target launch event
#: (Section 7.4: "24 B for every target launch event").
TARGET_EVENT_BYTES = 24


class DataOpKind(enum.Enum):
    """The kind of a target data operation (mirrors ``ompt_target_data_op_t``)."""

    ALLOC = "alloc"
    TRANSFER_TO_DEVICE = "transfer_to_device"
    TRANSFER_FROM_DEVICE = "transfer_from_device"
    DELETE = "delete"
    ASSOCIATE = "associate"
    DISASSOCIATE = "disassociate"

    @property
    def is_transfer(self) -> bool:
        return self in (DataOpKind.TRANSFER_TO_DEVICE, DataOpKind.TRANSFER_FROM_DEVICE)

    @property
    def is_alloc(self) -> bool:
        return self is DataOpKind.ALLOC

    @property
    def is_delete(self) -> bool:
        return self is DataOpKind.DELETE


class TargetKind(enum.Enum):
    """The kind of a target region (mirrors ``ompt_target_t``)."""

    TARGET = "target"
    ENTER_DATA = "enter_data"
    EXIT_DATA = "exit_data"
    UPDATE = "update"

    @property
    def executes_kernel(self) -> bool:
        """Whether a region of this kind runs device code (a kernel)."""
        return self is TargetKind.TARGET


@dataclass(frozen=True)
class DataOpEvent:
    """A single data-mapping operation observed through OMPT.

    Attributes
    ----------
    seq:
        Monotonically increasing sequence number assigned in trace order.
    kind:
        The operation type.
    src_device_num / dest_device_num:
        OpenMP device numbers.  Target devices are numbered ``0..N-1`` and the
        host (initial device) is numbered ``N`` (see :class:`repro.events.trace.Trace`).
    src_addr / dest_addr:
        Source / destination base addresses.  For allocations ``src_addr`` is
        the host address of the variable being mapped and ``dest_addr`` is the
        device address returned by the allocator.
    nbytes:
        Size of the operation in bytes.
    start_time / end_time:
        Virtual timestamps in seconds.
    content_hash:
        Hash of the transferred payload (transfers only, ``None`` otherwise).
    codeptr:
        Synthetic return address identifying the source construct.
    target_id:
        Identifier of the enclosing target region, if any.
    variable:
        Optional human-readable name of the mapped variable (debug aid; the
        detection algorithms never rely on it).
    """

    seq: int
    kind: DataOpKind
    src_device_num: int
    dest_device_num: int
    src_addr: int
    dest_addr: int
    nbytes: int
    start_time: float
    end_time: float
    content_hash: Optional[int] = None
    codeptr: Optional[int] = None
    target_id: Optional[int] = None
    variable: Optional[str] = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.end_time < self.start_time:
            raise ValueError("event ends before it starts")
        if self.kind.is_transfer and self.content_hash is None:
            raise ValueError("transfer events must carry a content hash")

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def is_transfer(self) -> bool:
        return self.kind.is_transfer

    @property
    def is_alloc(self) -> bool:
        return self.kind.is_alloc

    @property
    def is_delete(self) -> bool:
        return self.kind.is_delete

    def with_times(self, start_time: float, end_time: float) -> "DataOpEvent":
        """Return a copy with shifted timestamps (used by trace surgery in tests)."""
        return replace(self, start_time=start_time, end_time=end_time)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind.value,
            "src_device_num": self.src_device_num,
            "dest_device_num": self.dest_device_num,
            "src_addr": self.src_addr,
            "dest_addr": self.dest_addr,
            "nbytes": self.nbytes,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "content_hash": self.content_hash,
            "codeptr": self.codeptr,
            "target_id": self.target_id,
            "variable": self.variable,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "DataOpEvent":
        return cls(
            seq=int(d["seq"]),
            kind=DataOpKind(d["kind"]),
            src_device_num=int(d["src_device_num"]),
            dest_device_num=int(d["dest_device_num"]),
            src_addr=int(d["src_addr"]),
            dest_addr=int(d["dest_addr"]),
            nbytes=int(d["nbytes"]),
            start_time=float(d["start_time"]),
            end_time=float(d["end_time"]),
            content_hash=None if d.get("content_hash") is None else int(d["content_hash"]),
            codeptr=None if d.get("codeptr") is None else int(d["codeptr"]),
            target_id=None if d.get("target_id") is None else int(d["target_id"]),
            variable=d.get("variable"),
        )


@dataclass(frozen=True)
class TargetEvent:
    """A target region (kernel execution, enter/exit data or update) event."""

    seq: int
    kind: TargetKind
    device_num: int
    start_time: float
    end_time: float
    codeptr: Optional[int] = None
    target_id: Optional[int] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.end_time < self.start_time:
            raise ValueError("event ends before it starts")

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def executes_kernel(self) -> bool:
        return self.kind.executes_kernel

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind.value,
            "device_num": self.device_num,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "codeptr": self.codeptr,
            "target_id": self.target_id,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TargetEvent":
        return cls(
            seq=int(d["seq"]),
            kind=TargetKind(d["kind"]),
            device_num=int(d["device_num"]),
            start_time=float(d["start_time"]),
            end_time=float(d["end_time"]),
            codeptr=None if d.get("codeptr") is None else int(d["codeptr"]),
            target_id=None if d.get("target_id") is None else int(d["target_id"]),
            name=d.get("name"),
        )


@dataclass(frozen=True)
class AllocationPair:
    """An allocation event paired with its matching deletion event (if any).

    The deletion may legitimately be missing when the mapping is still live at
    program exit; the detectors treat a missing delete as a lifetime that
    extends to the end of the trace.
    """

    alloc_event: DataOpEvent
    delete_event: Optional[DataOpEvent] = None

    def __post_init__(self) -> None:
        if not self.alloc_event.is_alloc:
            raise ValueError("alloc_event must be an ALLOC event")
        if self.delete_event is not None and not self.delete_event.is_delete:
            raise ValueError("delete_event must be a DELETE event")

    @property
    def device_num(self) -> int:
        return self.alloc_event.dest_device_num

    @property
    def host_addr(self) -> int:
        return self.alloc_event.src_addr

    @property
    def device_addr(self) -> int:
        return self.alloc_event.dest_addr

    @property
    def nbytes(self) -> int:
        return self.alloc_event.nbytes

    def lifetime(self, trace_end: float) -> tuple[float, float]:
        """Return ``(start, end)`` of the allocation's lifetime."""
        end = self.delete_event.end_time if self.delete_event is not None else trace_end
        return (self.alloc_event.start_time, end)

    @property
    def duration(self) -> float:
        """Combined duration of the allocation and deletion operations.

        This is the cost that disappears when a repeated allocation is hoisted
        out of a loop, so the optimization-potential estimator uses it.
        """
        total = self.alloc_event.duration
        if self.delete_event is not None:
            total += self.delete_event.duration
        return total


def get_alloc_delete_pairs(
    data_op_events: Sequence[DataOpEvent],
) -> list[AllocationPair]:
    """Pair each allocation event with its matching deletion event.

    Pairing follows the device address: a DELETE on device ``d`` at address
    ``a`` closes the most recent open ALLOC on device ``d`` whose allocation
    returned address ``a``.  Events must be supplied in chronological order.
    Deletes that match no open allocation are ignored (they can occur when a
    trace is truncated); allocations never deleted are returned with
    ``delete_event=None``.
    """
    open_allocs: dict[tuple[int, int], list[DataOpEvent]] = {}
    pairs_in_order: list[tuple[DataOpEvent, Optional[DataOpEvent]]] = []
    index_of_alloc: dict[int, int] = {}

    for event in data_op_events:
        if event.is_alloc:
            key = (event.dest_device_num, event.dest_addr)
            open_allocs.setdefault(key, []).append(event)
            index_of_alloc[event.seq] = len(pairs_in_order)
            pairs_in_order.append((event, None))
        elif event.is_delete:
            key = (event.dest_device_num, event.dest_addr)
            stack = open_allocs.get(key)
            if not stack:
                continue
            alloc = stack.pop()
            slot = index_of_alloc[alloc.seq]
            pairs_in_order[slot] = (alloc, event)

    return [AllocationPair(alloc, delete) for alloc, delete in pairs_in_order]


def sort_events_by_device(
    events: Iterable[DataOpEvent | TargetEvent | AllocationPair],
    num_devices: int,
    device_of=None,
) -> list[list]:
    """Bucket events into per-device lists (the ``SortByDevice`` helper of
    Algorithms 4 and 5), preserving chronological order inside each bucket.

    ``num_devices`` counts *target* devices; events addressed to the host are
    dropped because Algorithms 4/5 reason about device-side usage only.
    """
    if device_of is None:
        def device_of(ev):  # noqa: ANN001 - simple dispatcher
            if isinstance(ev, AllocationPair):
                return ev.device_num
            if isinstance(ev, TargetEvent):
                return ev.device_num
            if isinstance(ev, DataOpEvent):
                return ev.dest_device_num
            raise TypeError(f"cannot determine device of {ev!r}")

    buckets: list[list] = [[] for _ in range(num_devices)]
    for ev in events:
        dev = device_of(ev)
        if 0 <= dev < num_devices:
            buckets[dev].append(ev)
    return buckets
