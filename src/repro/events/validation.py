"""Trace well-formedness checks.

The detection algorithms require the event log to be chronologically ordered
and internally consistent (Section 5 "Require: ... in chronological order").
``validate_trace`` enforces those preconditions so the detectors can assume
them; it is also exercised heavily by the property-based tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.events.records import DataOpKind, TargetEvent
from repro.events.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.events.columnar import ColumnarTrace
    from repro.events.protocol import EventStream


class TraceValidationError(ValueError):
    """Raised when a trace violates the detector preconditions."""


def _check_chronological(events: Iterable, what: str, errors: list[str]) -> None:
    prev_start = float("-inf")
    for event in events:
        if event.start_time < prev_start:
            errors.append(
                f"{what} events are not in chronological order at seq={event.seq}"
            )
            return
        prev_start = event.start_time


def validate_trace(trace, *, strict: bool = True) -> list[str]:
    """Validate a trace, returning a list of problems.

    With ``strict=True`` (the default) a non-empty problem list raises
    :class:`TraceValidationError`; with ``strict=False`` the problems are
    returned to the caller (useful in tests and for the CLI's ``--quiet``
    mode, which reports but tolerates malformed traces).

    Both representations are accepted; a columnar trace is checked with
    vectorised sweeps over its columns so that validating a collector's
    output does not force the object events to materialise.
    """
    from repro.events.columnar import ColumnarTrace

    if isinstance(trace, ColumnarTrace):
        return _validate_columnar(trace, strict=strict)

    errors: list[str] = []

    if trace.num_devices < 1:
        errors.append("trace must describe at least one target device")

    _check_chronological(trace.target_events, "target", errors)
    _check_chronological(trace.data_op_events, "data-op", errors)

    host = trace.host_device_num
    valid_devices = set(range(trace.num_devices)) | {host}

    seen_seq: set[int] = set()
    for event in trace.target_events:
        if event.seq in seen_seq:
            errors.append(f"duplicate target event sequence number {event.seq}")
        seen_seq.add(event.seq)
        if event.device_num not in valid_devices:
            errors.append(
                f"target event seq={event.seq} references unknown device {event.device_num}"
            )

    seen_seq = set()
    open_allocs: set[tuple[int, int]] = set()
    for event in trace.data_op_events:
        if event.seq in seen_seq:
            errors.append(f"duplicate data-op event sequence number {event.seq}")
        seen_seq.add(event.seq)
        if event.src_device_num not in valid_devices:
            errors.append(
                f"data-op seq={event.seq} references unknown source device "
                f"{event.src_device_num}"
            )
        if event.dest_device_num not in valid_devices:
            errors.append(
                f"data-op seq={event.seq} references unknown destination device "
                f"{event.dest_device_num}"
            )
        if event.is_transfer:
            if event.content_hash is None:
                errors.append(f"transfer seq={event.seq} is missing its content hash")
            if event.src_device_num == event.dest_device_num:
                errors.append(
                    f"transfer seq={event.seq} has identical source and destination device"
                )
            if event.kind is DataOpKind.TRANSFER_TO_DEVICE and event.dest_device_num == host:
                errors.append(
                    f"transfer-to-device seq={event.seq} targets the host device"
                )
            if event.kind is DataOpKind.TRANSFER_FROM_DEVICE and event.src_device_num == host:
                errors.append(
                    f"transfer-from-device seq={event.seq} originates from the host device"
                )
        if event.is_alloc:
            key = (event.dest_device_num, event.dest_addr)
            if key in open_allocs:
                errors.append(
                    f"alloc seq={event.seq} reuses a live device address "
                    f"{event.dest_addr:#x} on device {event.dest_device_num}"
                )
            open_allocs.add(key)
        if event.is_delete:
            key = (event.dest_device_num, event.dest_addr)
            open_allocs.discard(key)

    if trace.total_runtime is not None and trace.total_runtime + 1e-12 < trace.end_time:
        errors.append(
            "total_runtime is earlier than the last recorded event "
            f"({trace.total_runtime} < {trace.end_time})"
        )

    if errors and strict:
        raise TraceValidationError("; ".join(errors))
    return errors


def validate_stream(stream: "EventStream", *, strict: bool = True) -> list[str]:
    """Validate an event stream shard by shard, in O(shard) memory.

    Each batch runs through the columnar validation sweeps, and batch
    boundaries are checked for the stream contract: per column group,
    sequence numbers ascend and start times do not decrease across the
    boundary.  Whole-trace properties that would need O(trace) state
    (global sequence-number uniqueness, cross-shard live-address reuse)
    are only enforced within each shard.
    """
    errors: list[str] = []
    if stream.num_devices < 1:
        errors.append("trace must describe at least one target device")

    end_time = 0.0
    prev_bounds: dict[str, tuple[int, float]] = {}
    for batch_index, batch in enumerate(stream.batches()):
        # The stream's device count is authoritative (a shard written early
        # in a run may predate later device initialisations), so per-batch
        # device-range checks run against it.
        batch.num_devices = stream.num_devices
        batch_errors = _validate_columnar(batch, strict=False)
        for what, seqs, starts in (
            ("target", batch.tgt_seq, batch.tgt_start_time),
            ("data-op", batch.do_seq, batch.do_start_time),
        ):
            if seqs.size == 0:
                continue
            prev = prev_bounds.get(what)
            if prev is not None:
                last_seq, last_start = prev
                if int(seqs[0]) <= last_seq:
                    batch_errors.append(
                        f"{what} sequence numbers do not ascend across the "
                        f"shard boundary at seq={int(seqs[0])}"
                    )
                if float(starts[0]) < last_start:
                    batch_errors.append(
                        f"{what} events are not in chronological order across "
                        f"the shard boundary at seq={int(seqs[0])}"
                    )
            prev_bounds[what] = (int(seqs[-1]), float(starts.max()))
        end_time = max(end_time, batch.end_time)
        errors.extend(f"shard {batch_index}: {e}" for e in batch_errors)

    total_runtime = stream.total_runtime
    if total_runtime is not None and total_runtime + 1e-12 < end_time:
        errors.append(
            "total_runtime is earlier than the last recorded event "
            f"({total_runtime} < {end_time})"
        )

    if errors and strict:
        raise TraceValidationError("; ".join(errors))
    return errors


def _validate_columnar(trace: "ColumnarTrace", *, strict: bool) -> list[str]:
    """Vectorised validation sweeps over a columnar trace's columns.

    The set of problems found (including multiplicities) matches the
    object validator; only the *ordering* of the returned problem list may
    differ, because the sweeps run check by check rather than event by
    event.  Valid traces return ``[]`` in both representations.
    """
    from repro.events.columnar import (
        CODE_ALLOC,
        CODE_DELETE,
        CODE_FROM_DEVICE,
        CODE_TO_DEVICE,
    )

    errors: list[str] = []

    if trace.num_devices < 1:
        errors.append("trace must describe at least one target device")

    for what, starts, seqs in (
        ("target", trace.tgt_start_time, trace.tgt_seq),
        ("data-op", trace.do_start_time, trace.do_seq),
    ):
        if starts.size > 1:
            bad = np.flatnonzero(starts[1:] < starts[:-1])
            if bad.size:
                errors.append(
                    f"{what} events are not in chronological order "
                    f"at seq={int(seqs[bad[0] + 1])}"
                )

    host = trace.host_device_num
    valid_low, valid_high = 0, trace.num_devices - 1

    def _device_ok(devices: np.ndarray) -> np.ndarray:
        return ((devices >= valid_low) & (devices <= valid_high)) | (devices == host)

    tgt_seq = trace.tgt_seq
    if tgt_seq.size:
        uniq, counts = np.unique(tgt_seq, return_counts=True)
        for seq, count in zip(uniq[counts > 1], counts[counts > 1]):
            # One error per repeat occurrence, like the object validator.
            errors.extend(
                [f"duplicate target event sequence number {int(seq)}"] * (int(count) - 1)
            )
        for i in np.flatnonzero(~_device_ok(trace.tgt_device_num)):
            errors.append(
                f"target event seq={int(tgt_seq[i])} references unknown device "
                f"{int(trace.tgt_device_num[i])}"
            )

    do_seq = trace.do_seq
    if do_seq.size:
        uniq, counts = np.unique(do_seq, return_counts=True)
        for seq, count in zip(uniq[counts > 1], counts[counts > 1]):
            errors.extend(
                [f"duplicate data-op event sequence number {int(seq)}"] * (int(count) - 1)
            )
        for i in np.flatnonzero(~_device_ok(trace.do_src_device_num)):
            errors.append(
                f"data-op seq={int(do_seq[i])} references unknown source device "
                f"{int(trace.do_src_device_num[i])}"
            )
        for i in np.flatnonzero(~_device_ok(trace.do_dest_device_num)):
            errors.append(
                f"data-op seq={int(do_seq[i])} references unknown destination device "
                f"{int(trace.do_dest_device_num[i])}"
            )

        kind = trace.do_kind
        transfer = (kind == CODE_TO_DEVICE) | (kind == CODE_FROM_DEVICE)
        for i in np.flatnonzero(transfer & ~trace.do_has_content_hash):
            errors.append(f"transfer seq={int(do_seq[i])} is missing its content hash")
        for i in np.flatnonzero(
            transfer & (trace.do_src_device_num == trace.do_dest_device_num)
        ):
            errors.append(
                f"transfer seq={int(do_seq[i])} has identical source and destination device"
            )
        for i in np.flatnonzero((kind == CODE_TO_DEVICE) & (trace.do_dest_device_num == host)):
            errors.append(f"transfer-to-device seq={int(do_seq[i])} targets the host device")
        for i in np.flatnonzero(
            (kind == CODE_FROM_DEVICE) & (trace.do_src_device_num == host)
        ):
            errors.append(
                f"transfer-from-device seq={int(do_seq[i])} originates from the host device"
            )

        # Live-address reuse: among the ALLOC/DELETE events of one
        # (device, address) key, an ALLOC is invalid iff the key's previous
        # event is also an ALLOC (i.e. the address is still live).
        ad = np.flatnonzero((kind == CODE_ALLOC) | (kind == CODE_DELETE))
        if ad.size:
            is_alloc = kind[ad] == CODE_ALLOC
            dev = trace.do_dest_device_num[ad]
            addr = trace.do_dest_addr[ad]
            order = np.lexsort((ad, addr, dev))
            same_key = (dev[order][1:] == dev[order][:-1]) & (
                addr[order][1:] == addr[order][:-1]
            )
            alloc_sorted = is_alloc[order]
            reused = np.flatnonzero(same_key & alloc_sorted[1:] & alloc_sorted[:-1])
            for pos in ad[order[reused + 1]]:
                errors.append(
                    f"alloc seq={int(do_seq[pos])} reuses a live device address "
                    f"{int(trace.do_dest_addr[pos]):#x} on device "
                    f"{int(trace.do_dest_device_num[pos])}"
                )

    if trace.total_runtime is not None and trace.total_runtime + 1e-12 < trace.end_time:
        errors.append(
            "total_runtime is earlier than the last recorded event "
            f"({trace.total_runtime} < {trace.end_time})"
        )

    if errors and strict:
        raise TraceValidationError("; ".join(errors))
    return errors
