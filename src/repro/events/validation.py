"""Trace well-formedness checks.

The detection algorithms require the event log to be chronologically ordered
and internally consistent (Section 5 "Require: ... in chronological order").
``validate_trace`` enforces those preconditions so the detectors can assume
them; it is also exercised heavily by the property-based tests.
"""

from __future__ import annotations

from typing import Iterable

from repro.events.records import DataOpEvent, DataOpKind, TargetEvent
from repro.events.trace import Trace


class TraceValidationError(ValueError):
    """Raised when a trace violates the detector preconditions."""


def _check_chronological(events: Iterable, what: str, errors: list[str]) -> None:
    prev_start = float("-inf")
    for event in events:
        if event.start_time < prev_start:
            errors.append(
                f"{what} events are not in chronological order at seq={event.seq}"
            )
            return
        prev_start = event.start_time


def validate_trace(trace: Trace, *, strict: bool = True) -> list[str]:
    """Validate a trace, returning a list of problems.

    With ``strict=True`` (the default) a non-empty problem list raises
    :class:`TraceValidationError`; with ``strict=False`` the problems are
    returned to the caller (useful in tests and for the CLI's ``--quiet``
    mode, which reports but tolerates malformed traces).
    """
    errors: list[str] = []

    if trace.num_devices < 1:
        errors.append("trace must describe at least one target device")

    _check_chronological(trace.target_events, "target", errors)
    _check_chronological(trace.data_op_events, "data-op", errors)

    host = trace.host_device_num
    valid_devices = set(range(trace.num_devices)) | {host}

    seen_seq: set[int] = set()
    for event in trace.target_events:
        if event.seq in seen_seq:
            errors.append(f"duplicate target event sequence number {event.seq}")
        seen_seq.add(event.seq)
        if event.device_num not in valid_devices:
            errors.append(
                f"target event seq={event.seq} references unknown device {event.device_num}"
            )

    seen_seq = set()
    open_allocs: set[tuple[int, int]] = set()
    for event in trace.data_op_events:
        if event.seq in seen_seq:
            errors.append(f"duplicate data-op event sequence number {event.seq}")
        seen_seq.add(event.seq)
        if event.src_device_num not in valid_devices:
            errors.append(
                f"data-op seq={event.seq} references unknown source device "
                f"{event.src_device_num}"
            )
        if event.dest_device_num not in valid_devices:
            errors.append(
                f"data-op seq={event.seq} references unknown destination device "
                f"{event.dest_device_num}"
            )
        if event.is_transfer:
            if event.content_hash is None:
                errors.append(f"transfer seq={event.seq} is missing its content hash")
            if event.src_device_num == event.dest_device_num:
                errors.append(
                    f"transfer seq={event.seq} has identical source and destination device"
                )
            if event.kind is DataOpKind.TRANSFER_TO_DEVICE and event.dest_device_num == host:
                errors.append(
                    f"transfer-to-device seq={event.seq} targets the host device"
                )
            if event.kind is DataOpKind.TRANSFER_FROM_DEVICE and event.src_device_num == host:
                errors.append(
                    f"transfer-from-device seq={event.seq} originates from the host device"
                )
        if event.is_alloc:
            key = (event.dest_device_num, event.dest_addr)
            if key in open_allocs:
                errors.append(
                    f"alloc seq={event.seq} reuses a live device address "
                    f"{event.dest_addr:#x} on device {event.dest_device_num}"
                )
            open_allocs.add(key)
        if event.is_delete:
            key = (event.dest_device_num, event.dest_addr)
            open_allocs.discard(key)

    if trace.total_runtime is not None and trace.total_runtime + 1e-12 < trace.end_time:
        errors.append(
            "total_runtime is earlier than the last recorded event "
            f"({trace.total_runtime} < {trace.end_time})"
        )

    if errors and strict:
        raise TraceValidationError("; ".join(errors))
    return errors
