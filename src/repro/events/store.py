"""Sharded on-disk trace storage: bounded-memory ingest and replay.

A sharded trace store is a directory of versioned binary columnar shards
(the ``.npz`` format of :meth:`ColumnarTrace.save_binary`) plus a JSON
manifest describing the whole trace::

    trace.store/
        manifest.json
        shard-00000.npz
        shard-00001.npz
        ...

Two actors produce and consume it:

* :class:`TraceWriter` is the ingest half.  The collector (or
  :func:`shard_trace`) appends events into a bounded columnar buffer; every
  time the buffer reaches ``shard_events`` events it is flushed to disk as
  one shard and reset, so recording a trace of any length needs O(shard)
  memory instead of O(trace).  ``close()`` writes the manifest — per-shard
  row counts plus the folded aggregate statistics — and returns the store.
* :class:`ShardedTraceStore` is the replay half: an
  :class:`~repro.events.protocol.EventStream` whose ``batches()`` loads one
  shard at a time, plus the ``TraceLike`` aggregate surface (``summary()``,
  ``runtime``, event counts) answered straight from the manifest without
  touching a single shard.

Shards are written uncompressed by default: the streaming detectors scan
them repeatedly, so decode speed matters more than density (pass
``compress=True`` for archival stores).
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.events.columnar import ColumnarTrace
from repro.events.protocol import EventStream
from repro.events.stream import (
    DEFAULT_SHARD_EVENTS,
    StreamPartition,
    StreamStats,
    merge_stream,
    partition_stream,
    slice_bounds,
)

#: Version tag of the sharded-store manifest format.
STORE_FORMAT_VERSION = 1

#: Identifies a directory as a sharded trace store.
STORE_KIND = "ompdataperf-sharded-trace"

MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class ShardInfo:
    """One manifest entry: where a shard lives and what it holds."""

    file: str
    num_data_op_events: int
    num_target_events: int
    end_time: float

    @property
    def num_events(self) -> int:
        return self.num_data_op_events + self.num_target_events

    def to_dict(self) -> dict:
        return {
            "file": self.file,
            "num_data_op_events": self.num_data_op_events,
            "num_target_events": self.num_target_events,
            "end_time": self.end_time,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ShardInfo":
        return cls(
            file=str(d["file"]),
            num_data_op_events=int(d["num_data_op_events"]),
            num_target_events=int(d["num_target_events"]),
            end_time=float(d["end_time"]),
        )


class ShardedTraceStore:
    """A directory of columnar shards behaving as stream *and* summary.

    Iterating ``batches()`` yields each shard as a :class:`ColumnarTrace`
    in chronological order; every aggregate query (``summary()``,
    ``num_data_op_events``, per-kind counts, ``space_overhead_bytes``) is
    answered from the manifest alone, so inspecting a multi-gigabyte store
    costs one small JSON read.
    """

    def __init__(self, path: Path, manifest: dict) -> None:
        self.path = Path(path)
        self._manifest = manifest
        self.num_devices: int = int(manifest["num_devices"])
        self.program_name: Optional[str] = manifest.get("program_name")
        self.total_runtime: Optional[float] = manifest.get("total_runtime")
        self.shards: list[ShardInfo] = [
            ShardInfo.from_dict(d) for d in manifest["shards"]
        ]
        self._stats = manifest["stats"]

    # ------------------------------------------------------------------ #
    @classmethod
    def open(cls, path: str | Path) -> "ShardedTraceStore":
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.is_file():
            raise ValueError(f"{path}: not a sharded trace store (no {MANIFEST_NAME})")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("kind") != STORE_KIND:
            raise ValueError(f"{path}: not a sharded trace store manifest")
        version = manifest.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise ValueError(f"{path}: unsupported store format version {version}")
        return cls(path, manifest)

    @staticmethod
    def is_store_dir(path: str | Path) -> bool:
        return (Path(path) / MANIFEST_NAME).is_file()

    # ------------------------------------------------------------------ #
    # EventStream
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def _stamp(self, batch: ColumnarTrace) -> ColumnarTrace:
        # The manifest is authoritative for trace-level metadata: a shard
        # written early in a run may predate later device initialisations.
        batch.num_devices = self.num_devices
        batch.program_name = self.program_name
        return batch

    def load_batch(self, index: int) -> ColumnarTrace:
        """Load one shard (random access for targeted materialisation)."""
        return self._stamp(
            ColumnarTrace.load_binary(self.path / self.shards[index].file)
        )

    def batch_row_counts(self) -> list[tuple[int, int]]:
        return [(s.num_data_op_events, s.num_target_events) for s in self.shards]

    def batches(self) -> Iterator[ColumnarTrace]:
        for shard in self.shards:
            yield self._stamp(ColumnarTrace.load_binary(self.path / shard.file))

    def partitions(self, n: int) -> list[EventStream]:
        """Cut the store into at most ``n`` balanced contiguous shard ranges.

        Each partition is an :class:`~repro.events.stream.StreamPartition`
        carrying its shard index range and global data-op offset — what a
        parallel worker needs to fold its share of the store in global
        coordinates.  Balancing follows the manifest's per-shard event
        counts, so no shard is read.  Degenerate case: a single-shard (or
        ``n == 1``) store yields ``[self]``, the unsplit store itself —
        callers treat a single-element result as "run serially".
        """
        return partition_stream(self, n)

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #
    def compact(
        self,
        *,
        shard_events: int = DEFAULT_SHARD_EVENTS,
        compress: bool = False,
    ) -> "ShardedTraceStore":
        """Re-shard the store in place to ``shard_events`` events per shard.

        Consecutive small shards coalesce (and oversized ones split) into
        uniform shards of the target size, empty shards are dropped, and
        the manifest is rewritten.  Statistics are refolded during the
        rewrite, so a compacted store answers the same aggregate queries
        as the original.

        The swap is crash-safe: the new shards are staged in a scratch
        subdirectory, moved into the store under generation-tagged names
        that never collide with the live ones, and become visible through
        one atomic manifest replace — at every instant the on-disk
        manifest references only complete shards.  The superseded shards
        are removed last (a crash can leave orphaned shard files, never a
        manifest pointing at missing ones).
        """
        scratch = self.path / ".compact.tmp"
        if scratch.exists():
            shutil.rmtree(scratch)
        old_files = [shard.file for shard in self.shards]
        try:
            writer = TraceWriter(
                scratch,
                shard_events=shard_events,
                num_devices=self.num_devices,
                program_name=self.program_name,
                compress=compress,
            )
            for batch in self.batches():
                writer.write_batch(batch)
            staged = writer.close(total_runtime=self.total_runtime)

            # Move the staged shards in under names no live shard uses
            # (repeated compactions bump the generation tag).
            generation = 0
            while any(
                (self.path / f"shard-g{generation}-{i:05d}.npz").exists()
                for i in range(len(staged.shards))
            ):
                generation += 1
            renamed: list[ShardInfo] = []
            for i, shard in enumerate(staged.shards):
                name = f"shard-g{generation}-{i:05d}.npz"
                (scratch / shard.file).rename(self.path / name)
                renamed.append(
                    ShardInfo(
                        file=name,
                        num_data_op_events=shard.num_data_op_events,
                        num_target_events=shard.num_target_events,
                        end_time=shard.end_time,
                    )
                )

            # Atomic cut-over: stage the rewritten manifest next to the
            # live one and replace() it (atomic on POSIX).
            manifest = json.loads(
                (scratch / MANIFEST_NAME).read_text(encoding="utf-8")
            )
            manifest["shards"] = [shard.to_dict() for shard in renamed]
            staged_manifest = self.path / (MANIFEST_NAME + ".staged")
            staged_manifest.write_text(
                json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
            )
            staged_manifest.replace(self.path / MANIFEST_NAME)

            for file in old_files:
                (self.path / file).unlink(missing_ok=True)
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        return ShardedTraceStore.open(self.path)

    # ------------------------------------------------------------------ #
    # TraceLike aggregate surface (manifest only)
    # ------------------------------------------------------------------ #
    @property
    def host_device_num(self) -> int:
        return self.num_devices

    @property
    def num_data_op_events(self) -> int:
        return int(self._stats["num_data_op_events"])

    @property
    def num_target_events(self) -> int:
        return int(self._stats["num_target_events"])

    @property
    def end_time(self) -> float:
        return float(self._stats["end_time"])

    @property
    def runtime(self) -> float:
        if self.total_runtime is not None:
            return self.total_runtime
        return self.end_time

    def __len__(self) -> int:
        return self.num_data_op_events + self.num_target_events

    def is_empty(self) -> bool:
        return len(self) == 0

    def space_overhead_bytes(self) -> int:
        from repro.events.records import DATA_OP_EVENT_BYTES, TARGET_EVENT_BYTES

        return (
            DATA_OP_EVENT_BYTES * self.num_data_op_events
            + TARGET_EVENT_BYTES * self.num_target_events
        )

    def data_op_kind_counts(self) -> dict[str, int]:
        """Events per data-op kind, from the manifest."""
        return dict(self._stats["data_op_kind_counts"])

    def target_kind_counts(self) -> dict[str, int]:
        """Events per target kind, from the manifest."""
        return dict(self._stats["target_kind_counts"])

    def on_disk_bytes(self) -> int:
        """Total size of the store on disk (shards + manifest)."""
        total = (self.path / MANIFEST_NAME).stat().st_size
        for shard in self.shards:
            total += (self.path / shard.file).stat().st_size
        return total

    def summary(self) -> dict:
        stats = self._stats
        return {
            "program_name": self.program_name,
            "num_devices": self.num_devices,
            "num_target_events": stats["num_target_events"],
            "num_kernel_events": stats["num_kernel_events"],
            "num_data_op_events": stats["num_data_op_events"],
            "num_transfers": stats["num_transfers"],
            "num_allocations": stats["num_allocations"],
            "bytes_transferred": stats["bytes_transferred"],
            "transfer_time": stats["transfer_time"],
            "alloc_time": stats["alloc_time"],
            "kernel_time": stats["kernel_time"],
            "runtime": self.runtime,
            "space_overhead_bytes": self.space_overhead_bytes(),
        }

    # ------------------------------------------------------------------ #
    # Materialisation (the expensive path, for small stores)
    # ------------------------------------------------------------------ #
    def load(self) -> ColumnarTrace:
        """Merge every shard into one in-memory columnar trace."""
        return merge_stream(self)

    @property
    def data_op_events(self):
        return self.load().data_op_events

    @property
    def target_events(self):
        return self.load().target_events


class TraceWriter:
    """Bounded-memory trace ingest: buffer, flush shards, write manifest.

    The writer exposes the same ``append_data_op`` / ``append_target``
    surface as :class:`ColumnarTrace`, so the collector can use either as
    its sink.  Whenever the buffer reaches ``shard_events`` events it is
    written out as one shard and reset — ingest memory is O(shard_events)
    no matter how long the monitored program runs.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        shard_events: int = DEFAULT_SHARD_EVENTS,
        num_devices: int = 1,
        program_name: Optional[str] = None,
        compress: bool = False,
    ) -> None:
        if shard_events < 1:
            raise ValueError("shard_events must be at least 1")
        self.path = Path(path)
        if self.path.exists():
            if not self.path.is_dir():
                raise ValueError(f"{self.path}: exists and is not a directory")
            if any(self.path.iterdir()):
                raise ValueError(f"{self.path}: refusing to write into a non-empty directory")
        self.path.mkdir(parents=True, exist_ok=True)
        self.shard_events = shard_events
        self.num_devices = num_devices
        self.program_name = program_name
        self.compress = compress
        self.shards: list[ShardInfo] = []
        self.stats = StreamStats()
        self.closed = False
        self._buffer = self._fresh_buffer()

    def _fresh_buffer(self) -> ColumnarTrace:
        return ColumnarTrace(num_devices=self.num_devices, program_name=self.program_name)

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self.closed:
            self.close()

    @property
    def buffered_events(self) -> int:
        return len(self._buffer)

    @property
    def num_events_written(self) -> int:
        return sum(s.num_events for s in self.shards)

    def _check_open(self) -> None:
        if self.closed:
            raise ValueError("writer is closed")

    def append_data_op(self, **kwargs) -> None:
        self._check_open()
        self._buffer.append_data_op(**kwargs)
        if len(self._buffer) >= self.shard_events:
            self.flush()

    def append_target(self, **kwargs) -> None:
        self._check_open()
        self._buffer.append_target(**kwargs)
        if len(self._buffer) >= self.shard_events:
            self.flush()

    def write_batch(self, batch: ColumnarTrace) -> None:
        """Ingest a whole columnar batch.

        The batch is appended to the buffer and complete shards are cut
        from the front, so consecutive small batches coalesce into
        full-size shards — re-sharding a finely sharded store to a larger
        ``shard_events`` genuinely merges its shards.
        """
        self._check_open()
        self._buffer.extend_from(batch)
        if len(self._buffer) < self.shard_events:
            return
        bounds = slice_bounds(self._buffer, self.shard_events)
        remainder: Optional[ColumnarTrace] = None
        for do_lo, do_hi, tgt_lo, tgt_hi in bounds:
            piece = self._buffer.slice_rows(do_lo, do_hi, tgt_lo, tgt_hi)
            if len(piece) < self.shard_events:
                remainder = piece
                break
            self._write_shard(piece)
        self._buffer = remainder if remainder is not None else self._fresh_buffer()

    def flush(self) -> None:
        """Write the buffered events as one shard and reset the buffer."""
        self._check_open()
        if self._buffer.is_empty():
            return
        self._write_shard(self._buffer)
        self._buffer = self._fresh_buffer()

    def _write_shard(self, shard: ColumnarTrace) -> None:
        name = f"shard-{len(self.shards):05d}.npz"
        shard.num_devices = self.num_devices
        shard.program_name = self.program_name
        shard.total_runtime = None  # a shard has no runtime of its own
        shard.save_binary(self.path / name, compress=self.compress)
        self.stats.fold(shard)
        self.shards.append(
            ShardInfo(
                file=name,
                num_data_op_events=shard.num_data_op_events,
                num_target_events=shard.num_target_events,
                end_time=shard.end_time,
            )
        )

    def close(
        self,
        *,
        num_devices: Optional[int] = None,
        program_name: Optional[str] = None,
        total_runtime: Optional[float] = None,
    ) -> ShardedTraceStore:
        """Flush the remainder, write the manifest, return the opened store."""
        self._check_open()
        if num_devices is not None:
            self.num_devices = num_devices
        if program_name is not None:
            self.program_name = program_name
        self.flush()
        self.closed = True
        stats = self.stats
        manifest = {
            "kind": STORE_KIND,
            "format_version": STORE_FORMAT_VERSION,
            "num_devices": self.num_devices,
            "program_name": self.program_name,
            "total_runtime": total_runtime,
            "shards": [s.to_dict() for s in self.shards],
            "stats": {
                "num_data_op_events": stats.num_data_op_events,
                "num_target_events": stats.num_target_events,
                "num_kernel_events": stats.num_kernel_events,
                "num_transfers": stats.num_transfers,
                "num_allocations": stats.num_allocations,
                "bytes_transferred": stats.bytes_transferred,
                "transfer_time": stats.transfer_time,
                "alloc_time": stats.alloc_time,
                "kernel_time": stats.kernel_time,
                "end_time": stats.end_time,
                "data_op_kind_counts": stats.data_op_kind_counts,
                "target_kind_counts": stats.target_kind_counts,
            },
        }
        (self.path / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )
        return ShardedTraceStore.open(self.path)


def shard_trace(
    trace,
    path: str | Path,
    *,
    shard_events: int = DEFAULT_SHARD_EVENTS,
    compress: bool = False,
) -> ShardedTraceStore:
    """Write any trace representation (or stream) out as a sharded store."""
    from repro.events.stream import as_event_stream

    stream = as_event_stream(trace)
    writer = TraceWriter(
        path,
        shard_events=shard_events,
        num_devices=stream.num_devices,
        program_name=stream.program_name,
        compress=compress,
    )
    for batch in stream.batches():
        writer.write_batch(batch)
    return writer.close(total_runtime=stream.total_runtime)


def merge_shards(store: ShardedTraceStore) -> ColumnarTrace:
    """Merge a sharded store back into one in-memory columnar trace."""
    return merge_stream(store)
