"""Sharded trace storage: bounded-memory ingest and replay over transports.

A sharded trace store is a set of versioned columnar shard blobs plus a
JSON manifest describing the whole trace::

    trace.store/                  # LocalDirTransport (the default layout)
        manifest.json
        shard-00000.odpf
        shard-00001.odpf
        ...

Each shard is in one of two formats, recorded per shard in the manifest:

* ``odpf`` (the default) — the flat columnar payload of
  :meth:`ColumnarTrace.to_flat_payload`: struct prefix + JSON header +
  64-byte-aligned raw column buffers, magic stamped last as the commit
  marker.  On a transport that can memory-map its blobs (the local
  directory), opening a shard is O(1): the store builds zero-copy NumPy
  views straight over the mapped file — no decompress, no copy, nothing
  to publish to a shard cache.
* ``npz`` — the legacy compressed-capable binary of
  :meth:`ColumnarTrace.save_binary`; every load pays a full decode.
  Still written for ``compress=True`` (archival) stores, and legacy
  stores (whose manifests predate the ``format`` field) keep working
  unchanged — formats may mix freely within one store.

*Where* the blobs live is pluggable: the same manifest + shards layout can
sit in a local directory, inside a single zip archive (cold storage), or
in an object store — see :mod:`repro.events.transport`.  Every entry point
here accepts a path (sniffed to a transport) or a transport instance.

Two actors produce and consume a store:

* :class:`TraceWriter` is the ingest half.  The collector (or
  :func:`shard_trace`) appends events into a bounded columnar buffer; every
  time the buffer reaches ``shard_events`` events it is flushed out as one
  shard blob and reset, so recording a trace of any length needs O(shard)
  memory instead of O(trace).  ``close()`` writes the manifest — per-shard
  row counts plus the folded aggregate statistics — and returns the store.
* :class:`ShardedTraceStore` is the replay half: an
  :class:`~repro.events.protocol.EventStream` whose ``batches()`` loads one
  shard at a time, plus the ``TraceLike`` aggregate surface (``summary()``,
  ``runtime``, event counts) answered straight from the manifest without
  touching a single shard.

:meth:`ShardedTraceStore.compact` re-shards a store in place, optionally
applying a :class:`RetentionPolicy` (drop events older than a horizon,
keep only some event kinds, cap the store's shard count or byte budget)
with the same crash-safety as plain compaction: scratch staging, a single
atomic manifest publish, superseded shards removed last.

Shards are written as flat ``odpf`` payloads by default: the streaming
detectors scan them repeatedly, so open cost matters more than density
(pass ``compress=True``, or ``shard_format="npz"``, for archival stores).
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Iterator, Optional

import numpy as np

from repro.events.columnar import (
    DATA_OP_KIND_CODES,
    TARGET_KIND_CODES,
    ColumnarTrace,
)
from repro.events.protocol import EventStream
from repro.events.stream import (
    DEFAULT_SHARD_EVENTS,
    StreamStats,
    merge_stream,
    partition_stream,
    slice_bounds,
)
from repro.events.shardcache import direct_map_preferred
from repro.events.transport import (
    LocalDirTransport,
    PrefixTransport,
    ShardTransport,
    open_transport,
    try_map_blob,
)

#: Version tag of the sharded-store manifest format.
STORE_FORMAT_VERSION = 1

#: Identifies a directory as a sharded trace store.
STORE_KIND = "ompdataperf-sharded-trace"

MANIFEST_NAME = "manifest.json"

#: Shard format names (doubling as the shard files' extensions).
SHARD_FORMAT_NPZ = "npz"
SHARD_FORMAT_ODPF = "odpf"
SHARD_FORMATS = (SHARD_FORMAT_NPZ, SHARD_FORMAT_ODPF)

#: Scratch namespace compaction stages rewritten shards under.
COMPACT_SCRATCH_PREFIX = ".compact.tmp"

#: Every kind name a :class:`RetentionPolicy` keep-kinds filter may use.
RETAINABLE_KINDS = tuple(k.value for k in DATA_OP_KIND_CODES) + tuple(
    k.value for k in TARGET_KIND_CODES
)


@dataclass(frozen=True)
class ShardInfo:
    """One manifest entry: where a shard lives and what it holds."""

    file: str
    num_data_op_events: int
    num_target_events: int
    end_time: float
    format: str = SHARD_FORMAT_NPZ

    @property
    def num_events(self) -> int:
        return self.num_data_op_events + self.num_target_events

    def to_dict(self) -> dict:
        return {
            "file": self.file,
            "num_data_op_events": self.num_data_op_events,
            "num_target_events": self.num_target_events,
            "end_time": self.end_time,
            "format": self.format,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ShardInfo":
        # Legacy manifests predate the format field; their shards are the
        # historical ``.npz`` blobs (inferred by extension for robustness).
        fmt = d.get("format")
        if fmt is None:
            fmt = (
                SHARD_FORMAT_ODPF
                if str(d["file"]).endswith("." + SHARD_FORMAT_ODPF)
                else SHARD_FORMAT_NPZ
            )
        return cls(
            file=str(d["file"]),
            num_data_op_events=int(d["num_data_op_events"]),
            num_target_events=int(d["num_target_events"]),
            end_time=float(d["end_time"]),
            format=str(fmt),
        )


@dataclass(frozen=True)
class RetentionPolicy:
    """What compaction is allowed to drop, newest data always kept first.

    All limits are optional and compose (every one that is set applies):

    * ``max_age`` — horizon in *event time*: only events whose end time is
      within ``max_age`` of the trace's final end time survive.  Applied
      per event while shards are rewritten, so a shard whose events all
      predate the horizon disappears entirely.
    * ``keep_kinds`` — event kinds (data-op and target kind names, e.g.
      ``{"to_device", "from_device", "target"}``) to retain; everything
      else is dropped.  Applied per event during the rewrite.
    * ``max_shards`` — keep at most this many of the *newest* rewritten
      shards.
    * ``max_total_bytes`` — keep the newest rewritten shards whose on-disk
      blob sizes fit the budget (at least the newest shard always
      survives a positive budget only if it fits; a budget smaller than
      every shard empties the store).

    The manifest's folded statistics are recomputed from what is actually
    kept, so every aggregate query on the compacted store matches a fresh
    scan of its surviving events.
    """

    max_age: Optional[float] = None
    max_total_bytes: Optional[int] = None
    max_shards: Optional[int] = None
    keep_kinds: Optional[frozenset[str]] = None

    def __post_init__(self) -> None:
        if self.max_age is not None and self.max_age < 0:
            raise ValueError("max_age must be non-negative")
        if self.max_total_bytes is not None and self.max_total_bytes < 0:
            raise ValueError("max_total_bytes must be non-negative")
        if self.max_shards is not None and self.max_shards < 0:
            raise ValueError("max_shards must be non-negative")
        if self.keep_kinds is not None:
            object.__setattr__(self, "keep_kinds", frozenset(self.keep_kinds))
            unknown = self.keep_kinds - set(RETAINABLE_KINDS)
            if unknown:
                raise ValueError(
                    f"unknown event kind(s) {sorted(unknown)}; "
                    f"known kinds: {', '.join(RETAINABLE_KINDS)}"
                )

    def is_null(self) -> bool:
        return (
            self.max_age is None
            and self.max_total_bytes is None
            and self.max_shards is None
            and self.keep_kinds is None
        )

    def filters_events(self) -> bool:
        """True when the policy drops individual events during the rewrite."""
        return self.max_age is not None or self.keep_kinds is not None

    def filter_batch(self, batch: ColumnarTrace, cutoff: Optional[float]) -> ColumnarTrace:
        """Return ``batch`` with the dropped events removed (or unchanged)."""
        do_mask = np.ones(batch.num_data_op_events, dtype=bool)
        tgt_mask = np.ones(batch.num_target_events, dtype=bool)
        if cutoff is not None:
            do_mask &= batch.do_end_time >= cutoff
            tgt_mask &= batch.tgt_end_time >= cutoff
        if self.keep_kinds is not None:
            do_codes = np.array(
                [
                    code
                    for code, kind in enumerate(DATA_OP_KIND_CODES)
                    if kind.value in self.keep_kinds
                ],
                dtype=batch.do_kind.dtype if batch.num_data_op_events else np.int64,
            )
            tgt_codes = np.array(
                [
                    code
                    for code, kind in enumerate(TARGET_KIND_CODES)
                    if kind.value in self.keep_kinds
                ],
                dtype=batch.tgt_kind.dtype if batch.num_target_events else np.int64,
            )
            do_mask &= np.isin(batch.do_kind, do_codes)
            tgt_mask &= np.isin(batch.tgt_kind, tgt_codes)
        if bool(do_mask.all()) and bool(tgt_mask.all()):
            return batch
        return batch.select_rows(np.flatnonzero(do_mask), np.flatnonzero(tgt_mask))


class ShardedTraceStore:
    """A set of columnar shard blobs behaving as stream *and* summary.

    Iterating ``batches()`` yields each shard as a :class:`ColumnarTrace`
    in chronological order; every aggregate query (``summary()``,
    ``num_data_op_events``, per-kind counts, ``space_overhead_bytes``) is
    answered from the manifest alone, so inspecting a multi-gigabyte store
    costs one small manifest read — for any transport.
    """

    def __init__(self, transport: ShardTransport, manifest: dict) -> None:
        self.transport = transport
        #: Filesystem location when the transport has one (local directory
        #: or zip archive), ``None`` for purely remote transports.
        path = getattr(transport, "path", None)
        self.path: Optional[Path] = Path(path) if path is not None else None
        self._manifest = manifest
        self.num_devices: int = int(manifest["num_devices"])
        self.program_name: Optional[str] = manifest.get("program_name")
        self.total_runtime: Optional[float] = manifest.get("total_runtime")
        self.shards: list[ShardInfo] = [
            ShardInfo.from_dict(d) for d in manifest["shards"]
        ]
        self._stats = manifest["stats"]
        #: optional decoded-shard cache (see :mod:`repro.events.shardcache`)
        self._shard_cache = None
        #: decode accounting: how much of this process's time went into
        #: re-parsing shard blobs, and how often the cache spared it.
        self.decode_seconds = 0.0
        self.decode_count = 0
        self.cache_hits = 0
        #: zero-decode accounting: flat ``.odpf`` shards are attached as
        #: views (an mmap on capable transports), never parsed.
        self.map_seconds = 0.0
        self.map_count = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def open(cls, source) -> "ShardedTraceStore":
        """Open a store from a path (directory or zip archive) or transport."""
        transport = open_transport(source)
        if not transport.blob_exists(MANIFEST_NAME):
            raise ValueError(
                f"{transport.describe()}: not a sharded trace store (no {MANIFEST_NAME})"
            )
        manifest = json.loads(transport.read_blob(MANIFEST_NAME).decode("utf-8"))
        if manifest.get("kind") != STORE_KIND:
            raise ValueError(f"{transport.describe()}: not a sharded trace store manifest")
        version = manifest.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise ValueError(
                f"{transport.describe()}: unsupported store format version {version}"
            )
        return cls(transport, manifest)

    @staticmethod
    def is_store_dir(path: str | Path) -> bool:
        return (Path(path) / MANIFEST_NAME).is_file()

    # ------------------------------------------------------------------ #
    # EventStream
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def _stamp(self, batch: ColumnarTrace) -> ColumnarTrace:
        # The manifest is authoritative for trace-level metadata: a shard
        # written early in a run may predate later device initialisations.
        batch.num_devices = self.num_devices
        batch.program_name = self.program_name
        return batch

    def attach_shard_cache(self, cache) -> None:
        """Serve shard loads through a decoded-shard cache (or ``None``).

        With a :class:`~repro.events.shardcache.SharedShardCache` attached,
        :meth:`load_batch` first tries a zero-copy view of an already
        published shard and publishes what it had to decode — so across a
        worker pool each shard blob is parsed exactly once.
        """
        self._shard_cache = cache

    def _load_shard(self, shard: ShardInfo) -> ColumnarTrace:
        if shard.format == SHARD_FORMAT_ODPF:
            return self._load_flat_shard(shard.file)
        started = perf_counter()
        batch = ColumnarTrace.from_binary_bytes(
            self.transport.read_blob(shard.file),
            source=f"{self.transport.describe()}:{shard.file}",
        )
        self.decode_seconds += perf_counter() - started
        self.decode_count += 1
        return self._stamp(batch)

    def _load_flat_shard(self, file: str) -> ColumnarTrace:
        """Attach a flat ``.odpf`` shard as zero-copy views — no decode.

        On an mmap-capable transport the views sit directly over the
        mapped store file (the mapping is the batch's keepalive, unmapped
        when the last view drops); elsewhere the blob's bytes are fetched
        once and viewed in place.
        """
        started = perf_counter()
        source = f"{self.transport.describe()}:{file}"
        mapped = try_map_blob(self.transport, file)
        if mapped is not None:
            batch = ColumnarTrace.from_shared(mapped, keepalive=mapped, source=source)
        else:
            data = self.transport.read_blob(file)
            batch = ColumnarTrace.from_shared(
                memoryview(data), keepalive=data, source=source
            )
        self.map_seconds += perf_counter() - started
        self.map_count += 1
        return self._stamp(batch)

    def load_batch(self, index: int) -> ColumnarTrace:
        """Load one shard (random access for targeted materialisation)."""
        shard = self.shards[index]
        cache = self._shard_cache
        if cache is not None and not direct_map_preferred(self.transport, shard.format):
            shared = cache.attach(index)
            if shared is not None:
                self.cache_hits += 1
                return self._stamp(shared)
            batch = self._load_shard(shard)
            cache.publish(index, batch)
            return batch
        # Directly mappable shards bypass the cache entirely: the store
        # file itself already provides the single-physical-copy property a
        # publication would otherwise buy.
        return self._load_shard(shard)

    def batch_row_counts(self) -> list[tuple[int, int]]:
        return [(s.num_data_op_events, s.num_target_events) for s in self.shards]

    def batches(self) -> Iterator[ColumnarTrace]:
        for index in range(len(self.shards)):
            yield self.load_batch(index)

    def partitions(self, n: int) -> list[EventStream]:
        """Cut the store into at most ``n`` balanced contiguous shard ranges.

        Each partition is an :class:`~repro.events.stream.StreamPartition`
        carrying its shard index range and global data-op offset — what a
        parallel worker needs to fold its share of the store in global
        coordinates.  Balancing follows the manifest's per-shard event
        counts, so no shard is read.  Degenerate case: a single-shard (or
        ``n == 1``) store yields ``[self]``, the unsplit store itself —
        callers treat a single-element result as "run serially".
        """
        return partition_stream(self, n)

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #
    def compact(
        self,
        *,
        shard_events: int = DEFAULT_SHARD_EVENTS,
        compress: bool = False,
        retention: Optional[RetentionPolicy] = None,
        shard_format: Optional[str] = None,
    ) -> "ShardedTraceStore":
        """Re-shard the store in place, optionally applying retention.

        Consecutive small shards coalesce (and oversized ones split) into
        uniform shards of the target size, empty shards are dropped, and
        the manifest is rewritten.  With a :class:`RetentionPolicy`, the
        rewrite additionally drops events past the age horizon or outside
        the keep-kinds set, then drops the *oldest* rewritten shards until
        the shard-count and byte budgets hold.  Statistics are refolded
        from exactly what is kept, so a compacted store answers the same
        aggregate queries as a fresh scan of its surviving events.

        The swap is crash-safe on every transport: new shards are staged
        under a scratch namespace, promoted into the store under
        generation-tagged names that never collide with the live ones, and
        become visible through one atomic manifest publish — at every
        instant the live manifest references only complete shards.  The
        superseded shards are removed last (a crash can leave orphaned
        shard or scratch blobs, never a manifest pointing at missing
        ones); a failed compaction leaves same-transport scratch blobs in
        place for inspection, and the next compaction clears them.

        Transports with a bulk mutation (:meth:`ZipArchiveTransport.
        apply_batch`, where every single operation costs a full-archive
        pass) stage in a local temp directory instead and take the whole
        cut-over — promotions, manifest publish, old-shard removal — in
        ONE atomic swap.
        """
        retention = retention or RetentionPolicy()
        cutoff: Optional[float] = None
        if retention.max_age is not None:
            cutoff = self.end_time - retention.max_age

        apply_batch = getattr(self.transport, "apply_batch", None)
        staging_dir: Optional[str] = None
        if apply_batch is not None:
            # Per-blob mutations are whole-archive passes on this
            # transport: stage on the local filesystem and swap once.
            staging_dir = tempfile.mkdtemp(prefix="ompdataperf-compact-")
            scratch: ShardTransport = LocalDirTransport(
                Path(staging_dir) / "scratch", create=True
            )
        else:
            scratch = PrefixTransport(self.transport, COMPACT_SCRATCH_PREFIX)
            scratch.clear()  # stale staging from an earlier failed compaction
        old_files = [shard.file for shard in self.shards]

        try:
            return self._compact_into(
                scratch,
                old_files,
                shard_events=shard_events,
                compress=compress,
                retention=retention,
                cutoff=cutoff,
                apply_batch=apply_batch,
                shard_format=shard_format,
            )
        finally:
            if staging_dir is not None:
                shutil.rmtree(staging_dir, ignore_errors=True)

    def _compact_into(
        self,
        scratch,
        old_files: list[str],
        *,
        shard_events: int,
        compress: bool,
        retention: "RetentionPolicy",
        cutoff: Optional[float],
        apply_batch,
        shard_format: Optional[str],
    ) -> "ShardedTraceStore":
        writer = TraceWriter(
            scratch,
            shard_events=shard_events,
            num_devices=self.num_devices,
            program_name=self.program_name,
            compress=compress,
            shard_format=shard_format,
        )
        for batch in self.batches():
            writer.write_batch(retention.filter_batch(batch, cutoff))
        staged = writer.close(total_runtime=self.total_runtime)

        # Shard-count and byte budgets: keep the newest staged suffix.
        kept_lo = 0
        if retention.max_shards is not None:
            kept_lo = max(kept_lo, len(staged.shards) - retention.max_shards)
        if retention.max_total_bytes is not None:
            budget = retention.max_total_bytes
            lo = len(staged.shards)
            for shard in reversed(staged.shards[kept_lo:]):
                budget -= scratch.blob_size(shard.file)
                if budget < 0:
                    break
                lo -= 1
            kept_lo = max(kept_lo, lo)
        kept = staged.shards[kept_lo:]
        for shard in staged.shards[:kept_lo]:
            scratch.delete_blob(shard.file)

        if kept_lo > 0:
            stats = StreamStats()
            for shard_stats in writer.shard_stats[kept_lo:]:
                stats.merge(shard_stats)
        else:
            stats = writer.stats

        # Promote the staged shards under names no live shard uses
        # (repeated compactions bump the generation tag).  The extension
        # follows each staged shard's format.
        generation = 0
        while any(
            self.transport.blob_exists(f"shard-g{generation}-{i:05d}.{shard.format}")
            for i, shard in enumerate(kept)
        ):
            generation += 1
        promotions: list[tuple[str, str]] = []  # (scratch file, live name)
        renamed: list[ShardInfo] = []
        for i, shard in enumerate(kept):
            name = f"shard-g{generation}-{i:05d}.{shard.format}"
            promotions.append((shard.file, name))
            renamed.append(
                ShardInfo(
                    file=name,
                    num_data_op_events=shard.num_data_op_events,
                    num_target_events=shard.num_target_events,
                    end_time=shard.end_time,
                    format=shard.format,
                )
            )

        manifest = _build_manifest(
            num_devices=self.num_devices,
            program_name=self.program_name,
            total_runtime=self.total_runtime,
            shards=renamed,
            stats=stats,
        )
        manifest_blob = (json.dumps(manifest, indent=2) + "\n").encode("utf-8")

        if apply_batch is not None:
            # The staged shards live in the local scratch directory; the
            # cut-over writes them in lazily (one blob in memory at a
            # time), publishes the manifest, removes the old shards and
            # any stale same-transport scratch from older failed runs —
            # all in ONE atomic swap.
            stale_scratch = [
                name
                for name in self.transport.list_blobs()
                if name.startswith(COMPACT_SCRATCH_PREFIX + "/")
            ]
            writes: dict = {MANIFEST_NAME: manifest_blob}
            for src, dst in promotions:
                writes[dst] = (lambda file=src: scratch.read_blob(file))
            apply_batch(writes=writes, deletes=old_files + stale_scratch)
        else:
            # Same-transport staging: promote with per-blob renames …
            for src, dst in promotions:
                self.transport.rename_blob(f"{COMPACT_SCRATCH_PREFIX}/{src}", dst)
            # … then the atomic cut-over: one manifest publish flips the
            # store to the new shard set (write_blob is an atomic replace
            # on every transport).
            self.transport.write_blob(MANIFEST_NAME, manifest_blob)
            # Old shards and scratch leftovers go last: a crash before
            # this point orphans blobs, never dangles a manifest reference.
            for file in old_files:
                self.transport.delete_blob(file)
            scratch.clear()
        return ShardedTraceStore.open(self.transport)

    # ------------------------------------------------------------------ #
    # TraceLike aggregate surface (manifest only)
    # ------------------------------------------------------------------ #
    @property
    def host_device_num(self) -> int:
        return self.num_devices

    @property
    def num_data_op_events(self) -> int:
        return int(self._stats["num_data_op_events"])

    @property
    def num_target_events(self) -> int:
        return int(self._stats["num_target_events"])

    @property
    def end_time(self) -> float:
        return float(self._stats["end_time"])

    @property
    def runtime(self) -> float:
        if self.total_runtime is not None:
            return self.total_runtime
        return self.end_time

    def __len__(self) -> int:
        return self.num_data_op_events + self.num_target_events

    def is_empty(self) -> bool:
        return len(self) == 0

    def space_overhead_bytes(self) -> int:
        from repro.events.records import DATA_OP_EVENT_BYTES, TARGET_EVENT_BYTES

        return (
            DATA_OP_EVENT_BYTES * self.num_data_op_events
            + TARGET_EVENT_BYTES * self.num_target_events
        )

    def data_op_kind_counts(self) -> dict[str, int]:
        """Events per data-op kind, from the manifest."""
        return dict(self._stats["data_op_kind_counts"])

    def target_kind_counts(self) -> dict[str, int]:
        """Events per target kind, from the manifest."""
        return dict(self._stats["target_kind_counts"])

    def on_disk_bytes(self) -> int:
        """Total stored size of the store (shards + manifest)."""
        total = self.transport.blob_size(MANIFEST_NAME)
        for shard in self.shards:
            total += self.transport.blob_size(shard.file)
        return total

    def shard_format_counts(self) -> dict[str, int]:
        """Shards per format, from the manifest alone."""
        counts: dict[str, int] = {}
        for shard in self.shards:
            counts[shard.format] = counts.get(shard.format, 0) + 1
        return counts

    def on_disk_bytes_by_format(self) -> dict[str, int]:
        """Stored shard bytes per format (the manifest is not attributed)."""
        totals: dict[str, int] = {}
        for shard in self.shards:
            totals[shard.format] = totals.get(
                shard.format, 0
            ) + self.transport.blob_size(shard.file)
        return totals

    def summary(self) -> dict:
        stats = self._stats
        return {
            "program_name": self.program_name,
            "num_devices": self.num_devices,
            "num_target_events": stats["num_target_events"],
            "num_kernel_events": stats["num_kernel_events"],
            "num_data_op_events": stats["num_data_op_events"],
            "num_transfers": stats["num_transfers"],
            "num_allocations": stats["num_allocations"],
            "bytes_transferred": stats["bytes_transferred"],
            "transfer_time": stats["transfer_time"],
            "alloc_time": stats["alloc_time"],
            "kernel_time": stats["kernel_time"],
            "runtime": self.runtime,
            "space_overhead_bytes": self.space_overhead_bytes(),
        }

    # ------------------------------------------------------------------ #
    # Materialisation (the expensive path, for small stores)
    # ------------------------------------------------------------------ #
    def load(self) -> ColumnarTrace:
        """Merge every shard into one in-memory columnar trace."""
        return merge_stream(self)

    @property
    def data_op_events(self):
        return self.load().data_op_events

    @property
    def target_events(self):
        return self.load().target_events


def _build_manifest(
    *,
    num_devices: int,
    program_name: Optional[str],
    total_runtime: Optional[float],
    shards: list[ShardInfo],
    stats: StreamStats,
) -> dict:
    return {
        "kind": STORE_KIND,
        "format_version": STORE_FORMAT_VERSION,
        "num_devices": num_devices,
        "program_name": program_name,
        "total_runtime": total_runtime,
        "shards": [s.to_dict() for s in shards],
        "stats": {
            "num_data_op_events": stats.num_data_op_events,
            "num_target_events": stats.num_target_events,
            "num_kernel_events": stats.num_kernel_events,
            "num_transfers": stats.num_transfers,
            "num_allocations": stats.num_allocations,
            "bytes_transferred": stats.bytes_transferred,
            "transfer_time": stats.transfer_time,
            "alloc_time": stats.alloc_time,
            "kernel_time": stats.kernel_time,
            "end_time": stats.end_time,
            "data_op_kind_counts": stats.data_op_kind_counts,
            "target_kind_counts": stats.target_kind_counts,
        },
    }


class TraceWriter:
    """Bounded-memory trace ingest: buffer, flush shards, write manifest.

    The writer exposes the same ``append_data_op`` / ``append_target``
    surface as :class:`ColumnarTrace`, so the collector can use either as
    its sink.  Whenever the buffer reaches ``shard_events`` events it is
    written out as one shard and reset — ingest memory is O(shard_events)
    no matter how long the monitored program runs.  The destination is a
    path (local directory, or ``*.zip`` for a single-file archive) or any
    :class:`~repro.events.transport.ShardTransport`.
    """

    def __init__(
        self,
        destination,
        *,
        shard_events: int = DEFAULT_SHARD_EVENTS,
        num_devices: int = 1,
        program_name: Optional[str] = None,
        compress: bool = False,
        shard_format: Optional[str] = None,
    ) -> None:
        if shard_events < 1:
            raise ValueError("shard_events must be at least 1")
        if shard_format is None:
            # The flat format is uncompressed by construction, so an
            # archival (compressed) store keeps the legacy binary shards.
            shard_format = SHARD_FORMAT_NPZ if compress else SHARD_FORMAT_ODPF
        if shard_format not in SHARD_FORMATS:
            raise ValueError(
                f"unknown shard format {shard_format!r}; "
                f"known formats: {', '.join(SHARD_FORMATS)}"
            )
        if shard_format == SHARD_FORMAT_ODPF and compress:
            raise ValueError(
                "the flat 'odpf' shard format is uncompressed; "
                "use shard_format='npz' for a compressed store"
            )
        self.shard_format = shard_format
        self.transport = open_transport(destination, create=True)
        if self.transport.list_blobs():
            raise ValueError(
                f"{self.transport.describe()}: refusing to write into a "
                f"non-empty store location"
            )
        path = getattr(self.transport, "path", None)
        self.path: Optional[Path] = Path(path) if path is not None else None
        self.shard_events = shard_events
        self.num_devices = num_devices
        self.program_name = program_name
        self.compress = compress
        self.shards: list[ShardInfo] = []
        self.stats = StreamStats()
        #: per-shard folded statistics, aligned with ``shards`` (what lets
        #: retention-aware compaction re-derive the aggregate of any suffix)
        self.shard_stats: list[StreamStats] = []
        self.closed = False
        self._buffer = self._fresh_buffer()

    def _fresh_buffer(self) -> ColumnarTrace:
        return ColumnarTrace(num_devices=self.num_devices, program_name=self.program_name)

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self.closed:
            self.close()

    @property
    def buffered_events(self) -> int:
        return len(self._buffer)

    @property
    def num_events_written(self) -> int:
        return sum(s.num_events for s in self.shards)

    def _check_open(self) -> None:
        if self.closed:
            raise ValueError("writer is closed")

    def append_data_op(self, **kwargs) -> None:
        self._check_open()
        self._buffer.append_data_op(**kwargs)
        if len(self._buffer) >= self.shard_events:
            self.flush()

    def append_target(self, **kwargs) -> None:
        self._check_open()
        self._buffer.append_target(**kwargs)
        if len(self._buffer) >= self.shard_events:
            self.flush()

    def write_batch(self, batch: ColumnarTrace) -> None:
        """Ingest a whole columnar batch.

        The batch is appended to the buffer and complete shards are cut
        from the front, so consecutive small batches coalesce into
        full-size shards — re-sharding a finely sharded store to a larger
        ``shard_events`` genuinely merges its shards.
        """
        self._check_open()
        self._buffer.extend_from(batch)
        if len(self._buffer) < self.shard_events:
            return
        bounds = slice_bounds(self._buffer, self.shard_events)
        remainder: Optional[ColumnarTrace] = None
        for do_lo, do_hi, tgt_lo, tgt_hi in bounds:
            piece = self._buffer.slice_rows(do_lo, do_hi, tgt_lo, tgt_hi)
            if len(piece) < self.shard_events:
                remainder = piece
                break
            self._write_shard(piece)
        self._buffer = remainder if remainder is not None else self._fresh_buffer()

    def flush(self) -> None:
        """Write the buffered events as one shard and reset the buffer."""
        self._check_open()
        if self._buffer.is_empty():
            return
        self._write_shard(self._buffer)
        self._buffer = self._fresh_buffer()

    def _write_shard(self, shard: ColumnarTrace) -> None:
        name = f"shard-{len(self.shards):05d}.{self.shard_format}"
        shard.num_devices = self.num_devices
        shard.program_name = self.program_name
        shard.total_runtime = None  # a shard has no runtime of its own
        if self.shard_format == SHARD_FORMAT_ODPF:
            payload = shard.to_flat_payload()
        else:
            payload = shard.to_binary_bytes(compress=self.compress)
        self.transport.write_blob(name, payload)
        shard_stats = StreamStats()
        shard_stats.fold(shard)
        self.stats.merge(shard_stats)
        self.shard_stats.append(shard_stats)
        self.shards.append(
            ShardInfo(
                file=name,
                num_data_op_events=shard.num_data_op_events,
                num_target_events=shard.num_target_events,
                end_time=shard.end_time,
                format=self.shard_format,
            )
        )

    def close(
        self,
        *,
        num_devices: Optional[int] = None,
        program_name: Optional[str] = None,
        total_runtime: Optional[float] = None,
    ) -> ShardedTraceStore:
        """Flush the remainder, write the manifest, return the opened store."""
        self._check_open()
        if num_devices is not None:
            self.num_devices = num_devices
        if program_name is not None:
            self.program_name = program_name
        self.flush()
        self.closed = True
        manifest = _build_manifest(
            num_devices=self.num_devices,
            program_name=self.program_name,
            total_runtime=total_runtime,
            shards=self.shards,
            stats=self.stats,
        )
        self.transport.write_blob(
            MANIFEST_NAME, (json.dumps(manifest, indent=2) + "\n").encode("utf-8")
        )
        return ShardedTraceStore.open(self.transport)


def shard_trace(
    trace,
    destination,
    *,
    shard_events: int = DEFAULT_SHARD_EVENTS,
    compress: bool = False,
    shard_format: Optional[str] = None,
) -> ShardedTraceStore:
    """Write any trace representation (or stream) out as a sharded store.

    ``destination`` is a directory path, a ``*.zip`` archive path, or a
    :class:`~repro.events.transport.ShardTransport`.
    """
    from repro.events.stream import as_event_stream

    stream = as_event_stream(trace)
    writer = TraceWriter(
        destination,
        shard_events=shard_events,
        num_devices=stream.num_devices,
        program_name=stream.program_name,
        compress=compress,
        shard_format=shard_format,
    )
    for batch in stream.batches():
        writer.write_batch(batch)
    return writer.close(total_runtime=stream.total_runtime)


def merge_shards(store: ShardedTraceStore) -> ColumnarTrace:
    """Merge a sharded store back into one in-memory columnar trace."""
    return merge_stream(store)
