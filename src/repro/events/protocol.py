"""The common protocols the trace representations satisfy.

:class:`~repro.events.trace.Trace` (array-of-structs: one dataclass per
event) and :class:`~repro.events.columnar.ColumnarTrace` (struct-of-arrays:
one NumPy array per field) are interchangeable wherever :class:`TraceLike`
is all that is required.  The analysis, overhead-accounting and
optimization-potential layers are written against it, so either
representation can flow through the whole post-mortem pipeline.

:class:`EventStream` is the third, chunked view of the same data: a
re-iterable sequence of columnar batches (shards) in chronological order.
:class:`~repro.events.store.ShardedTraceStore` implements it from disk,
:meth:`ColumnarTrace.batches` implements it trivially (one batch), and the
``find_*_streaming`` detector variants consume it with O(carry) memory
instead of O(trace).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Protocol, Sequence, runtime_checkable

from repro.events.records import DataOpEvent, TargetEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.events.columnar import ColumnarTrace


@runtime_checkable
class TraceLike(Protocol):
    """What the post-mortem analysis layers require of a trace."""

    num_devices: int
    program_name: Optional[str]
    total_runtime: Optional[float]

    @property
    def host_device_num(self) -> int: ...

    @property
    def end_time(self) -> float: ...

    @property
    def runtime(self) -> float: ...

    @property
    def data_op_events(self) -> Sequence[DataOpEvent]: ...

    @property
    def target_events(self) -> Sequence[TargetEvent]: ...

    def __len__(self) -> int: ...

    def space_overhead_bytes(self) -> int: ...

    def summary(self) -> dict: ...


@runtime_checkable
class EventStream(Protocol):
    """A re-iterable stream of chronologically ordered columnar batches.

    The contract the streaming detectors rely on:

    * **Re-iterable.**  Every call to :meth:`batches` returns a fresh
      iterator over the same shards; a detector may scan the stream more
      than once (a counting fold plus a finding-materialisation pass).
    * **Chronological.**  Concatenating the batches yields a valid trace:
      within each column group, start times are non-decreasing and sequence
      numbers ascend across batch boundaries — exactly what
      :func:`repro.events.validation.validate_trace` enforces for a single
      trace and :func:`~repro.events.validation.validate_stream` enforces
      shard by shard.
    * **Stable metadata.**  ``num_devices`` / ``program_name`` /
      ``total_runtime`` describe the whole trace, not one batch.
    """

    num_devices: int
    program_name: Optional[str]
    total_runtime: Optional[float]

    def batches(self) -> Iterator["ColumnarTrace"]: ...


def num_data_op_events(trace: TraceLike) -> int:
    """Number of data-op events without materialising object events."""
    n = getattr(trace, "num_data_op_events", None)
    if n is not None:
        return int(n)
    return len(trace.data_op_events)


def num_target_events(trace: TraceLike) -> int:
    """Number of target events without materialising object events."""
    n = getattr(trace, "num_target_events", None)
    if n is not None:
        return int(n)
    return len(trace.target_events)
