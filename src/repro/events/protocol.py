"""The common protocol both trace representations satisfy.

:class:`~repro.events.trace.Trace` (array-of-structs: one dataclass per
event) and :class:`~repro.events.columnar.ColumnarTrace` (struct-of-arrays:
one NumPy array per field) are interchangeable wherever this protocol is all
that is required.  The analysis, overhead-accounting and optimization-
potential layers are written against it, so either representation can flow
through the whole post-mortem pipeline.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, runtime_checkable

from repro.events.records import DataOpEvent, TargetEvent


@runtime_checkable
class TraceLike(Protocol):
    """What the post-mortem analysis layers require of a trace."""

    num_devices: int
    program_name: Optional[str]
    total_runtime: Optional[float]

    @property
    def host_device_num(self) -> int: ...

    @property
    def end_time(self) -> float: ...

    @property
    def runtime(self) -> float: ...

    @property
    def data_op_events(self) -> Sequence[DataOpEvent]: ...

    @property
    def target_events(self) -> Sequence[TargetEvent]: ...

    def __len__(self) -> int: ...

    def space_overhead_bytes(self) -> int: ...

    def summary(self) -> dict: ...


def num_data_op_events(trace: TraceLike) -> int:
    """Number of data-op events without materialising object events."""
    n = getattr(trace, "num_data_op_events", None)
    if n is not None:
        return int(n)
    return len(trace.data_op_events)


def num_target_events(trace: TraceLike) -> int:
    """Number of target events without materialising object events."""
    n = getattr(trace, "num_target_events", None)
    if n is not None:
        return int(n)
    return len(trace.target_events)
