"""Decoded-shard cache over shared memory: decode each shard blob once.

Parallel engines used to pay the ``.npz`` decode of every shard in every
worker that touched it — the single largest per-task constant in the
engine benchmarks.  A :class:`SharedShardCache` materialises each shard's
columns into the flat payload format (:meth:`ColumnarTrace.write_flat_payload`)
exactly once, in whichever process first needs the shard, and every other
process builds zero-copy NumPy views over the same physical pages with
:meth:`ColumnarTrace.from_shared`.

Two backends, picked automatically:

* ``shm`` — ``multiprocessing.shared_memory`` segments with deterministic
  names (``odp_<run>_s<index>``).  The cache *owner* (the engine that
  created the run id) unlinks every segment in :meth:`cleanup`; worker
  processes attach, keep their handles mapped for their lifetime, and a
  worker's exit never unlinks a segment other workers still map (see
  :func:`_open_segment` for how the resource tracker is kept honest).
* ``mmap`` — flat payload files under a scratch directory, published
  atomically through a :class:`~repro.events.transport.LocalDirTransport`
  and mapped read-only.  The fallback where POSIX shared memory is not
  available; the OS page cache provides the single-physical-copy property.

Ownership rules (also documented in ``docs/architecture.md``):

1. exactly one process owns a cache (the one that called the constructor
   without a spec); only the owner may :meth:`cleanup`;
2. workers receive the picklable :meth:`spec` and attach with
   :meth:`from_spec`;
3. publication is idempotent: partitions are disjoint shard ranges, so
   concurrent publication of one index is rare, and losing such a race is
   harmless — both writers produce identical bytes;
4. any backend failure (``/dev/shm`` full, scratch dir gone) degrades the
   cache to a no-op for the affected process: correctness never depends
   on the cache, only speed;
5. the cache is skipped entirely for shards that are already flat
   ``.odpf`` payloads behind an mmap-capable transport
   (:func:`direct_map_preferred`): the store file is its own shared
   payload, so publication would only duplicate pages the OS page cache
   already shares.
"""

from __future__ import annotations

import errno
import os
import shutil
import tempfile
import uuid
from typing import Optional

from repro.events.columnar import ColumnarTrace
from repro.events.transport import LocalDirTransport, TransportError, try_map_blob

#: Shared-memory segment name prefix (kept short: macOS caps POSIX shm
#: names at 31 characters; ``odp_`` + 8 hex + ``_s`` + 5 digits = 20).
_SEGMENT_PREFIX = "odp_"

BACKENDS = ("shm", "mmap", "off")


def _shm_module():
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - platform without _posixshmem
        return None
    return shared_memory


def default_backend() -> str:
    """The best backend this platform offers."""
    return "shm" if _shm_module() is not None else "mmap"


def direct_map_preferred(transport, shard_format: str) -> bool:
    """Should loads of this shard bypass the cache and map the store blob?

    True exactly when the shard on disk already *is* a flat payload
    (``"odpf"``) and the transport can memory-map its blobs: then every
    process's views share the store file's own pages through the OS page
    cache, so publishing a second copy into ``/dev/shm`` (or a scratch
    file) buys nothing — the cache step collapses to zero.  The format
    string matches :data:`repro.events.store.SHARD_FORMAT_ODPF` (compared
    literally here to keep this module import-light).
    """
    return shard_format == "odpf" and callable(getattr(transport, "map_blob", None))


def ensure_resource_tracker() -> None:
    """Start the multiprocessing resource tracker in *this* process.

    On Python < 3.13 every ``SharedMemory`` open registers with the
    tracker, and the tracker is spawned lazily by whichever process
    registers first.  If that happens inside a forked worker, each worker
    gets a private tracker the parent's ``unlink()`` can never balance,
    and every one of them prints bogus "leaked shared_memory" warnings at
    exit.  Spawning the tracker in the pool owner *before* forking makes
    all children inherit the same tracker, whose per-name set collapses
    the duplicate registrations.  Harmless no-op on 3.13+ (``track=False``
    keeps the tracker out entirely).
    """
    if _shm_module() is None:  # pragma: no cover - platform without shm
        return
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def _open_segment(name: str, *, create: bool, size: int = 0):
    """Open a shared-memory segment with tracker-safe accounting.

    Segment lifetime belongs to the cache owner, not to whichever process
    happens to die first.  On Python 3.13+ ``track=False`` keeps the
    resource tracker out entirely.  Before 3.13 the tracker registers
    every open (create *and* attach), but all pool workers share the
    parent's tracker process and its per-name bookkeeping is a set, so
    duplicate registrations collapse and the owner's ``unlink()`` sends
    the one matching unregister — accounting stays balanced, and the
    tracker doubles as a last-resort net for an engine that is never
    closed.
    """
    shared_memory = _shm_module()
    try:
        return shared_memory.SharedMemory(name=name, create=create, size=size, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name, create=create, size=size)


class SharedShardCache:
    """Shared views of decoded shards, keyed by shard index.

    Construct with no arguments in the owning process; ship :meth:`spec`
    to workers and rebuild with :meth:`from_spec` there.
    """

    def __init__(
        self,
        *,
        backend: Optional[str] = None,
        run_id: Optional[str] = None,
        scratch_dir: Optional[str] = None,
        owner: bool = True,
    ) -> None:
        self.backend = backend or default_backend()
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown shard-cache backend {self.backend!r}")
        self.run_id = run_id or uuid.uuid4().hex[:8]
        self.owner = owner
        self._scratch_owned = False
        if self.backend == "mmap" and scratch_dir is None:
            scratch_dir = tempfile.mkdtemp(prefix="ompdataperf-shardcache-")
            self._scratch_owned = owner
        self.scratch_dir = scratch_dir
        self._scratch_transport = (
            LocalDirTransport(scratch_dir, create=owner)
            if self.backend == "mmap"
            else None
        )
        #: open segment handles / mmaps, kept alive for the process lifetime
        #: (views into them must never outlive the mapping)
        self._handles: dict[int, object] = {}
        self._broken = self.backend == "off"
        self.hits = 0
        self.publishes = 0
        self.failures = 0

    # ------------------------------------------------------------------ #
    # Worker plumbing
    # ------------------------------------------------------------------ #
    def spec(self) -> dict:
        """Picklable description a worker rebuilds the cache from."""
        return {
            "backend": self.backend,
            "run_id": self.run_id,
            "scratch_dir": self.scratch_dir,
        }

    @classmethod
    def from_spec(cls, spec: Optional[dict]) -> Optional["SharedShardCache"]:
        if spec is None:
            return None
        return cls(
            backend=spec["backend"],
            run_id=spec["run_id"],
            scratch_dir=spec.get("scratch_dir"),
            owner=False,
        )

    def _segment_name(self, index: int) -> str:
        return f"{_SEGMENT_PREFIX}{self.run_id}_s{index:05d}"

    # ------------------------------------------------------------------ #
    # Cache protocol (used by ShardedTraceStore.load_batch)
    # ------------------------------------------------------------------ #
    def attach(self, index: int) -> Optional[ColumnarTrace]:
        """A zero-copy view of shard ``index`` if already published."""
        if self._broken:
            return None
        handle = self._handles.get(index)
        if handle is None:
            handle = self._try_open(index)
            if handle is None:
                return None
            self._handles[index] = handle
        name = self._segment_name(index)
        buf = handle.buf if hasattr(handle, "buf") else handle
        try:
            trace = ColumnarTrace.from_shared(buf, keepalive=handle, source=name)
        except ValueError:
            # The segment exists but its magic is not committed yet — a
            # publisher is mid-write (write_flat_payload stamps the prefix
            # last).  Fall back to a private decode; a later attach sees
            # the committed payload through this same mapping.
            return None
        self.hits += 1
        return trace

    def publish(self, index: int, trace: ColumnarTrace) -> None:
        """Materialise ``trace`` as shard ``index``'s shared payload.

        Best-effort: failures mark the cache broken for this process and
        the caller keeps its privately decoded batch.
        """
        if self._broken or index in self._handles:
            return
        try:
            if self.backend == "shm":
                size = trace.flat_payload_size()
                try:
                    shm = _open_segment(self._segment_name(index), create=True, size=size)
                except FileExistsError:
                    # Lost a (harmless) publication race: identical bytes.
                    return
                trace.write_flat_payload(shm.buf)
                self._handles[index] = shm
            else:
                self._scratch_transport.write_blob(
                    self._blob_name(index), trace.to_flat_payload()
                )
            self.publishes += 1
        except (OSError, TransportError, ValueError):
            # /dev/shm exhausted, scratch dir gone, oversized shard … the
            # cache stops trying; every load falls back to plain decode.
            self.failures += 1
            self._broken = True

    def _blob_name(self, index: int) -> str:
        return f"{self._segment_name(index)}.flat"

    def _try_open(self, index: int):
        try:
            if self.backend == "shm":
                return _open_segment(self._segment_name(index), create=False)
            return try_map_blob(self._scratch_transport, self._blob_name(index))
        except FileNotFoundError:
            return None
        except ValueError:
            # The publisher created the segment but has not sized it yet
            # (shm_open happened, ftruncate has not): mmap of an empty
            # file.  Not published; retry on a later attach.
            return None
        except OSError as exc:  # pragma: no cover - depends on platform
            if exc.errno == errno.ENOENT:
                return None
            self.failures += 1
            self._broken = True
            return None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop this process's handles (mappings die with the views)."""
        handles, self._handles = self._handles, {}
        for handle in handles.values():
            try:
                handle.close()
            except (BufferError, OSError):  # pragma: no cover - live views
                # NumPy views still reference the mapping; the OS reclaims
                # it when the process exits.  Unlink (below) is unaffected.
                pass

    def cleanup(self, num_shards: int) -> None:
        """Owner-only: unlink every published segment (idempotent).

        Attaches each deterministic segment name and unlinks it, so the
        owner removes segments published by *any* process — including
        workers that crashed after publishing.
        """
        if not self.owner:
            self.close()
            return
        if self.backend == "shm" and _shm_module() is not None:
            for index in range(num_shards):
                handle = self._handles.pop(index, None)
                if handle is None:
                    try:
                        handle = _open_segment(self._segment_name(index), create=False)
                    except (FileNotFoundError, OSError):
                        continue
                try:
                    handle.unlink()
                except (FileNotFoundError, OSError):  # pragma: no cover
                    pass
                try:
                    handle.close()
                except (BufferError, OSError):  # pragma: no cover - live views
                    pass
        self.close()
        if self.backend == "mmap" and self._scratch_owned and self.scratch_dir:
            shutil.rmtree(self.scratch_dir, ignore_errors=True)


def residual_segments(run_id: Optional[str] = None) -> list[str]:
    """Shared-memory segments this module published and never unlinked.

    Linux-only introspection over ``/dev/shm`` (other platforms report
    an empty list); the leak-detection tests assert this is empty after
    every engine shutdown and injected crash.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    wanted = _SEGMENT_PREFIX + (run_id or "")
    return sorted(
        name for name in os.listdir(shm_dir) if name.startswith(wanted)
    )
