"""Adversarial synthetic traces: valid, seeded, and deliberately hostile.

:mod:`repro.events.synth` generates the *friendly* million-event trace the
benchmarks want — regular five-slot cycles, kind findings, no surprises.
This module generates the traces a fuzzer wants: still **valid** per
:func:`repro.events.validation.validate_trace` (the differential oracle
compares analysers, so the input must be in-contract), but shaped from the
patterns that have historically broken streaming/partitioned analysis:

* **pathological alloc nesting** — hundreds of allocations open at once,
  released in LIFO, FIFO or shuffled order, so carry state peaks;
* **interleaved / split round-trip legs** — an ``h2d`` whose matching
  ``d2h`` lands thousands of events (and many motifs) later, forcing the
  leg to survive shard cuts and partition merges;
* **duplicate storms** — long transfer runs drawn from a tiny payload-hash
  pool, stressing duplicate grouping across boundaries;
* **repeated-allocation churn** and **freed-address reuse** — the same
  mapping key or device address cycling through alloc/delete repeatedly;
* **kernel bursts** — long data-op-free stretches that become shards with
  zero data ops;
* **same-timestamp bursts** — ties in ``start_time`` that any
  sort-assuming merge must keep stable.

Everything is driven by one :func:`numpy.random.default_rng` seed: the same
``(num_events, seed)`` always yields the same trace, so a failing fuzz case
reproduces from its printed seed alone.

:func:`write_hostile_store` extends the hostility to the *storage layout*:
random shard cut sizes (shard-boundary-hostile orderings), per-shard format
flips between ``npz`` and ``odpf``, and injected zero-event shards spliced
into the manifest (empty-shard layouts).
"""

from __future__ import annotations

import json
from typing import Optional

import numpy as np

from repro.events.columnar import (
    CODE_ALLOC,
    CODE_DELETE,
    CODE_FROM_DEVICE,
    CODE_TARGET,
    CODE_TO_DEVICE,
    ColumnarTrace,
)
from repro.events.store import (
    MANIFEST_NAME,
    SHARD_FORMAT_NPZ,
    SHARD_FORMAT_ODPF,
    ShardedTraceStore,
    TraceWriter,
)

_DT = 1e-6  # clock step between events (0 inside a same-timestamp burst)
_DUR = 0.6e-6

#: The duplicate-storm payload pool: every storm draws from these hashes.
_HASH_POOL = (0x0D0D_0001, 0x0D0D_0002, 0x0D0D_0003, 0x0D0D_0004)


class _Builder:
    """Column-list event sink with live-allocation bookkeeping."""

    def __init__(self, num_devices: int, rng: np.random.Generator) -> None:
        self.num_devices = num_devices
        self.host = num_devices
        self.rng = rng
        self.seq = 0
        self.clock = 0.0
        self.burst = 0  # remaining events that reuse the current timestamp
        # data-op columns
        self.do: dict[str, list] = {
            name: []
            for name in (
                "seq", "kind", "src_device_num", "dest_device_num",
                "src_addr", "dest_addr", "nbytes", "start_time", "end_time",
                "content_hash", "has_content_hash",
            )
        }
        # target columns
        self.tg: dict[str, list] = {
            name: [] for name in ("seq", "kind", "device_num", "start_time", "end_time")
        }
        #: live device buffers: (device, dev_addr) -> (host_addr, nbytes)
        self.live: dict[tuple[int, int], tuple[int, int]] = {}
        #: split round-trip legs awaiting their d2h: the fuzzer's carry bait
        self.open_legs: list[tuple[int, int, int, int, int]] = []
        self._next_host = 0x0100_0000
        self._next_dev = [0x4000_0000 + d * 0x0800_0000 for d in range(num_devices)]
        self._freed: list[tuple[int, int]] = []
        self._fresh_hash = 0x1000_0000

    # -- allocators ----------------------------------------------------- #
    def host_addr(self) -> int:
        self._next_host += 0x40
        return self._next_host

    def dev_addr(self, device: int, *, reuse: bool = False) -> int:
        if reuse and self._freed:
            for i, (d, addr) in enumerate(self._freed):
                if d == device and (device, addr) not in self.live:
                    del self._freed[i]
                    return addr
        self._next_dev[device] += 0x100
        return self._next_dev[device]

    def fresh_hash(self) -> int:
        self._fresh_hash += 1
        return self._fresh_hash

    def pool_hash(self) -> int:
        return _HASH_POOL[int(self.rng.integers(len(_HASH_POOL)))]

    # -- clock ---------------------------------------------------------- #
    def _tick(self) -> tuple[float, float]:
        if self.burst > 0:
            self.burst -= 1
        else:
            self.clock += _DT
            if self.rng.random() < 0.02:  # start a same-timestamp burst
                self.burst = int(self.rng.integers(2, 9))
        return self.clock, self.clock + _DUR

    def _next_seq(self) -> int:
        self.seq += 1
        return self.seq

    # -- events --------------------------------------------------------- #
    def _data_op(
        self, kind: int, src_dev: int, dest_dev: int, src_addr: int,
        dest_addr: int, nbytes: int, payload: Optional[int],
    ) -> None:
        start, end = self._tick()
        do = self.do
        do["seq"].append(self._next_seq())
        do["kind"].append(kind)
        do["src_device_num"].append(src_dev)
        do["dest_device_num"].append(dest_dev)
        do["src_addr"].append(src_addr)
        do["dest_addr"].append(dest_addr)
        do["nbytes"].append(nbytes)
        do["start_time"].append(start)
        do["end_time"].append(end)
        do["content_hash"].append(payload if payload is not None else 0)
        do["has_content_hash"].append(payload is not None)

    def alloc(self, device: int, host_addr: int, dev_addr: int, nbytes: int) -> None:
        assert (device, dev_addr) not in self.live, "alloc of a live buffer"
        self.live[(device, dev_addr)] = (host_addr, nbytes)
        self._data_op(CODE_ALLOC, self.host, device, host_addr, dev_addr, nbytes, None)

    def delete(self, device: int, dev_addr: int) -> None:
        host_addr, nbytes = self.live.pop((device, dev_addr))
        self._freed.append((device, dev_addr))
        self._data_op(CODE_DELETE, self.host, device, host_addr, dev_addr, nbytes, None)

    def h2d(self, device: int, dev_addr: int, payload: int) -> None:
        host_addr, nbytes = self.live[(device, dev_addr)]
        self._data_op(
            CODE_TO_DEVICE, self.host, device, host_addr, dev_addr, nbytes, payload
        )

    def d2h(self, device: int, dev_addr: int, payload: int) -> None:
        host_addr, nbytes = self.live[(device, dev_addr)]
        self._data_op(
            CODE_FROM_DEVICE, device, self.host, dev_addr, host_addr, nbytes, payload
        )

    def kernel(self, device: int) -> None:
        start, end = self._tick()
        tg = self.tg
        tg["seq"].append(self._next_seq())
        tg["kind"].append(CODE_TARGET)
        tg["device_num"].append(device)
        tg["start_time"].append(start)
        tg["end_time"].append(end)

    @property
    def num_events(self) -> int:
        return len(self.do["seq"]) + len(self.tg["seq"])

    # -- motif helpers --------------------------------------------------- #
    def simple_buffer(self, device: int, *, reuse_addr: bool = False) -> int:
        addr = self.dev_addr(device, reuse=reuse_addr)
        self.alloc(device, self.host_addr(), addr, 1024 + 8 * int(self.rng.integers(256)))
        return addr

    def open_leg(self, device: int) -> None:
        """Start a split round trip: h2d now, matching d2h much later."""
        addr = self.simple_buffer(device)
        payload = self.fresh_hash()
        self.h2d(device, addr, payload)
        host_addr, nbytes = self.live[(device, addr)]
        self.open_legs.append((device, addr, host_addr, nbytes, payload))

    def close_leg(self) -> bool:
        """Finish the oldest-or-random open round trip leg."""
        if not self.open_legs:
            return False
        index = 0 if self.rng.random() < 0.5 else int(self.rng.integers(len(self.open_legs)))
        device, addr, _host, _nbytes, payload = self.open_legs.pop(index)
        self.kernel(device)
        self.d2h(device, addr, payload)  # unmodified payload: a round trip
        self.delete(device, addr)
        return True


# ------------------------------------------------------------------- #
# Motifs
# ------------------------------------------------------------------- #
def _motif_deep_nest(b: _Builder, device: int, budget: int) -> None:
    depth = int(b.rng.integers(8, max(9, min(220, budget // 2))))
    addrs = [b.simple_buffer(device) for _ in range(depth)]
    b.kernel(device)
    order = int(b.rng.integers(3))
    if order == 0:  # LIFO
        addrs.reverse()
    elif order == 2:  # shuffled
        b.rng.shuffle(addrs)
    for addr in addrs:
        b.delete(device, addr)


def _motif_duplicate_storm(b: _Builder, device: int, budget: int) -> None:
    addr = b.simple_buffer(device)
    for _ in range(int(b.rng.integers(6, max(7, min(48, budget))))):
        b.h2d(device, addr, b.pool_hash())
    b.kernel(device)
    b.d2h(device, addr, b.fresh_hash())
    b.delete(device, addr)


def _motif_repeated_alloc(b: _Builder, device: int, budget: int) -> None:
    # One fixed (host address, size) mapping key churning through
    # alloc/delete: every cycle after the first is a repeated allocation.
    host_addr = 0x0005_0000 + device * 0x1000 + int(b.rng.integers(8)) * 0x40
    nbytes = 4096
    for _ in range(int(b.rng.integers(3, max(4, min(12, budget // 2))))):
        addr = b.dev_addr(device)
        b.alloc(device, host_addr, addr, nbytes)
        if b.rng.random() < 0.5:
            b.h2d(device, addr, b.fresh_hash())
        b.delete(device, addr)


def _motif_kernel_burst(b: _Builder, device: int, budget: int) -> None:
    for _ in range(int(b.rng.integers(16, max(17, min(128, budget))))):
        b.kernel(device)


def _motif_unused_chain(b: _Builder, device: int, budget: int) -> None:
    addr = b.simple_buffer(device)
    if b.rng.random() < 0.5:
        # Overwritten h2d with no kernel between: an unused transfer.
        b.h2d(device, addr, b.fresh_hash())
        b.h2d(device, addr, b.fresh_hash())
        b.kernel(device)
        b.d2h(device, addr, b.fresh_hash())
    # else: alloc/delete with no transfer at all — an unused allocation.
    b.delete(device, addr)


def _motif_addr_reuse(b: _Builder, device: int, budget: int) -> None:
    addr = b.simple_buffer(device)
    b.h2d(device, addr, b.fresh_hash())
    b.delete(device, addr)
    reused = b.simple_buffer(device, reuse_addr=True)
    b.kernel(device)
    b.delete(device, reused)


_MOTIFS = (
    (_motif_deep_nest, 0.12),
    (_motif_duplicate_storm, 0.22),
    (_motif_repeated_alloc, 0.14),
    (_motif_kernel_burst, 0.10),
    (_motif_unused_chain, 0.22),
    (_motif_addr_reuse, 0.20),
)


def make_hostile_trace(
    num_events: int,
    *,
    seed: int,
    num_devices: Optional[int] = None,
    program_name: Optional[str] = None,
) -> ColumnarTrace:
    """Generate a valid adversarial trace of roughly ``num_events`` events.

    Deterministic in ``(num_events, seed, num_devices)``; the result
    satisfies :func:`repro.events.validation.validate_trace` and leaves a
    tail of allocations (and split transfer legs) open at end-of-trace.
    """
    if num_events < 1:
        raise ValueError("num_events must be positive")
    rng = np.random.default_rng(seed)
    if num_devices is None:
        num_devices = int(rng.integers(1, 4))
    b = _Builder(num_devices, rng)
    weights = np.array([w for _, w in _MOTIFS])
    weights = weights / weights.sum()
    while b.num_events < num_events:
        budget = num_events - b.num_events + 8
        device = int(rng.integers(num_devices))
        # Split legs interleave with everything: open often, close late.
        roll = rng.random()
        if roll < 0.10:
            b.open_leg(device)
            continue
        if roll < 0.18 and len(b.open_legs) > 4:
            b.close_leg()
            continue
        motif = _MOTIFS[int(rng.choice(len(_MOTIFS), p=weights))][0]
        motif(b, device, budget)
    # Close about half the open legs; the rest stay open across the end of
    # the trace (open allocations at end-of-trace are valid).
    while len(b.open_legs) > 2 and rng.random() < 0.5:
        b.close_leg()

    data_ops = {
        "seq": np.array(b.do["seq"], dtype=np.int64),
        "kind": np.array(b.do["kind"], dtype=np.int8),
        "src_device_num": np.array(b.do["src_device_num"], dtype=np.int32),
        "dest_device_num": np.array(b.do["dest_device_num"], dtype=np.int32),
        "src_addr": np.array(b.do["src_addr"], dtype=np.uint64),
        "dest_addr": np.array(b.do["dest_addr"], dtype=np.uint64),
        "nbytes": np.array(b.do["nbytes"], dtype=np.int64),
        "start_time": np.array(b.do["start_time"], dtype=np.float64),
        "end_time": np.array(b.do["end_time"], dtype=np.float64),
        "content_hash": np.array(b.do["content_hash"], dtype=np.uint64),
        "has_content_hash": np.array(b.do["has_content_hash"], dtype=np.bool_),
    }
    targets = {
        "seq": np.array(b.tg["seq"], dtype=np.int64),
        "kind": np.array(b.tg["kind"], dtype=np.int8),
        "device_num": np.array(b.tg["device_num"], dtype=np.int32),
        "start_time": np.array(b.tg["start_time"], dtype=np.float64),
        "end_time": np.array(b.tg["end_time"], dtype=np.float64),
    }
    return ColumnarTrace.from_arrays(
        num_devices=num_devices,
        program_name=program_name or f"hostile-{seed}",
        total_runtime=b.clock + 1e-3,
        data_ops=data_ops if data_ops["seq"].size else None,
        targets=targets if targets["seq"].size else None,
    )


# ------------------------------------------------------------------- #
# Shard-boundary-hostile store layouts
# ------------------------------------------------------------------- #
def _hostile_bounds(
    trace: ColumnarTrace, rng: np.random.Generator, lo: int, hi: int
) -> list[tuple[int, int, int, int]]:
    """Row bounds cutting ``trace`` into randomly sized chronological spans."""
    all_seq = np.sort(np.concatenate([trace.do_seq, trace.tgt_seq]))
    total = all_seq.size
    bounds: list[tuple[int, int, int, int]] = []
    do_lo = tgt_lo = 0
    cut = 0
    while cut < total:
        cut = min(total, cut + int(rng.integers(lo, hi + 1)))
        cut_seq = all_seq[cut - 1]
        do_hi = int(np.searchsorted(trace.do_seq, cut_seq, side="right"))
        tgt_hi = int(np.searchsorted(trace.tgt_seq, cut_seq, side="right"))
        bounds.append((do_lo, do_hi, tgt_lo, tgt_hi))
        do_lo, tgt_lo = do_hi, tgt_hi
    return bounds


def write_hostile_store(
    trace: ColumnarTrace,
    destination,
    *,
    seed: int,
    min_shard_events: int = 64,
    max_shard_events: int = 4096,
    mixed_formats: bool = True,
    empty_shards: bool = True,
) -> ShardedTraceStore:
    """Write ``trace`` out with a shard layout chosen to be maximally awkward.

    Shard cuts are random sizes in ``[min_shard_events, max_shard_events]``
    (so motifs straddle boundaries in seed-dependent ways), shard formats
    flip between ``npz`` and ``odpf`` per shard when ``mixed_formats``, and
    with ``empty_shards`` one or two zero-event shards are spliced into the
    manifest at random positions.  The store's *content* is exactly
    ``trace`` — only the layout is hostile — so analysis results must match
    any other representation bit-for-bit.
    """
    rng = np.random.default_rng(seed)
    writer = TraceWriter(
        destination,
        shard_events=2**62,  # never auto-cut: every flush below is one shard
        num_devices=trace.num_devices,
        program_name=trace.program_name,
        shard_format=SHARD_FORMAT_ODPF,
    )
    for do_lo, do_hi, tgt_lo, tgt_hi in _hostile_bounds(
        trace, rng, min_shard_events, max_shard_events
    ):
        if mixed_formats:
            writer.shard_format = (
                SHARD_FORMAT_NPZ if rng.random() < 0.4 else SHARD_FORMAT_ODPF
            )
        writer.write_batch(trace.slice_rows(do_lo, do_hi, tgt_lo, tgt_hi))
        writer.flush()
    store = writer.close(total_runtime=trace.total_runtime)
    if empty_shards and store.num_shards:
        store = _splice_empty_shards(store, rng)
    return store


def _splice_empty_shards(
    store: ShardedTraceStore, rng: np.random.Generator
) -> ShardedTraceStore:
    """Insert one or two zero-event shards into a store's manifest."""
    transport = store.transport
    manifest = json.loads(transport.read_blob(MANIFEST_NAME).decode("utf-8"))
    entries = manifest["shards"]
    empty = ColumnarTrace(num_devices=manifest["num_devices"])
    for n in range(int(rng.integers(1, 3))):
        position = int(rng.integers(len(entries) + 1))
        file = f"shard-empty-{n:02d}.{SHARD_FORMAT_ODPF}"
        transport.write_blob(file, empty.to_flat_payload())
        # A zero-event shard inherits its predecessor's end_time so the
        # manifest's shard end_times stay non-decreasing.
        end_time = entries[position - 1]["end_time"] if position else 0.0
        entries.insert(
            position,
            {
                "file": file,
                "num_data_op_events": 0,
                "num_target_events": 0,
                "end_time": end_time,
                "format": SHARD_FORMAT_ODPF,
            },
        )
    transport.write_blob(
        MANIFEST_NAME, (json.dumps(manifest, indent=2) + "\n").encode("utf-8")
    )
    return ShardedTraceStore.open(transport)
