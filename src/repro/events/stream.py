"""Stream utilities: slicing traces into batches and scanning streams.

An :class:`~repro.events.protocol.EventStream` is the chunked view of a
trace: a re-iterable sequence of columnar batches in chronological order.
This module provides the glue around that protocol —

* :func:`iter_trace_slices` / :class:`SlicedTraceStream` cut an in-memory
  columnar trace into bounded batches (the in-memory twin of the on-disk
  sharded store, used by the differential tests and ``shard_trace``),
* :func:`as_event_stream` adapts any trace representation to a stream,
* :func:`merge_stream` folds a stream back into one columnar trace,
* :func:`partition_ranges` / :class:`StreamPartition` /
  :func:`partition_stream` cut a random-access stream into contiguous,
  event-balanced batch subranges — the unit of work the shard-parallel
  execution engines (:mod:`repro.core.engine`) hand to their workers,
* :class:`StreamStats` / :class:`StreamView` fold aggregate statistics out
  of a stream without materialising events (the ``TraceLike`` facade the
  analysis report holds when it was produced from a stream), and
* :func:`materialize_data_op_events` is the shared finding-materialisation
  pass: given global data-op row positions collected by a streaming
  detector, it re-scans only the batches that contain them and bulk-builds
  the corresponding :class:`~repro.events.records.DataOpEvent` objects.

Global positions ("gpos") are the coordinate system of the streaming
detectors: the index a data-op row would have in the concatenation of every
batch's data-op columns (targets are numbered independently).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional

import numpy as np

from repro.events.columnar import (
    DATA_OP_KIND_CODES,
    TARGET_KIND_CODES,
    ColumnarTrace,
)
from repro.events.protocol import EventStream
from repro.events.records import DataOpEvent
from repro.events.trace import Trace

#: Default number of events per batch/shard: large enough that per-batch
#: NumPy passes dominate the per-batch fixed costs, small enough that a
#: batch is a few MB resident.
DEFAULT_SHARD_EVENTS = 1 << 17


def slice_bounds(trace: ColumnarTrace, shard_events: int) -> list[tuple[int, int, int, int]]:
    """Row ranges ``(do_lo, do_hi, tgt_lo, tgt_hi)`` cutting ``trace`` into
    batches of at most ``shard_events`` events (data ops + targets combined).

    Cuts follow the merged sequence-number order, so each batch is a
    contiguous chronological span of the trace; both column groups must be
    ascending in ``seq`` (collector output and validated traces are).
    """
    if shard_events < 1:
        raise ValueError("shard_events must be at least 1")
    n_do, n_tgt = trace.num_data_op_events, trace.num_target_events
    total = n_do + n_tgt
    if total == 0:
        return []
    all_seq = np.sort(np.concatenate([trace.do_seq, trace.tgt_seq]))
    bounds: list[tuple[int, int, int, int]] = []
    do_lo = tgt_lo = 0
    for cut in range(shard_events, total, shard_events):
        cut_seq = all_seq[cut - 1]
        do_hi = int(np.searchsorted(trace.do_seq, cut_seq, side="right"))
        tgt_hi = int(np.searchsorted(trace.tgt_seq, cut_seq, side="right"))
        bounds.append((do_lo, do_hi, tgt_lo, tgt_hi))
        do_lo, tgt_lo = do_hi, tgt_hi
    bounds.append((do_lo, n_do, tgt_lo, n_tgt))
    return bounds


def iter_trace_slices(
    trace: ColumnarTrace, shard_events: int = DEFAULT_SHARD_EVENTS
) -> Iterator[ColumnarTrace]:
    """Yield ``trace`` cut into batches of at most ``shard_events`` events."""
    for do_lo, do_hi, tgt_lo, tgt_hi in slice_bounds(trace, shard_events):
        yield trace.slice_rows(do_lo, do_hi, tgt_lo, tgt_hi)


@dataclass
class SlicedTraceStream:
    """An in-memory :class:`EventStream` over one columnar trace.

    Every :meth:`batches` call re-slices the same trace, so the stream is
    re-iterable as the protocol requires.
    """

    trace: ColumnarTrace
    shard_events: int = DEFAULT_SHARD_EVENTS

    def __post_init__(self) -> None:
        if self.shard_events < 1:
            raise ValueError("shard_events must be at least 1")
        self._bounds: Optional[list[tuple[int, int, int, int]]] = None
        self._bounds_sizes = (-1, -1)

    def _slice_bounds(self) -> list[tuple[int, int, int, int]]:
        # slice_bounds sorts every sequence number of the trace; cache the
        # result (keyed by the trace's sizes, so appends invalidate it)
        # instead of recomputing it per load_batch call.
        sizes = (self.trace.num_data_op_events, self.trace.num_target_events)
        if self._bounds is None or self._bounds_sizes != sizes:
            self._bounds = slice_bounds(self.trace, self.shard_events)
            self._bounds_sizes = sizes
        return self._bounds

    @property
    def num_devices(self) -> int:
        return self.trace.num_devices

    @property
    def program_name(self) -> Optional[str]:
        return self.trace.program_name

    @property
    def total_runtime(self) -> Optional[float]:
        return self.trace.total_runtime

    def batches(self) -> Iterator[ColumnarTrace]:
        for bounds in self._slice_bounds():
            yield self.trace.slice_rows(*bounds)

    def batch_row_counts(self) -> list[tuple[int, int]]:
        return [
            (do_hi - do_lo, tgt_hi - tgt_lo)
            for do_lo, do_hi, tgt_lo, tgt_hi in self._slice_bounds()
        ]

    def load_batch(self, index: int) -> ColumnarTrace:
        return self.trace.slice_rows(*self._slice_bounds()[index])


def as_event_stream(
    trace, shard_events: Optional[int] = None
) -> EventStream:
    """Adapt any trace representation (or stream) to an :class:`EventStream`.

    An object :class:`Trace` is converted to columnar form first; with
    ``shard_events`` the result is sliced into bounded batches, without it
    an existing stream passes through unchanged (a plain columnar trace
    streams as a single batch).
    """
    if isinstance(trace, Trace):
        trace = ColumnarTrace.from_trace(trace)
    if shard_events is not None:
        if not isinstance(trace, ColumnarTrace):
            raise TypeError("shard_events requires an in-memory trace to slice")
        return SlicedTraceStream(trace, shard_events)
    if isinstance(trace, EventStream):
        return trace
    raise TypeError(f"cannot stream {type(trace).__name__}")


def partition_ranges(event_counts: list[int], n: int) -> list[tuple[int, int]]:
    """Cut batch indices into at most ``n`` contiguous, balanced ranges.

    ``event_counts`` holds the number of events per batch; the cut points
    aim at equal cumulative event shares, so a partition's work tracks its
    event count even when shard sizes are uneven.  Every returned range is
    non-empty and the ranges cover ``[0, len(event_counts))`` in order;
    fewer than ``n`` ranges come back when there are not enough batches.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    num_batches = len(event_counts)
    if num_batches == 0:
        return []
    if n == 1 or num_batches == 1:
        return [(0, num_batches)]
    cum = np.cumsum(np.asarray(event_counts, dtype=np.int64))
    total = int(cum[-1])
    parts = min(n, num_batches)
    cuts = [0]
    for k in range(1, parts):
        j = int(np.searchsorted(cum, total * k / parts))
        j = max(j + 1, cuts[-1] + 1)
        if j >= num_batches:
            break
        cuts.append(j)
    cuts.append(num_batches)
    return list(zip(cuts[:-1], cuts[1:]))


@dataclass
class StreamPartition:
    """A contiguous batch subrange of a random-access stream.

    Behaves as an :class:`EventStream` over batches ``[lo, hi)`` of the
    underlying stream (which must implement ``batch_row_counts`` /
    ``load_batch``).  ``data_op_offset`` is the number of data-op rows in
    the batches before ``lo`` — the global position a partition worker must
    start folding from so its carry speaks the same gpos coordinates as
    every other partition's.
    """

    stream: EventStream
    lo: int
    hi: int
    data_op_offset: int
    num_events: int

    @property
    def num_devices(self) -> int:
        return self.stream.num_devices

    @property
    def program_name(self) -> Optional[str]:
        return self.stream.program_name

    @property
    def total_runtime(self) -> Optional[float]:
        return self.stream.total_runtime

    @property
    def num_batches(self) -> int:
        return self.hi - self.lo

    def batches(self) -> Iterator[ColumnarTrace]:
        for index in range(self.lo, self.hi):
            yield self.stream.load_batch(index)


def partition_stream(stream: EventStream, n: int):
    """Cut a stream into at most ``n`` balanced contiguous partitions.

    Returns a list of :class:`StreamPartition`.  A stream that cannot be
    partitioned — no random access (``batch_row_counts`` / ``load_batch``),
    or fewer than two batches — comes back as the single-element list
    ``[stream]``, which callers treat as "run serially".
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    counts_fn = getattr(stream, "batch_row_counts", None)
    loader = getattr(stream, "load_batch", None)
    if n == 1 or counts_fn is None or loader is None:
        return [stream]
    counts = counts_fn()
    ranges = partition_ranges([do + tgt for do, tgt in counts], n)
    if len(ranges) <= 1:
        return [stream]
    do_prefix = [0]
    event_prefix = [0]
    for do, tgt in counts:
        do_prefix.append(do_prefix[-1] + do)
        event_prefix.append(event_prefix[-1] + do + tgt)
    return [
        StreamPartition(
            stream=stream,
            lo=lo,
            hi=hi,
            data_op_offset=do_prefix[lo],
            num_events=event_prefix[hi] - event_prefix[lo],
        )
        for lo, hi in ranges
    ]


def prefetch_batches(stream, depth: int = 2) -> Iterator[ColumnarTrace]:
    """Iterate a stream's batches with a bounded background read-ahead.

    While the consumer folds batch *k*, the loader thread is already
    fetching batch *k+1* — shard reads (zip member reads, zlib for
    compressed stores, an object store's latency) release the GIL or
    block on I/O, so load and fold genuinely overlap.  For mmap-native
    ``.odpf`` shards the "load" is an O(1) map, and the read-ahead's job
    shifts to warming the page cache ahead of the fold.  ``depth`` bounds
    the number of in-flight batches, keeping memory O(depth × shard).

    An abort on the consumer side (an exception mid-fold, a closed
    generator) never leaves the loader blocked: the bounded put gives up
    as soon as the stop flag is set, and the drain loop joins the thread.
    Loader-side exceptions propagate into the consumer.
    """
    import queue
    import threading

    if depth < 1:
        raise ValueError("prefetch depth must be at least 1")
    q: "queue.Queue" = queue.Queue(maxsize=depth)
    stop = threading.Event()
    _DONE = object()

    def _put(item) -> None:
        # Bounded put that gives up when the consumer has gone away, so an
        # aborted scan never leaves the loader blocked (pinning a decoded
        # shard) for the life of the process.
        while not stop.is_set():
            try:
                q.put(item, timeout=0.1)
                return
            except queue.Full:
                continue

    def _loader() -> None:
        try:
            for batch in stream.batches():
                _put(batch)
                if stop.is_set():
                    return
            _put(_DONE)
        except BaseException as exc:  # propagate into the consumer
            _put(exc)

    thread = threading.Thread(target=_loader, name="shard-prefetch", daemon=True)
    thread.start()
    try:
        while True:
            item = q.get()
            if item is _DONE:
                break
            if isinstance(item, BaseException):
                raise item
            yield item
    finally:
        stop.set()
        while thread.is_alive():
            try:
                q.get_nowait()
            except queue.Empty:
                pass
            thread.join(timeout=0.05)


def merge_stream(stream: EventStream) -> ColumnarTrace:
    """Concatenate every batch of a stream into one columnar trace.

    The inverse of sharding: ``merge_stream(as_event_stream(t, k))`` is
    lossless for any trace ``t`` and shard size ``k`` (property-tested in
    ``tests/events/test_store.py``).
    """
    out = ColumnarTrace(
        num_devices=stream.num_devices,
        program_name=stream.program_name,
        total_runtime=stream.total_runtime,
    )
    for batch in stream.batches():
        out.extend_from(batch)
    return out


# --------------------------------------------------------------------- #
# Aggregate statistics folds
# --------------------------------------------------------------------- #
@dataclass
class StreamStats:
    """Aggregate trace statistics folded batch by batch (O(1) carry)."""

    num_data_op_events: int = 0
    num_target_events: int = 0
    num_kernel_events: int = 0
    num_transfers: int = 0
    num_allocations: int = 0
    bytes_transferred: int = 0
    transfer_time: float = 0.0
    alloc_time: float = 0.0
    kernel_time: float = 0.0
    end_time: float = 0.0
    data_op_kind_counts: Dict[str, int] = field(
        default_factory=lambda: {kind.value: 0 for kind in DATA_OP_KIND_CODES}
    )
    target_kind_counts: Dict[str, int] = field(
        default_factory=lambda: {kind.value: 0 for kind in TARGET_KIND_CODES}
    )

    def fold(self, batch: ColumnarTrace) -> None:
        self.num_data_op_events += batch.num_data_op_events
        self.num_target_events += batch.num_target_events
        self.num_kernel_events += int(batch.kernel_mask().sum())
        self.num_transfers += int(batch.transfer_mask().sum())
        self.bytes_transferred += batch.total_bytes_transferred()
        self.transfer_time += batch.total_transfer_time()
        self.alloc_time += batch.total_alloc_time()
        self.kernel_time += batch.total_kernel_time()
        self.end_time = max(self.end_time, batch.end_time)
        do_counts = np.bincount(batch.do_kind, minlength=len(DATA_OP_KIND_CODES))
        for kind, count in zip(DATA_OP_KIND_CODES, do_counts):
            self.data_op_kind_counts[kind.value] += int(count)
        tgt_counts = np.bincount(batch.tgt_kind, minlength=len(TARGET_KIND_CODES))
        for kind, count in zip(TARGET_KIND_CODES, tgt_counts):
            self.target_kind_counts[kind.value] += int(count)
        self.num_allocations = self.data_op_kind_counts["alloc"]

    def merge(self, other: "StreamStats") -> None:
        """Fold another (disjoint) batch range's statistics into this one.

        Counts and totals add, ``end_time`` takes the maximum — the result
        equals a single fold over both ranges.  Used by the shard writer
        (per-shard stats merged into the manifest aggregate) and by
        retention-aware compaction, which re-derives the folded statistics
        of whichever staged shards survive the byte/count budget.
        """
        self.num_data_op_events += other.num_data_op_events
        self.num_target_events += other.num_target_events
        self.num_kernel_events += other.num_kernel_events
        self.num_transfers += other.num_transfers
        self.bytes_transferred += other.bytes_transferred
        self.transfer_time += other.transfer_time
        self.alloc_time += other.alloc_time
        self.kernel_time += other.kernel_time
        self.end_time = max(self.end_time, other.end_time)
        for kind, count in other.data_op_kind_counts.items():
            self.data_op_kind_counts[kind] = (
                self.data_op_kind_counts.get(kind, 0) + count
            )
        for kind, count in other.target_kind_counts.items():
            self.target_kind_counts[kind] = (
                self.target_kind_counts.get(kind, 0) + count
            )
        self.num_allocations = self.data_op_kind_counts["alloc"]

    @classmethod
    def of_stream(cls, stream: EventStream) -> "StreamStats":
        stats = cls()
        for batch in stream.batches():
            stats.fold(batch)
        return stats


class StreamView:
    """A :class:`~repro.events.protocol.TraceLike` facade over a stream.

    Aggregate statistics are folded out of the stream on first use (one
    scan, no event materialisation); the event-list properties exist for
    protocol completeness but merge the whole stream — only reach for them
    when the trace is known to fit in memory.
    """

    def __init__(self, stream: EventStream) -> None:
        self._stream = stream
        self._stats: Optional[StreamStats] = None

    @property
    def stream(self) -> EventStream:
        return self._stream

    @property
    def num_devices(self) -> int:
        return self._stream.num_devices

    @property
    def program_name(self) -> Optional[str]:
        return self._stream.program_name

    @property
    def total_runtime(self) -> Optional[float]:
        return self._stream.total_runtime

    @property
    def host_device_num(self) -> int:
        return self.num_devices

    def stats(self) -> StreamStats:
        if self._stats is None:
            self._stats = StreamStats.of_stream(self._stream)
        return self._stats

    @property
    def end_time(self) -> float:
        return self.stats().end_time

    @property
    def runtime(self) -> float:
        if self.total_runtime is not None:
            return self.total_runtime
        return self.end_time

    @property
    def num_data_op_events(self) -> int:
        return self.stats().num_data_op_events

    @property
    def num_target_events(self) -> int:
        return self.stats().num_target_events

    def __len__(self) -> int:
        stats = self.stats()
        return stats.num_data_op_events + stats.num_target_events

    def space_overhead_bytes(self) -> int:
        from repro.events.records import DATA_OP_EVENT_BYTES, TARGET_EVENT_BYTES

        stats = self.stats()
        return (
            DATA_OP_EVENT_BYTES * stats.num_data_op_events
            + TARGET_EVENT_BYTES * stats.num_target_events
        )

    @property
    def data_op_events(self):
        return merge_stream(self._stream).data_op_events

    @property
    def target_events(self):
        return merge_stream(self._stream).target_events

    def summary(self) -> dict:
        stats = self.stats()
        return {
            "program_name": self.program_name,
            "num_devices": self.num_devices,
            "num_target_events": stats.num_target_events,
            "num_kernel_events": stats.num_kernel_events,
            "num_data_op_events": stats.num_data_op_events,
            "num_transfers": stats.num_transfers,
            "num_allocations": stats.num_allocations,
            "bytes_transferred": stats.bytes_transferred,
            "transfer_time": stats.transfer_time,
            "alloc_time": stats.alloc_time,
            "kernel_time": stats.kernel_time,
            "runtime": self.runtime,
            "space_overhead_bytes": self.space_overhead_bytes(),
        }


def trace_like_view(stream_or_trace):
    """The cheapest ``TraceLike`` view of a stream (or trace).

    Objects that already expose the full aggregate surface — both trace
    representations and :class:`~repro.events.store.ShardedTraceStore`,
    whose statistics live in its manifest — pass through unchanged; other
    streams are wrapped in a :class:`StreamView`.
    """
    if hasattr(stream_or_trace, "summary") and hasattr(stream_or_trace, "runtime"):
        return stream_or_trace
    return StreamView(stream_or_trace)


# --------------------------------------------------------------------- #
# Finding materialisation
# --------------------------------------------------------------------- #
def materialize_data_op_events(
    stream: EventStream, gpos: np.ndarray
) -> Dict[int, DataOpEvent]:
    """Materialise the data-op events at the given global row positions.

    Returns ``{gpos: event}``.  Batches containing no requested row are
    skipped entirely when the stream can enumerate its batch sizes
    (``batch_row_counts`` / ``load_batch``, implemented by the sharded
    store and the in-memory slicer) — for an on-disk store that means the
    untouched shards are never read.
    """
    needed = np.unique(np.asarray(gpos, dtype=np.int64))
    out: Dict[int, DataOpEvent] = {}
    if needed.size == 0:
        return out

    counts = getattr(stream, "batch_row_counts", None)
    loader = getattr(stream, "load_batch", None)
    if counts is not None and loader is not None:
        offset = 0
        for index, (n_do, _n_tgt) in enumerate(counts()):
            lo = int(np.searchsorted(needed, offset))
            hi = int(np.searchsorted(needed, offset + n_do))
            if hi > lo:
                batch = loader(index)
                local = needed[lo:hi] - offset
                for pos, event in zip(needed[lo:hi], batch.data_op_events_at(local)):
                    out[int(pos)] = event
            offset += n_do
    else:
        offset = 0
        for batch in stream.batches():
            n_do = batch.num_data_op_events
            lo = int(np.searchsorted(needed, offset))
            hi = int(np.searchsorted(needed, offset + n_do))
            if hi > lo:
                local = needed[lo:hi] - offset
                for pos, event in zip(needed[lo:hi], batch.data_op_events_at(local)):
                    out[int(pos)] = event
            offset += n_do

    if len(out) != needed.size:
        raise IndexError("stream ended before every requested row was found")
    return out
