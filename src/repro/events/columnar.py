"""Columnar (structure-of-arrays) trace storage.

This is the throughput backbone of the reproduction: instead of one Python
dataclass per event, a :class:`ColumnarTrace` stores target and data-op
events as parallel NumPy arrays (sequence numbers, kind codes, device
numbers, addresses, byte counts, begin/end timestamps, content hashes).
The layout mirrors what the native tool's fixed-size records give it for
free — the 72 B data-op / 24 B target records of Section 7.4 are exactly a
row of these columns — and it is the same idiom the vectorised hash in
:mod:`repro.hashing.vector` uses: touch memory with wide NumPy ufuncs, not
the interpreter.

Three contracts matter:

* **O(1) append.**  The collector appends one event per OMPT callback;
  columns grow by amortised doubling, so appends never reallocate per event.
* **Zero-copy column views.**  ``do_start_time`` and friends return NumPy
  slices of the backing buffers (no copies); detectors run masked selects,
  ``np.unique`` and ``np.searchsorted`` over them directly.
* **Lossless conversion.**  ``from_trace`` / ``to_trace`` round-trip every
  field of the object representation (including optional fields and debug
  strings), so either representation can stand in for the other.

On disk the columnar form has a versioned binary format (an ``.npz``
archive, one entry per column plus a JSON metadata blob) next to the
existing JSON format; :func:`load_trace` sniffs the two apart.
"""

from __future__ import annotations

import io
import json
import struct
import zipfile
from pathlib import Path
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.events.records import (
    DATA_OP_EVENT_BYTES,
    TARGET_EVENT_BYTES,
    AllocationPair,
    DataOpEvent,
    DataOpKind,
    TargetEvent,
    TargetKind,
    get_alloc_delete_pairs,
)
from repro.events.trace import Trace

#: Version tag of the binary columnar format.
COLUMNAR_FORMAT_VERSION = 1

#: Version tag of the flat shared-memory payload format (the zero-copy
#: sibling of the ``.npz`` archive: a JSON header plus raw 64-byte-aligned
#: column buffers, laid out so :meth:`ColumnarTrace.from_shared` can build
#: NumPy views straight into a ``multiprocessing.shared_memory`` segment
#: or an ``mmap``-ed file without decoding anything).
FLAT_FORMAT_VERSION = 1
FLAT_MAGIC = b"ODPF"

#: magic, version, reserved, header length
_FLAT_PREFIX = struct.Struct("<4sHHQ")

#: Raw column buffers are 64-byte aligned inside the flat payload so the
#: zero-copy views start on cache-line (and any SIMD) boundaries.
_FLAT_ALIGN = 64


def _align_flat(offset: int) -> int:
    return (offset + _FLAT_ALIGN - 1) & ~(_FLAT_ALIGN - 1)

#: Stable kind <-> small-integer code tables.  The codes are part of the
#: binary format, so the order here must never change; append only.
DATA_OP_KIND_CODES: tuple[DataOpKind, ...] = (
    DataOpKind.ALLOC,
    DataOpKind.TRANSFER_TO_DEVICE,
    DataOpKind.TRANSFER_FROM_DEVICE,
    DataOpKind.DELETE,
    DataOpKind.ASSOCIATE,
    DataOpKind.DISASSOCIATE,
)
TARGET_KIND_CODES: tuple[TargetKind, ...] = (
    TargetKind.TARGET,
    TargetKind.ENTER_DATA,
    TargetKind.EXIT_DATA,
    TargetKind.UPDATE,
)

_DATA_OP_CODE_OF = {kind: code for code, kind in enumerate(DATA_OP_KIND_CODES)}
_TARGET_CODE_OF = {kind: code for code, kind in enumerate(TARGET_KIND_CODES)}

CODE_ALLOC = _DATA_OP_CODE_OF[DataOpKind.ALLOC]
CODE_TO_DEVICE = _DATA_OP_CODE_OF[DataOpKind.TRANSFER_TO_DEVICE]
CODE_FROM_DEVICE = _DATA_OP_CODE_OF[DataOpKind.TRANSFER_FROM_DEVICE]
CODE_DELETE = _DATA_OP_CODE_OF[DataOpKind.DELETE]
CODE_TARGET = _TARGET_CODE_OF[TargetKind.TARGET]

_INITIAL_CAPACITY = 64

# (column name, dtype) of the data-op column group, in binary-format order.
_DATA_OP_COLUMNS: tuple[tuple[str, type], ...] = (
    ("seq", np.int64),
    ("kind", np.int8),
    ("src_device_num", np.int32),
    ("dest_device_num", np.int32),
    ("src_addr", np.uint64),
    ("dest_addr", np.uint64),
    ("nbytes", np.int64),
    ("start_time", np.float64),
    ("end_time", np.float64),
    ("content_hash", np.uint64),
    ("has_content_hash", np.bool_),
    ("codeptr", np.uint64),
    ("has_codeptr", np.bool_),
    ("target_id", np.int64),
    ("has_target_id", np.bool_),
)

# (column name, dtype) of the target column group.
_TARGET_COLUMNS: tuple[tuple[str, type], ...] = (
    ("seq", np.int64),
    ("kind", np.int8),
    ("device_num", np.int32),
    ("start_time", np.float64),
    ("end_time", np.float64),
    ("codeptr", np.uint64),
    ("has_codeptr", np.bool_),
    ("target_id", np.int64),
    ("has_target_id", np.bool_),
)


class _ColumnGroup:
    """A bundle of parallel arrays with amortised-doubling growth."""

    def __init__(self, columns: Sequence[tuple[str, type]]) -> None:
        self._spec = tuple(columns)
        self.size = 0
        self._capacity = 0
        self._arrays: dict[str, np.ndarray] = {
            name: np.empty(0, dtype=dtype) for name, dtype in self._spec
        }

    def _grow_to(self, capacity: int) -> None:
        new_capacity = max(self._capacity * 2, _INITIAL_CAPACITY)
        while new_capacity < capacity:
            new_capacity *= 2
        for name, dtype in self._spec:
            fresh = np.empty(new_capacity, dtype=dtype)
            fresh[: self.size] = self._arrays[name][: self.size]
            self._arrays[name] = fresh
        self._capacity = new_capacity

    def append_row(self, **values) -> None:
        if self.size == self._capacity:
            self._grow_to(self.size + 1)
        i = self.size
        arrays = self._arrays
        for name, value in values.items():
            arrays[name][i] = value
        self.size = i + 1

    def extend_columns(self, length: int, **columns) -> None:
        if length == 0:
            return
        if self.size + length > self._capacity:
            self._grow_to(self.size + length)
        lo, hi = self.size, self.size + length
        for name, _ in self._spec:
            self._arrays[name][lo:hi] = columns[name]
        self.size = hi

    def adopt_columns(self, length: int, **columns) -> None:
        """Take ownership of ready-made arrays without copying.

        Only valid on an empty group; the arrays must be freshly allocated
        (the loader's decode buffers) — the group will hand out views of
        them and grow by reallocating, never mutating the originals'
        tails.  This halves the transient footprint of loading a shard.
        """
        if self.size:
            raise ValueError("adopt_columns requires an empty column group")
        if length == 0:
            return
        for name, dtype in self._spec:
            arr = np.ascontiguousarray(columns[name], dtype=dtype)
            if arr.shape != (length,):
                raise ValueError(f"column {name!r} has wrong length")
            self._arrays[name] = arr
        self.size = length
        self._capacity = length

    def view(self, name: str) -> np.ndarray:
        """Zero-copy view of the live prefix of one column."""
        return self._arrays[name][: self.size]

    def compact(self) -> dict[str, np.ndarray]:
        """Copies of the live prefixes (used by the binary writer)."""
        return {name: self.view(name).copy() for name, _ in self._spec}

    @property
    def capacity(self) -> int:
        return self._capacity


class ColumnarTrace:
    """Structure-of-arrays trace: the columnar twin of :class:`Trace`.

    The class intentionally mirrors the read API of :class:`Trace`
    (``data_op_events``, ``transfers()``, ``summary()``, ``save()`` …) so
    that existing consumers keep working, while the detectors' fast paths
    reach the raw columns through the ``do_*`` / ``tgt_*`` views.  Object
    events are materialised lazily and cached; any append invalidates the
    cache.
    """

    def __init__(
        self,
        num_devices: int = 1,
        program_name: Optional[str] = None,
        total_runtime: Optional[float] = None,
    ) -> None:
        self.num_devices = num_devices
        self.program_name = program_name
        self.total_runtime = total_runtime
        self._data_ops = _ColumnGroup(_DATA_OP_COLUMNS)
        self._targets = _ColumnGroup(_TARGET_COLUMNS)
        #: optional per-event debug strings (kept as Python lists: they are
        #: debug aids, never touched by the detectors)
        self._do_variables: list[Optional[str]] = []
        self._tgt_names: list[Optional[str]] = []
        self._do_cache: Optional[list[DataOpEvent]] = None
        self._tgt_cache: Optional[list[TargetEvent]] = None

    # ------------------------------------------------------------------ #
    # Column views (zero copy)
    # ------------------------------------------------------------------ #
    @property
    def num_data_op_events(self) -> int:
        return self._data_ops.size

    @property
    def num_target_events(self) -> int:
        return self._targets.size

    def do_column(self, name: str) -> np.ndarray:
        return self._data_ops.view(name)

    def tgt_column(self, name: str) -> np.ndarray:
        return self._targets.view(name)

    @property
    def do_seq(self) -> np.ndarray:
        return self._data_ops.view("seq")

    @property
    def do_kind(self) -> np.ndarray:
        return self._data_ops.view("kind")

    @property
    def do_src_device_num(self) -> np.ndarray:
        return self._data_ops.view("src_device_num")

    @property
    def do_dest_device_num(self) -> np.ndarray:
        return self._data_ops.view("dest_device_num")

    @property
    def do_src_addr(self) -> np.ndarray:
        return self._data_ops.view("src_addr")

    @property
    def do_dest_addr(self) -> np.ndarray:
        return self._data_ops.view("dest_addr")

    @property
    def do_nbytes(self) -> np.ndarray:
        return self._data_ops.view("nbytes")

    @property
    def do_start_time(self) -> np.ndarray:
        return self._data_ops.view("start_time")

    @property
    def do_end_time(self) -> np.ndarray:
        return self._data_ops.view("end_time")

    @property
    def do_content_hash(self) -> np.ndarray:
        return self._data_ops.view("content_hash")

    @property
    def do_has_content_hash(self) -> np.ndarray:
        return self._data_ops.view("has_content_hash")

    @property
    def tgt_seq(self) -> np.ndarray:
        return self._targets.view("seq")

    @property
    def tgt_kind(self) -> np.ndarray:
        return self._targets.view("kind")

    @property
    def tgt_device_num(self) -> np.ndarray:
        return self._targets.view("device_num")

    @property
    def tgt_start_time(self) -> np.ndarray:
        return self._targets.view("start_time")

    @property
    def tgt_end_time(self) -> np.ndarray:
        return self._targets.view("end_time")

    def transfer_mask(self) -> np.ndarray:
        kind = self.do_kind
        return (kind == CODE_TO_DEVICE) | (kind == CODE_FROM_DEVICE)

    def kernel_mask(self) -> np.ndarray:
        return self.tgt_kind == CODE_TARGET

    def batches(self) -> Iterator["ColumnarTrace"]:
        """The trivial :class:`~repro.events.protocol.EventStream`: one batch.

        Makes every columnar trace directly consumable by the streaming
        detectors and :func:`repro.core.analysis.analyze_stream`.
        """
        return iter((self,))

    def slice_rows(
        self, do_lo: int, do_hi: int, tgt_lo: int, tgt_hi: int
    ) -> "ColumnarTrace":
        """Copy a contiguous row range of both column groups into a new trace.

        The slice carries the parent's ``num_devices`` / ``program_name``
        but no ``total_runtime`` (a shard's runtime is meaningless on its
        own).  Used by the shard writer and the in-memory stream slicer.
        """
        out = ColumnarTrace(num_devices=self.num_devices, program_name=self.program_name)
        out._data_ops.extend_columns(
            do_hi - do_lo,
            **{name: self._data_ops.view(name)[do_lo:do_hi] for name, _ in _DATA_OP_COLUMNS},
        )
        out._targets.extend_columns(
            tgt_hi - tgt_lo,
            **{name: self._targets.view(name)[tgt_lo:tgt_hi] for name, _ in _TARGET_COLUMNS},
        )
        out._do_variables = self._do_variables[do_lo:do_hi]
        out._tgt_names = self._tgt_names[tgt_lo:tgt_hi]
        return out

    def select_rows(self, do_rows, tgt_rows) -> "ColumnarTrace":
        """Copy an arbitrary (ascending) row subset into a new trace.

        The non-contiguous sibling of :meth:`slice_rows`: row indices are
        fancy-indexed out of both column groups.  Used by retention-aware
        compaction, which drops individual events (by age or kind) while
        rewriting shards.
        """
        do_rows = np.asarray(do_rows, dtype=np.int64)
        tgt_rows = np.asarray(tgt_rows, dtype=np.int64)
        out = ColumnarTrace(num_devices=self.num_devices, program_name=self.program_name)
        out._data_ops.extend_columns(
            do_rows.size,
            **{name: self._data_ops.view(name)[do_rows] for name, _ in _DATA_OP_COLUMNS},
        )
        out._targets.extend_columns(
            tgt_rows.size,
            **{name: self._targets.view(name)[tgt_rows] for name, _ in _TARGET_COLUMNS},
        )
        out._do_variables = [self._do_variables[i] for i in do_rows.tolist()]
        out._tgt_names = [self._tgt_names[i] for i in tgt_rows.tolist()]
        return out

    # ------------------------------------------------------------------ #
    # Appends (the collector's hot path)
    # ------------------------------------------------------------------ #
    def append_data_op(
        self,
        *,
        seq: int,
        kind: DataOpKind,
        src_device_num: int,
        dest_device_num: int,
        src_addr: int,
        dest_addr: int,
        nbytes: int,
        start_time: float,
        end_time: float,
        content_hash: Optional[int] = None,
        codeptr: Optional[int] = None,
        target_id: Optional[int] = None,
        variable: Optional[str] = None,
    ) -> None:
        """Append one data-op row (same invariants as :class:`DataOpEvent`)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if end_time < start_time:
            raise ValueError("event ends before it starts")
        if kind.is_transfer and content_hash is None:
            raise ValueError("transfer events must carry a content hash")
        self._data_ops.append_row(
            seq=seq,
            kind=_DATA_OP_CODE_OF[kind],
            src_device_num=src_device_num,
            dest_device_num=dest_device_num,
            src_addr=src_addr,
            dest_addr=dest_addr,
            nbytes=nbytes,
            start_time=start_time,
            end_time=end_time,
            content_hash=0 if content_hash is None else content_hash,
            has_content_hash=content_hash is not None,
            codeptr=0 if codeptr is None else codeptr,
            has_codeptr=codeptr is not None,
            target_id=0 if target_id is None else target_id,
            has_target_id=target_id is not None,
        )
        self._do_variables.append(variable)
        self._do_cache = None

    def append_target(
        self,
        *,
        seq: int,
        kind: TargetKind,
        device_num: int,
        start_time: float,
        end_time: float,
        codeptr: Optional[int] = None,
        target_id: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        """Append one target row (same invariants as :class:`TargetEvent`)."""
        if end_time < start_time:
            raise ValueError("event ends before it starts")
        self._targets.append_row(
            seq=seq,
            kind=_TARGET_CODE_OF[kind],
            device_num=device_num,
            start_time=start_time,
            end_time=end_time,
            codeptr=0 if codeptr is None else codeptr,
            has_codeptr=codeptr is not None,
            target_id=0 if target_id is None else target_id,
            has_target_id=target_id is not None,
        )
        self._tgt_names.append(name)
        self._tgt_cache = None

    def append_data_op_event(self, event: DataOpEvent) -> None:
        """Trace-compatible append of an object event."""
        self.append_data_op(
            seq=event.seq,
            kind=event.kind,
            src_device_num=event.src_device_num,
            dest_device_num=event.dest_device_num,
            src_addr=event.src_addr,
            dest_addr=event.dest_addr,
            nbytes=event.nbytes,
            start_time=event.start_time,
            end_time=event.end_time,
            content_hash=event.content_hash,
            codeptr=event.codeptr,
            target_id=event.target_id,
            variable=event.variable,
        )

    def append_target_event(self, event: TargetEvent) -> None:
        """Trace-compatible append of an object event."""
        self.append_target(
            seq=event.seq,
            kind=event.kind,
            device_num=event.device_num,
            start_time=event.start_time,
            end_time=event.end_time,
            codeptr=event.codeptr,
            target_id=event.target_id,
            name=event.name,
        )

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def data_op_event_at(self, index: int) -> DataOpEvent:
        """Materialise one data-op event from its row index."""
        if not 0 <= index < self._data_ops.size:
            raise IndexError(f"data-op row {index} out of range")
        a = self._data_ops._arrays
        return DataOpEvent(
            seq=int(a["seq"][index]),
            kind=DATA_OP_KIND_CODES[a["kind"][index]],
            src_device_num=int(a["src_device_num"][index]),
            dest_device_num=int(a["dest_device_num"][index]),
            src_addr=int(a["src_addr"][index]),
            dest_addr=int(a["dest_addr"][index]),
            nbytes=int(a["nbytes"][index]),
            start_time=float(a["start_time"][index]),
            end_time=float(a["end_time"][index]),
            content_hash=(
                int(a["content_hash"][index]) if a["has_content_hash"][index] else None
            ),
            codeptr=int(a["codeptr"][index]) if a["has_codeptr"][index] else None,
            target_id=int(a["target_id"][index]) if a["has_target_id"][index] else None,
            variable=self._do_variables[index],
        )

    def target_event_at(self, index: int) -> TargetEvent:
        """Materialise one target event from its row index."""
        if not 0 <= index < self._targets.size:
            raise IndexError(f"target row {index} out of range")
        a = self._targets._arrays
        return TargetEvent(
            seq=int(a["seq"][index]),
            kind=TARGET_KIND_CODES[a["kind"][index]],
            device_num=int(a["device_num"][index]),
            start_time=float(a["start_time"][index]),
            end_time=float(a["end_time"][index]),
            codeptr=int(a["codeptr"][index]) if a["has_codeptr"][index] else None,
            target_id=int(a["target_id"][index]) if a["has_target_id"][index] else None,
            name=self._tgt_names[index],
        )

    def data_op_events_at(self, rows) -> list[DataOpEvent]:
        """Bulk-materialise data-op events for an array of row indices.

        Columns are gathered with one fancy-indexing pass each and handed
        to the dataclass constructor as Python scalars, which is several
        times cheaper than per-event column reads.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self._data_ops.size):
            raise IndexError("data-op row index out of range")
        c = {name: self._data_ops.view(name).take(rows).tolist()
             for name, _ in _DATA_OP_COLUMNS}
        variables = self._do_variables
        return [
            DataOpEvent(
                seq=c["seq"][k],
                kind=DATA_OP_KIND_CODES[c["kind"][k]],
                src_device_num=c["src_device_num"][k],
                dest_device_num=c["dest_device_num"][k],
                src_addr=c["src_addr"][k],
                dest_addr=c["dest_addr"][k],
                nbytes=c["nbytes"][k],
                start_time=c["start_time"][k],
                end_time=c["end_time"][k],
                content_hash=c["content_hash"][k] if c["has_content_hash"][k] else None,
                codeptr=c["codeptr"][k] if c["has_codeptr"][k] else None,
                target_id=c["target_id"][k] if c["has_target_id"][k] else None,
                variable=variables[row],
            )
            for k, row in enumerate(rows.tolist())
        ]

    def target_events_at(self, rows) -> list[TargetEvent]:
        """Bulk-materialise target events for an array of row indices."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self._targets.size):
            raise IndexError("target row index out of range")
        c = {name: self._targets.view(name).take(rows).tolist()
             for name, _ in _TARGET_COLUMNS}
        names = self._tgt_names
        return [
            TargetEvent(
                seq=c["seq"][k],
                kind=TARGET_KIND_CODES[c["kind"][k]],
                device_num=c["device_num"][k],
                start_time=c["start_time"][k],
                end_time=c["end_time"][k],
                codeptr=c["codeptr"][k] if c["has_codeptr"][k] else None,
                target_id=c["target_id"][k] if c["has_target_id"][k] else None,
                name=names[row],
            )
            for k, row in enumerate(rows.tolist())
        ]

    @property
    def data_op_events(self) -> list[DataOpEvent]:
        """Object view of the data-op columns (materialised lazily, cached)."""
        if self._do_cache is None:
            self._do_cache = self.data_op_events_at(np.arange(self._data_ops.size))
        return self._do_cache

    @property
    def target_events(self) -> list[TargetEvent]:
        """Object view of the target columns (materialised lazily, cached)."""
        if self._tgt_cache is None:
            self._tgt_cache = self.target_events_at(np.arange(self._targets.size))
        return self._tgt_cache

    # ------------------------------------------------------------------ #
    # Trace-compatible read API
    # ------------------------------------------------------------------ #
    @property
    def host_device_num(self) -> int:
        return self.num_devices

    @property
    def end_time(self) -> float:
        """Timestamp of the latest event end (0.0 for an empty trace)."""
        last = 0.0
        if self._targets.size:
            last = max(last, float(self.tgt_end_time.max()))
        if self._data_ops.size:
            last = max(last, float(self.do_end_time.max()))
        return last

    @property
    def runtime(self) -> float:
        if self.total_runtime is not None:
            return self.total_runtime
        return self.end_time

    def __len__(self) -> int:
        return self._targets.size + self._data_ops.size

    def is_empty(self) -> bool:
        return len(self) == 0

    def transfers(self) -> list[DataOpEvent]:
        return self.data_op_events_at(np.flatnonzero(self.transfer_mask()))

    def transfers_to_devices(self) -> list[DataOpEvent]:
        return self.data_op_events_at(np.flatnonzero(self.do_kind == CODE_TO_DEVICE))

    def transfers_from_devices(self) -> list[DataOpEvent]:
        return self.data_op_events_at(np.flatnonzero(self.do_kind == CODE_FROM_DEVICE))

    def allocations(self) -> list[DataOpEvent]:
        return self.data_op_events_at(np.flatnonzero(self.do_kind == CODE_ALLOC))

    def deletions(self) -> list[DataOpEvent]:
        return self.data_op_events_at(np.flatnonzero(self.do_kind == CODE_DELETE))

    def alloc_delete_pairs(self) -> list[AllocationPair]:
        return get_alloc_delete_pairs(self.data_op_events)

    def kernel_events(self) -> list[TargetEvent]:
        return self.target_events_at(np.flatnonzero(self.kernel_mask()))

    def events_for_device(self, device_num: int) -> "ColumnarTrace":
        sub = ColumnarTrace(
            num_devices=self.num_devices,
            program_name=self.program_name,
            total_runtime=self.total_runtime,
        )
        for i in np.flatnonzero(self.tgt_device_num == device_num):
            sub.append_target_event(self.target_event_at(i))
        touched = (self.do_src_device_num == device_num) | (
            self.do_dest_device_num == device_num
        )
        for i in np.flatnonzero(touched):
            sub.append_data_op_event(self.data_op_event_at(i))
        return sub

    # ------------------------------------------------------------------ #
    # Aggregate statistics (vectorised)
    # ------------------------------------------------------------------ #
    def total_bytes_transferred(self) -> int:
        return int(self.do_nbytes[self.transfer_mask()].sum())

    def total_transfer_time(self) -> float:
        mask = self.transfer_mask()
        return float((self.do_end_time[mask] - self.do_start_time[mask]).sum())

    def total_alloc_time(self) -> float:
        kind = self.do_kind
        mask = (kind == CODE_ALLOC) | (kind == CODE_DELETE)
        return float((self.do_end_time[mask] - self.do_start_time[mask]).sum())

    def total_kernel_time(self) -> float:
        mask = self.kernel_mask()
        return float((self.tgt_end_time[mask] - self.tgt_start_time[mask]).sum())

    def space_overhead_bytes(self) -> int:
        return (
            DATA_OP_EVENT_BYTES * self._data_ops.size
            + TARGET_EVENT_BYTES * self._targets.size
        )

    def summary(self) -> dict:
        return {
            "program_name": self.program_name,
            "num_devices": self.num_devices,
            "num_target_events": self._targets.size,
            "num_kernel_events": int(self.kernel_mask().sum()),
            "num_data_op_events": self._data_ops.size,
            "num_transfers": int(self.transfer_mask().sum()),
            "num_allocations": int((self.do_kind == CODE_ALLOC).sum()),
            "bytes_transferred": self.total_bytes_transferred(),
            "transfer_time": self.total_transfer_time(),
            "alloc_time": self.total_alloc_time(),
            "kernel_time": self.total_kernel_time(),
            "runtime": self.runtime,
            "space_overhead_bytes": self.space_overhead_bytes(),
        }

    def all_events_chronological(self) -> Iterator[DataOpEvent | TargetEvent]:
        merged: list[tuple[float, int, DataOpEvent | TargetEvent]] = []
        for e in self.target_events:
            merged.append((e.start_time, e.seq, e))
        for e in self.data_op_events:
            merged.append((e.start_time, e.seq, e))
        merged.sort(key=lambda t: (t[0], t[1]))
        for _, _, e in merged:
            yield e

    def extend_from(self, other: "ColumnarTrace") -> None:
        """Append another columnar trace's rows (bulk column copies)."""
        self._data_ops.extend_columns(
            other.num_data_op_events,
            **{name: other._data_ops.view(name) for name, _ in _DATA_OP_COLUMNS},
        )
        self._targets.extend_columns(
            other.num_target_events,
            **{name: other._targets.view(name) for name, _ in _TARGET_COLUMNS},
        )
        self._do_variables.extend(other._do_variables)
        self._tgt_names.extend(other._tgt_names)
        self._do_cache = None
        self._tgt_cache = None

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(
        cls,
        *,
        num_devices: int = 1,
        program_name: Optional[str] = None,
        total_runtime: Optional[float] = None,
        data_ops: Optional[dict[str, np.ndarray]] = None,
        targets: Optional[dict[str, np.ndarray]] = None,
    ) -> "ColumnarTrace":
        """Bulk-construct a trace from ready-made column arrays.

        ``data_ops`` / ``targets`` map column names (see the module-level
        column specs) to equal-length arrays.  The optional-field presence
        masks may be omitted: ``has_content_hash`` then defaults to "every
        transfer has one" and ``has_codeptr`` / ``has_target_id`` to absent.
        This is the fast path for synthetic trace generators and loaders —
        one call ingests millions of events without per-event work.
        """
        out = cls(
            num_devices=num_devices,
            program_name=program_name,
            total_runtime=total_runtime,
        )
        if data_ops:
            n = len(data_ops["seq"])
            filled = dict(data_ops)
            kind = np.asarray(filled["kind"])
            if "has_content_hash" not in filled:
                filled["has_content_hash"] = (kind == CODE_TO_DEVICE) | (
                    kind == CODE_FROM_DEVICE
                )
            for optional in ("content_hash", "codeptr", "target_id"):
                filled.setdefault(optional, np.zeros(n, dtype=np.uint64))
                filled.setdefault(f"has_{optional}", np.zeros(n, dtype=np.bool_))
            out._data_ops.extend_columns(n, **filled)
            out._do_variables = [None] * n
        if targets:
            m = len(targets["seq"])
            filled = dict(targets)
            for optional in ("codeptr", "target_id"):
                filled.setdefault(optional, np.zeros(m, dtype=np.uint64))
                filled.setdefault(f"has_{optional}", np.zeros(m, dtype=np.bool_))
            out._targets.extend_columns(m, **filled)
            out._tgt_names = [None] * m
        return out

    @classmethod
    def from_trace(cls, trace: Trace) -> "ColumnarTrace":
        """Build the columnar twin of an object trace (lossless)."""
        out = cls(
            num_devices=trace.num_devices,
            program_name=trace.program_name,
            total_runtime=trace.total_runtime,
        )
        for event in trace.target_events:
            out.append_target_event(event)
        for event in trace.data_op_events:
            out.append_data_op_event(event)
        return out

    def to_trace(self) -> Trace:
        """Materialise the object twin of this trace (lossless)."""
        out = Trace(
            num_devices=self.num_devices,
            program_name=self.program_name,
            total_runtime=self.total_runtime,
        )
        out.target_events = list(self.target_events)
        out.data_op_events = list(self.data_op_events)
        return out

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return self.to_trace().to_dict()

    @classmethod
    def from_dict(cls, d: dict) -> "ColumnarTrace":
        return cls.from_trace(Trace.from_dict(d))

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ColumnarTrace":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        """Write the JSON form (interchangeable with :meth:`Trace.save`)."""
        Path(path).write_text(self.to_json(indent=2), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "ColumnarTrace":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def save_binary(self, path: str | Path, *, compress: bool = True) -> None:
        """Write the versioned binary columnar format (an ``.npz`` archive).

        ``compress=False`` writes a stored (uncompressed) archive: ~2-3x
        larger on disk but much faster to write and to re-read, which is
        what the sharded store uses — shards are scanned repeatedly by the
        streaming detectors, so decode speed beats density there.
        """
        Path(path).write_bytes(self.to_binary_bytes(compress=compress))

    def to_binary_bytes(self, *, compress: bool = True) -> bytes:
        """The binary columnar format as one blob (what shard transports store)."""
        meta = {
            "format_version": COLUMNAR_FORMAT_VERSION,
            "program_name": self.program_name,
            "num_devices": self.num_devices,
            "total_runtime": self.total_runtime,
            "num_data_op_events": self._data_ops.size,
            "num_target_events": self._targets.size,
            "data_op_variables": self._do_variables,
            "target_names": self._tgt_names,
        }
        arrays = {f"do_{name}": col for name, col in self._data_ops.compact().items()}
        arrays.update(
            {f"tgt_{name}": col for name, col in self._targets.compact().items()}
        )
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        buffer = io.BytesIO()
        if compress:
            np.savez_compressed(buffer, **arrays)
        else:
            np.savez(buffer, **arrays)
        return buffer.getvalue()

    @classmethod
    def load_binary(cls, path: str | Path) -> "ColumnarTrace":
        """Read the versioned binary columnar format."""
        return cls.from_binary_bytes(Path(path).read_bytes(), source=str(path))

    @classmethod
    def from_binary_bytes(cls, data: bytes, *, source: str = "<bytes>") -> "ColumnarTrace":
        """Decode one binary columnar blob (the transports' read path)."""
        path = source  # keep the historical error-message wording
        try:
            archive_file = np.load(io.BytesIO(data), allow_pickle=False)
        except zipfile.BadZipFile as exc:
            raise ValueError(f"{path}: not a valid columnar trace archive ({exc})") from exc
        with archive_file as archive:
            if "meta" not in archive:
                raise ValueError(f"{path}: not a columnar trace archive")
            meta = json.loads(archive["meta"].tobytes().decode("utf-8"))
            version = meta.get("format_version")
            if version != COLUMNAR_FORMAT_VERSION:
                raise ValueError(f"unsupported columnar trace format version {version}")
            out = cls(
                num_devices=int(meta["num_devices"]),
                program_name=meta.get("program_name"),
                total_runtime=meta.get("total_runtime"),
            )
            n_do = int(meta["num_data_op_events"])
            n_tgt = int(meta["num_target_events"])
            out._data_ops.adopt_columns(
                n_do,
                **{name: archive[f"do_{name}"] for name, _ in _DATA_OP_COLUMNS},
            )
            out._targets.adopt_columns(
                n_tgt,
                **{name: archive[f"tgt_{name}"] for name, _ in _TARGET_COLUMNS},
            )
        out._do_variables = list(meta.get("data_op_variables") or [None] * n_do)
        out._tgt_names = list(meta.get("target_names") or [None] * n_tgt)
        if len(out._do_variables) != n_do or len(out._tgt_names) != n_tgt:
            raise ValueError(f"{path}: metadata string columns disagree with array lengths")
        return out

    # ------------------------------------------------------------------ #
    # Flat shared-memory payload (zero-copy views)
    # ------------------------------------------------------------------ #
    def _flat_plan(self) -> tuple[bytes, int, int, list[tuple[str, str, str, int, int]]]:
        """Lay out the flat payload: header bytes, data start, total size.

        Column offsets in the header are relative to the (aligned) start of
        the data section, so they do not depend on the header's own length.
        """
        columns: list[tuple[str, str, str, int, int]] = []
        offset = 0
        for tag, group, spec in (
            ("do", self._data_ops, _DATA_OP_COLUMNS),
            ("tgt", self._targets, _TARGET_COLUMNS),
        ):
            for name, _ in spec:
                arr = group.view(name)
                columns.append((tag, name, arr.dtype.str, offset, int(arr.nbytes)))
                offset = _align_flat(offset + int(arr.nbytes))
        header = {
            "format_version": FLAT_FORMAT_VERSION,
            "program_name": self.program_name,
            "num_devices": self.num_devices,
            "total_runtime": self.total_runtime,
            "num_data_op_events": self._data_ops.size,
            "num_target_events": self._targets.size,
            # Debug string columns are usually absent on shards; encode the
            # all-None common case as null to keep the header compact.
            "data_op_variables": (
                None if all(v is None for v in self._do_variables) else self._do_variables
            ),
            "target_names": (
                None if all(v is None for v in self._tgt_names) else self._tgt_names
            ),
            "columns": columns,
        }
        header_bytes = json.dumps(header).encode("utf-8")
        data_start = _align_flat(_FLAT_PREFIX.size + len(header_bytes))
        return header_bytes, data_start, data_start + offset, columns

    def flat_payload_size(self) -> int:
        """Total byte size of the flat payload (to size a shared segment)."""
        return self._flat_plan()[2]

    def write_flat_payload(self, buf) -> int:
        """Serialise the flat payload into a writable buffer; return its size.

        ``buf`` is any writable buffer (a ``SharedMemory.buf``, an ``mmap``,
        a ``bytearray``) at least :meth:`flat_payload_size` bytes long.

        The magic prefix is written *last*: a concurrent reader of a
        shared segment that sees a valid prefix is guaranteed the header
        and column data before it are complete, so ``from_shared`` can
        treat a bad magic as "publication in flight" rather than
        corruption.
        """
        header_bytes, data_start, total, columns = self._flat_plan()
        mv = memoryview(buf)
        if len(mv) < total:
            raise ValueError(
                f"flat payload needs {total} bytes, buffer has {len(mv)}"
            )
        groups = {"do": self._data_ops, "tgt": self._targets}
        for tag, name, dtype_str, offset, nbytes in columns:
            src = groups[tag].view(name)
            dst = np.frombuffer(
                mv, dtype=np.dtype(dtype_str), count=src.size, offset=data_start + offset
            )
            np.copyto(dst, src, casting="no")
        mv[_FLAT_PREFIX.size : _FLAT_PREFIX.size + len(header_bytes)] = header_bytes
        _FLAT_PREFIX.pack_into(
            mv, 0, FLAT_MAGIC, FLAT_FORMAT_VERSION, 0, len(header_bytes)
        )
        return total

    def to_flat_payload(self) -> bytes:
        """The flat payload as one blob (an ``.odpf`` shard's file body)."""
        buf = bytearray(self.flat_payload_size())
        self.write_flat_payload(buf)
        return bytes(buf)

    def save_flat(self, path: str | Path) -> None:
        """Write the trace as one standalone ``.odpf`` flat payload file."""
        Path(path).write_bytes(self.to_flat_payload())

    @classmethod
    def load_flat(cls, path: str | Path) -> "ColumnarTrace":
        """Memory-map a standalone ``.odpf`` file as zero-copy column views.

        The mapping is the returned trace's keepalive: it stays mapped as
        long as any view into it is referenced and is reclaimed by the OS
        when the last reference drops — there is no handle to close.
        """
        import mmap

        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        return cls.from_shared(mapped, keepalive=mapped, source=str(path))

    @classmethod
    def from_shared(cls, buf, *, keepalive=None, source: str = "<shared>") -> "ColumnarTrace":
        """Build a trace whose columns are zero-copy views into ``buf``.

        ``buf`` holds a flat payload (see :meth:`write_flat_payload`) — a
        shared-memory segment, an ``mmap``, or any buffer.  No column data
        is copied; the returned trace keeps a reference to ``keepalive``
        (e.g. the ``SharedMemory`` handle) so the mapping outlives the
        views.  Appending to the returned trace is safe: growth reallocates
        into private memory, never mutating the shared buffer.
        """
        mv = memoryview(buf)
        if len(mv) < _FLAT_PREFIX.size:
            raise ValueError(f"{source}: buffer too small for a flat trace payload")
        magic, version, _, header_len = _FLAT_PREFIX.unpack_from(mv, 0)
        if magic != FLAT_MAGIC:
            raise ValueError(f"{source}: not a flat trace payload")
        if version != FLAT_FORMAT_VERSION:
            raise ValueError(f"{source}: unsupported flat payload version {version}")
        if len(mv) < _FLAT_PREFIX.size + header_len:
            raise ValueError(f"{source}: truncated flat trace payload")
        header = json.loads(
            bytes(mv[_FLAT_PREFIX.size : _FLAT_PREFIX.size + header_len])
        )
        data_start = _align_flat(_FLAT_PREFIX.size + header_len)
        # A torn write can keep the magic-bearing prefix of the payload (an
        # object-store put commits whatever bytes arrived), so the commit
        # marker alone does not prove the column data is all there.
        needed = data_start + max(
            (offset + nbytes for _, _, _, offset, nbytes in header["columns"]),
            default=0,
        )
        if len(mv) < needed:
            raise ValueError(f"{source}: truncated flat trace payload")
        out = cls(
            num_devices=int(header["num_devices"]),
            program_name=header.get("program_name"),
            total_runtime=header.get("total_runtime"),
        )
        views: dict[str, dict[str, np.ndarray]] = {"do": {}, "tgt": {}}
        for tag, name, dtype_str, offset, nbytes in header["columns"]:
            dtype = np.dtype(dtype_str)
            views[tag][name] = np.frombuffer(
                mv, dtype=dtype, count=nbytes // dtype.itemsize,
                offset=data_start + offset,
            )
        n_do = int(header["num_data_op_events"])
        n_tgt = int(header["num_target_events"])
        out._data_ops.adopt_columns(n_do, **views["do"])
        out._targets.adopt_columns(n_tgt, **views["tgt"])
        out._do_variables = list(header.get("data_op_variables") or [None] * n_do)
        out._tgt_names = list(header.get("target_names") or [None] * n_tgt)
        if len(out._do_variables) != n_do or len(out._tgt_names) != n_tgt:
            raise ValueError(f"{source}: header string columns disagree with array lengths")
        out._shared_keepalive = (keepalive, mv)
        return out


def as_columnar(trace: "Trace | ColumnarTrace") -> ColumnarTrace:
    """Return ``trace`` itself if already columnar, else convert it."""
    if isinstance(trace, ColumnarTrace):
        return trace
    return ColumnarTrace.from_trace(trace)


def as_object_trace(trace: "Trace | ColumnarTrace") -> Trace:
    """Return ``trace`` itself if already an object trace, else convert it."""
    if isinstance(trace, Trace):
        return trace
    return trace.to_trace()


def load_trace(path: str | Path):
    """Load a trace from disk, sniffing the storage format.

    Delegates to the storage-backend registry in
    :mod:`repro.events.backends`: a directory is opened as a
    :class:`~repro.events.store.ShardedTraceStore`, a zip archive
    (``PK`` magic) as the binary columnar format, and everything else as
    the JSON format (an object :class:`Trace`).
    """
    from repro.events.backends import load_trace as _registry_load_trace

    return _registry_load_trace(path)
