"""Event model shared by the runtime simulator, the OMPT layer and the tool.

The detection algorithms in the paper (Section 5) operate on a post-mortem
log of OpenMP target events.  Every log entry carries the start and end time
of the event, the hash of the data transferred (if applicable), and the
information provided by the corresponding OMPT callback: source and
destination device numbers, code pointers, number of bytes transferred and
the type of operation.  This package defines those records and the
:class:`~repro.events.trace.Trace` container that holds them.
"""

from repro.events.records import (
    DATA_OP_EVENT_BYTES,
    TARGET_EVENT_BYTES,
    AllocationPair,
    DataOpEvent,
    DataOpKind,
    TargetEvent,
    TargetKind,
    get_alloc_delete_pairs,
)
from repro.events.trace import Trace
from repro.events.columnar import (
    COLUMNAR_FORMAT_VERSION,
    ColumnarTrace,
    as_columnar,
    as_object_trace,
    load_trace,
)
from repro.events.protocol import EventStream, TraceLike
from repro.events.backends import TraceBackend, available_backends, register_trace_backend
from repro.events.stream import (
    DEFAULT_SHARD_EVENTS,
    SlicedTraceStream,
    as_event_stream,
    iter_trace_slices,
    merge_stream,
)
from repro.events.store import (
    STORE_FORMAT_VERSION,
    ShardedTraceStore,
    TraceWriter,
    merge_shards,
    shard_trace,
)
from repro.events.validation import TraceValidationError, validate_stream, validate_trace

__all__ = [
    "DATA_OP_EVENT_BYTES",
    "TARGET_EVENT_BYTES",
    "AllocationPair",
    "COLUMNAR_FORMAT_VERSION",
    "ColumnarTrace",
    "DataOpEvent",
    "DataOpKind",
    "DEFAULT_SHARD_EVENTS",
    "EventStream",
    "STORE_FORMAT_VERSION",
    "ShardedTraceStore",
    "SlicedTraceStream",
    "TargetEvent",
    "TargetKind",
    "TraceBackend",
    "TraceLike",
    "TraceWriter",
    "as_columnar",
    "as_event_stream",
    "as_object_trace",
    "available_backends",
    "get_alloc_delete_pairs",
    "iter_trace_slices",
    "load_trace",
    "merge_shards",
    "merge_stream",
    "register_trace_backend",
    "shard_trace",
    "Trace",
    "TraceValidationError",
    "validate_stream",
    "validate_trace",
]
