"""Event model shared by the runtime simulator, the OMPT layer and the tool.

The detection algorithms in the paper (Section 5) operate on a post-mortem
log of OpenMP target events.  Every log entry carries the start and end time
of the event, the hash of the data transferred (if applicable), and the
information provided by the corresponding OMPT callback: source and
destination device numbers, code pointers, number of bytes transferred and
the type of operation.  This package defines those records and the
:class:`~repro.events.trace.Trace` container that holds them.
"""

from repro.events.records import (
    DATA_OP_EVENT_BYTES,
    TARGET_EVENT_BYTES,
    AllocationPair,
    DataOpEvent,
    DataOpKind,
    TargetEvent,
    TargetKind,
    get_alloc_delete_pairs,
)
from repro.events.trace import Trace
from repro.events.columnar import (
    COLUMNAR_FORMAT_VERSION,
    ColumnarTrace,
    as_columnar,
    as_object_trace,
    load_trace,
)
from repro.events.protocol import TraceLike
from repro.events.validation import TraceValidationError, validate_trace

__all__ = [
    "DATA_OP_EVENT_BYTES",
    "TARGET_EVENT_BYTES",
    "AllocationPair",
    "COLUMNAR_FORMAT_VERSION",
    "ColumnarTrace",
    "DataOpEvent",
    "DataOpKind",
    "TargetEvent",
    "TargetKind",
    "TraceLike",
    "as_columnar",
    "as_object_trace",
    "get_alloc_delete_pairs",
    "load_trace",
    "Trace",
    "TraceValidationError",
    "validate_trace",
]
