"""Pluggable shard transports: where a sharded trace store physically lives.

A :class:`~repro.events.store.ShardedTraceStore` is logically a manifest
plus a set of named shard blobs.  *Where* those blobs live — a local
directory, a single zip archive, an object store — is this module's job,
behind one small :class:`ShardTransport` protocol:

====================================  =========================================
transport                             backing storage
====================================  =========================================
:class:`LocalDirTransport`            a directory of files (the historical and
                                      default layout; renames and manifest
                                      publishes are atomic ``os.replace``)
:class:`ZipArchiveTransport`          one ``.zip`` archive — single-file cold
                                      storage; every mutation stages a temp
                                      archive + atomic replace, and
                                      ``apply_batch`` folds any number of
                                      mutations into one streamed swap
:class:`FakeObjectStoreTransport`     an in-memory dict with S3-like
                                      get/put/list/delete semantics, plus
                                      latency and fault injection for tests
``S3ObjectStoreTransport``            a real S3-compatible bucket (boto3) —
                                      see :mod:`repro.events.transport_s3`;
                                      selected by ``s3://bucket/prefix``
                                      specs anywhere a store path is accepted
====================================  =========================================

Blob names are relative POSIX-style paths (``manifest.json``,
``shard-00000.odpf``, ``.compact.tmp/shard-00001.npz``).  The contract every
transport honours:

* ``write_blob`` is an **atomic publish**: a concurrent (or post-crash)
  reader sees either the previous content or the new content in full,
  never a torn prefix.  The fake object store models S3's whole-object
  puts the same way — and its fault injection can violate the contract on
  purpose (:meth:`FakeObjectStoreTransport.tear_next_write`) to test that
  the store's crash-safety does not silently depend on it for *shard*
  blobs.
* ``rename_blob`` moves a complete blob; on the local transport it is an
  atomic ``os.replace``, on the object store it is S3's non-atomic
  copy-then-delete (each half atomic per blob).
* ``delete_blob`` is idempotent (missing blobs are not an error).
* ``spec()`` returns a small picklable description from which
  :func:`transport_from_spec` rebuilds an equivalent transport — how the
  process execution engine ships "open this store" to its workers without
  assuming a local path.

:func:`open_transport` sniffs a path (directory vs ``.zip`` archive) or
passes an existing transport through, so every store entry point accepts
either.
"""

from __future__ import annotations

import os
import shutil
import time
import zipfile
from pathlib import Path, PurePosixPath
from typing import Optional, Protocol, runtime_checkable


class TransportError(OSError):
    """A shard blob could not be read, written, listed or deleted."""


@runtime_checkable
class ShardTransport(Protocol):
    """Storage for one store's named blobs (shards + manifest)."""

    def list_blobs(self) -> list[str]:
        """All blob names, sorted."""
        ...

    def read_blob(self, name: str) -> bytes:
        """Return a blob's full content (:class:`TransportError` if missing)."""
        ...

    def write_blob(self, name: str, data: bytes) -> None:
        """Create or replace a blob atomically (old or new, never torn)."""
        ...

    def delete_blob(self, name: str) -> None:
        """Remove a blob; missing blobs are ignored."""
        ...

    def rename_blob(self, src: str, dst: str) -> None:
        """Move a blob to a new name, replacing any existing ``dst``."""
        ...

    def blob_exists(self, name: str) -> bool:
        ...

    def blob_size(self, name: str) -> int:
        """Size of a blob in bytes (:class:`TransportError` if missing)."""
        ...

    def spec(self) -> dict:
        """A picklable description :func:`transport_from_spec` can rebuild."""
        ...

    def describe(self) -> str:
        """Human-readable location for error messages."""
        ...


def _check_blob_name(name: str) -> str:
    """Reject absolute or escaping names; normalise to POSIX separators."""
    pure = PurePosixPath(name)
    if pure.is_absolute() or ".." in pure.parts or not pure.parts:
        raise ValueError(f"invalid blob name {name!r}")
    return str(pure)


# --------------------------------------------------------------------- #
# Local directory
# --------------------------------------------------------------------- #
class LocalDirTransport:
    """Blobs as files under one directory — the historical store layout."""

    kind = "local"

    def __init__(self, path: str | Path, *, create: bool = False) -> None:
        self.path = Path(path)
        if create:
            if self.path.exists() and not self.path.is_dir():
                raise ValueError(f"{self.path}: exists and is not a directory")
            self.path.mkdir(parents=True, exist_ok=True)

    def _resolve(self, name: str) -> Path:
        return self.path / _check_blob_name(name)

    def list_blobs(self) -> list[str]:
        if not self.path.is_dir():
            return []
        try:
            return sorted(
                p.relative_to(self.path).as_posix()
                for p in self.path.rglob("*")
                if p.is_file()
            )
        except OSError:
            # The directory vanished mid-walk (a concurrent teardown —
            # e.g. a distributed worker outpolling its scratch queue's
            # removal); a gone store lists as empty, same as above.
            return []

    def read_blob(self, name: str) -> bytes:
        try:
            return self._resolve(name).read_bytes()
        except OSError as exc:
            raise TransportError(f"{self.describe()}: cannot read blob {name!r}: {exc}") from exc

    def map_blob(self, name: str):
        """Memory-map a blob read-only (zero-copy sibling of :meth:`read_blob`).

        Returns an ``mmap.mmap`` the caller owns (and must keep alive as
        long as any view into it).  Only the local-directory transport can
        offer this; callers probe with :func:`try_map_blob` and fall back
        to :meth:`read_blob` elsewhere.
        """
        import mmap

        try:
            with open(self._resolve(name), "rb") as handle:
                return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            # ValueError: zero-length files cannot be mapped.
            raise TransportError(f"{self.describe()}: cannot map blob {name!r}: {exc}") from exc

    def write_blob(self, name: str, data: bytes) -> None:
        target = self._resolve(name)
        target.parent.mkdir(parents=True, exist_ok=True)
        # Stage next to the target and publish with one atomic replace, so a
        # crash mid-write can never leave a torn blob under the final name.
        staged = target.with_name(target.name + f".tmp-{os.getpid()}")
        try:
            staged.write_bytes(data)
            os.replace(staged, target)
        except OSError as exc:
            staged.unlink(missing_ok=True)
            raise TransportError(f"{self.describe()}: cannot write blob {name!r}: {exc}") from exc

    def _prune_empty_dirs(self, start: Path) -> None:
        # Nested blob names (the compaction scratch prefix) map to real
        # subdirectories; removing the last blob removes the namespace.
        current = start
        while current != self.path and current.is_dir():
            try:
                current.rmdir()
            except OSError:
                return
            current = current.parent

    def delete_blob(self, name: str) -> None:
        target = self._resolve(name)
        target.unlink(missing_ok=True)
        self._prune_empty_dirs(target.parent)

    def rename_blob(self, src: str, dst: str) -> None:
        source, target = self._resolve(src), self._resolve(dst)
        target.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(source, target)
        except OSError as exc:
            raise TransportError(
                f"{self.describe()}: cannot rename blob {src!r} -> {dst!r}: {exc}"
            ) from exc
        self._prune_empty_dirs(source.parent)

    def blob_exists(self, name: str) -> bool:
        return self._resolve(name).is_file()

    def blob_size(self, name: str) -> int:
        try:
            return self._resolve(name).stat().st_size
        except OSError as exc:
            raise TransportError(f"{self.describe()}: cannot stat blob {name!r}: {exc}") from exc

    def spec(self) -> dict:
        return {"kind": self.kind, "path": str(self.path)}

    def describe(self) -> str:
        return str(self.path)


# --------------------------------------------------------------------- #
# Single-file zip archive (cold storage)
# --------------------------------------------------------------------- #
class ZipArchiveTransport:
    """Blobs as members of one zip archive — single-file cold storage.

    Reads open the archive per operation (no shared handle, so instances
    stay picklable and concurrent readers never contend).  **Every
    mutation is atomic**: a new blob is appended to a temp *copy* of the
    archive which then replaces the original in one ``os.replace``;
    overwrite, delete and rename stream the surviving members into a
    fresh temp archive and replace likewise — a crash at any instant
    leaves either the old archive or the new one, never a torn central
    directory.  Single mutations therefore cost O(archive); bulk callers
    (compaction) use :meth:`apply_batch` to fold any number of writes,
    renames and deletes into ONE streamed rewrite and one atomic swap.
    The right trade-offs for an archival format that is written once and
    read many times.  Shard payloads are ``.npz`` archives or aligned
    flat buffers, so members are stored uncompressed.
    """

    kind = "zip"

    def __init__(self, path: str | Path, *, create: bool = False) -> None:
        self.path = Path(path)
        if create and not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with zipfile.ZipFile(self.path, "w"):
                pass
        if not self.path.is_file():
            raise TransportError(f"{self.path}: no such archive")

    @staticmethod
    def is_archive(path: str | Path) -> bool:
        """True when ``path`` is a zip file (any zip, not only stores)."""
        path = Path(path)
        if not path.is_file():
            return False
        with path.open("rb") as fh:
            return fh.read(2) == b"PK"

    def _names(self, zf: zipfile.ZipFile) -> list[str]:
        # A replacement member can leave a stale entry in the archive
        # body; readers resolve a name to its LAST entry, so dedupe.
        return sorted(set(zf.namelist()))

    def _staged(self) -> Path:
        return self.path.with_name(self.path.name + f".tmp-{os.getpid()}")

    def list_blobs(self) -> list[str]:
        with zipfile.ZipFile(self.path) as zf:
            return self._names(zf)

    def read_blob(self, name: str) -> bytes:
        name = _check_blob_name(name)
        try:
            with zipfile.ZipFile(self.path) as zf:
                return zf.read(name)
        except KeyError as exc:
            raise TransportError(f"{self.describe()}: no blob {name!r}") from exc
        except (OSError, zipfile.BadZipFile) as exc:
            raise TransportError(f"{self.describe()}: cannot read blob {name!r}: {exc}") from exc

    def apply_batch(
        self,
        *,
        writes: Optional[dict] = None,
        renames: Optional[dict] = None,
        deletes=(),
    ) -> None:
        """Apply writes + renames + deletes in ONE atomic archive swap.

        Surviving members stream one at a time from the old archive into
        a temp archive (O(member) memory, one pass of I/O regardless of
        how many mutations), which then replaces the original
        atomically.  A write value may be ``bytes`` or a zero-argument
        callable returning bytes — callables are invoked one at a time
        during the swap, so a bulk caller (compaction promoting staged
        shards) never holds more than one blob in memory.  Deletes of
        missing members are ignored; renames of missing members raise;
        writes override renamed-over names.
        """
        writes = {
            _check_blob_name(name): data for name, data in (writes or {}).items()
        }
        renames = {
            _check_blob_name(src): _check_blob_name(dst)
            for src, dst in (renames or {}).items()
        }
        deletes = {_check_blob_name(name) for name in deletes}
        staged = self._staged()
        try:
            with zipfile.ZipFile(self.path) as src_zf:
                names = self._names(src_zf)
                missing = set(renames) - set(names)
                if missing:
                    raise TransportError(
                        f"{self.describe()}: no blob {sorted(missing)[0]!r}"
                    )
                rename_targets = set(renames.values())
                with zipfile.ZipFile(
                    staged, "w", compression=zipfile.ZIP_STORED
                ) as dst_zf:
                    for name in names:
                        if name in deletes or name in writes:
                            continue
                        target = renames.get(name, name)
                        if name not in renames and name in rename_targets:
                            continue  # replaced by a renamed-in member
                        if target in writes:
                            continue
                        dst_zf.writestr(target, src_zf.read(name))
                    for name, data in writes.items():
                        dst_zf.writestr(name, data() if callable(data) else data)
            os.replace(staged, self.path)
        except (OSError, zipfile.BadZipFile) as exc:
            staged.unlink(missing_ok=True)
            raise TransportError(f"{self.describe()}: cannot rewrite archive: {exc}") from exc
        finally:
            staged.unlink(missing_ok=True)

    def write_blob(self, name: str, data: bytes) -> None:
        name = _check_blob_name(name)
        if self.blob_exists(name):
            self.apply_batch(writes={name: data})
            return
        # Appending inside the live archive would overwrite its central
        # directory in place (a crash mid-append corrupts EVERY member),
        # so append to a temp copy and swap it in atomically instead.
        staged = self._staged()
        try:
            shutil.copyfile(self.path, staged)
            with zipfile.ZipFile(staged, "a", compression=zipfile.ZIP_STORED) as zf:
                zf.writestr(name, data)
            os.replace(staged, self.path)
        except OSError as exc:
            raise TransportError(f"{self.describe()}: cannot write blob {name!r}: {exc}") from exc
        finally:
            staged.unlink(missing_ok=True)

    def delete_blob(self, name: str) -> None:
        name = _check_blob_name(name)
        if not self.blob_exists(name):
            return
        self.apply_batch(deletes=[name])

    def rename_blob(self, src: str, dst: str) -> None:
        self.apply_batch(renames={src: dst})

    def blob_exists(self, name: str) -> bool:
        name = _check_blob_name(name)
        with zipfile.ZipFile(self.path) as zf:
            return name in zf.namelist()

    def blob_size(self, name: str) -> int:
        name = _check_blob_name(name)
        try:
            with zipfile.ZipFile(self.path) as zf:
                return zf.getinfo(name).file_size
        except KeyError as exc:
            raise TransportError(f"{self.describe()}: no blob {name!r}") from exc

    def spec(self) -> dict:
        return {"kind": self.kind, "path": str(self.path)}

    def describe(self) -> str:
        return str(self.path)


def zip_contains_manifest(path: str | Path) -> bool:
    """True when ``path`` is a zip archive holding a store manifest member.

    The sniffing predicate that distinguishes a zip-archived *store* from a
    binary columnar trace (also a zip): only the former carries a
    ``manifest.json`` member at its root.
    """
    from repro.events.store import MANIFEST_NAME

    if not ZipArchiveTransport.is_archive(path):
        return False
    try:
        with zipfile.ZipFile(path) as zf:
            return MANIFEST_NAME in zf.namelist()
    except (OSError, zipfile.BadZipFile):
        return False


# --------------------------------------------------------------------- #
# In-memory fake object store (tests)
# --------------------------------------------------------------------- #
class FakeObjectStoreTransport:
    """An in-memory object store with S3-like semantics, for tests.

    The primitive surface mirrors S3 — whole-object ``put_object`` /
    ``get_object``, prefix ``list_objects``, idempotent ``delete_object``,
    ``head_object`` metadata, and ``copy_object`` (so "rename" is the
    non-atomic copy-then-delete every real object store forces) — and the
    :class:`ShardTransport` methods are defined on top of those
    primitives, so a test driving the transport exercises exactly the call
    pattern a real object-store client would see.

    Test hooks:

    * ``latency`` — seconds slept on every primitive operation, to make
      request-bound access patterns (e.g. a per-shard read amplification
      bug) measurable.
    * :meth:`fail_next` — queue a :class:`TransportError` for the next
      operation(s) of one kind (``"get"``, ``"put"``, ``"list"``,
      ``"delete"``), leaving stored state untouched.
    * :meth:`tear_next_write` — make the next put commit only a prefix of
      its payload *and then* raise: a torn write, deliberately violating
      the atomic-publish contract to prove crash-safety does not depend on
      it for shard blobs.
    * ``op_counts`` — per-primitive call counters, for asserting access
      patterns (e.g. "the summary path issued zero gets").

    Instances are picklable (the whole "bucket" travels with them), which
    is what lets process-engine workers open a store backed by this
    transport: each worker receives a consistent snapshot, exactly like a
    worker hitting an immutable object-store prefix.
    """

    kind = "fake-object-store"

    def __init__(self, *, latency: float = 0.0) -> None:
        self.latency = float(latency)
        self._objects: dict[str, bytes] = {}
        self.op_counts: dict[str, int] = {}
        self._failures: dict[str, list[BaseException]] = {}
        self._tear_fraction: Optional[float] = None

    # -- S3-like primitive surface -------------------------------------- #
    def _op(self, op: str) -> None:
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        if self.latency > 0.0:
            time.sleep(self.latency)
        queued = self._failures.get(op)
        if queued:
            raise queued.pop(0)

    def put_object(self, key: str, body: bytes) -> None:
        self._op("put")
        if self._tear_fraction is not None:
            fraction, self._tear_fraction = self._tear_fraction, None
            self._objects[key] = bytes(body[: int(len(body) * fraction)])
            raise TransportError(
                f"{self.describe()}: connection lost mid-upload of {key!r}"
            )
        self._objects[key] = bytes(body)

    def get_object(self, key: str) -> bytes:
        self._op("get")
        try:
            return self._objects[key]
        except KeyError:
            raise TransportError(f"{self.describe()}: no object {key!r}") from None

    def list_objects(self, prefix: str = "") -> list[str]:
        self._op("list")
        return sorted(key for key in self._objects if key.startswith(prefix))

    def delete_object(self, key: str) -> None:
        self._op("delete")
        self._objects.pop(key, None)

    def head_object(self, key: str) -> dict:
        self._op("head")
        try:
            return {"ContentLength": len(self._objects[key])}
        except KeyError:
            raise TransportError(f"{self.describe()}: no object {key!r}") from None

    def copy_object(self, src: str, dst: str) -> None:
        self._op("copy")
        try:
            self._objects[dst] = self._objects[src]
        except KeyError:
            raise TransportError(f"{self.describe()}: no object {src!r}") from None

    # -- fault injection ------------------------------------------------- #
    def fail_next(self, op: str, exc: Optional[BaseException] = None) -> None:
        """Queue a failure for the next primitive operation of kind ``op``."""
        if op not in ("get", "put", "list", "delete", "head", "copy"):
            raise ValueError(f"unknown object-store operation {op!r}")
        self._failures.setdefault(op, []).append(
            exc if exc is not None
            else TransportError(f"{self.describe()}: injected {op} failure")
        )

    def tear_next_write(self, keep_fraction: float = 0.5) -> None:
        """Make the next put commit a torn prefix of its payload and raise."""
        if not 0.0 <= keep_fraction < 1.0:
            raise ValueError("keep_fraction must be in [0, 1)")
        self._tear_fraction = keep_fraction

    # -- ShardTransport surface ------------------------------------------ #
    def list_blobs(self) -> list[str]:
        return self.list_objects()

    def read_blob(self, name: str) -> bytes:
        return self.get_object(_check_blob_name(name))

    def write_blob(self, name: str, data: bytes) -> None:
        self.put_object(_check_blob_name(name), data)

    def delete_blob(self, name: str) -> None:
        self.delete_object(_check_blob_name(name))

    def rename_blob(self, src: str, dst: str) -> None:
        # Object stores have no rename: copy, then delete the source.
        self.copy_object(_check_blob_name(src), _check_blob_name(dst))
        self.delete_object(_check_blob_name(src))

    def blob_exists(self, name: str) -> bool:
        return _check_blob_name(name) in self._objects

    def blob_size(self, name: str) -> int:
        return int(self.head_object(_check_blob_name(name))["ContentLength"])

    def spec(self) -> dict:
        # The whole bucket travels in the spec: workers get a consistent
        # read snapshot (the analysis path never writes through it).
        return {"kind": self.kind, "transport": self}

    def describe(self) -> str:
        return "fake-object-store://"


# --------------------------------------------------------------------- #
# Prefix namespace (scratch staging)
# --------------------------------------------------------------------- #
class PrefixTransport:
    """A sub-namespace of another transport (``<prefix>/<name>`` blobs).

    Compaction stages its rewritten shards under a scratch prefix of the
    *same* transport, so staging and promotion never cross a storage
    boundary — promotion is a same-transport rename.
    """

    kind = "prefix"

    def __init__(self, inner: ShardTransport, prefix: str) -> None:
        prefix = _check_blob_name(prefix)
        self.inner = inner
        self.prefix = prefix.rstrip("/") + "/"

    def _wrap(self, name: str) -> str:
        return self.prefix + _check_blob_name(name)

    def list_blobs(self) -> list[str]:
        return sorted(
            name[len(self.prefix):]
            for name in self.inner.list_blobs()
            if name.startswith(self.prefix)
        )

    def read_blob(self, name: str) -> bytes:
        return self.inner.read_blob(self._wrap(name))

    def write_blob(self, name: str, data: bytes) -> None:
        self.inner.write_blob(self._wrap(name), data)

    def delete_blob(self, name: str) -> None:
        self.inner.delete_blob(self._wrap(name))

    def rename_blob(self, src: str, dst: str) -> None:
        self.inner.rename_blob(self._wrap(src), self._wrap(dst))

    def blob_exists(self, name: str) -> bool:
        return self.inner.blob_exists(self._wrap(name))

    def blob_size(self, name: str) -> int:
        return self.inner.blob_size(self._wrap(name))

    def clear(self) -> None:
        """Delete every blob under the prefix."""
        for name in self.list_blobs():
            self.delete_blob(name)

    def spec(self) -> dict:
        return {"kind": self.kind, "prefix": self.prefix, "inner": self.inner.spec()}

    def describe(self) -> str:
        return f"{self.inner.describe()}!{self.prefix}"


# --------------------------------------------------------------------- #
# Shared blob idioms (task queues, lease claims)
# --------------------------------------------------------------------- #
def list_blobs_under(transport: ShardTransport, prefix: str) -> list[str]:
    """All blob names starting with ``prefix``, sorted.

    Object stores answer prefix listings server-side (``list_objects``),
    so the distributed task queue's per-poll scans stay one request; every
    other transport filters its full listing.
    """
    lister = getattr(transport, "list_objects", None)
    if lister is not None:
        return sorted(lister(prefix))
    return [name for name in transport.list_blobs() if name.startswith(prefix)]


def try_read_blob(transport: ShardTransport, name: str) -> Optional[bytes]:
    """A blob's content, or ``None`` when it does not (or no longer) exists.

    Polling loops race against concurrent writers deleting or renaming
    blobs between a listing and the read; this is the read that treats
    losing such a race as an answer rather than an error.
    """
    try:
        return transport.read_blob(name)
    except TransportError:
        return None


def try_map_blob(transport: ShardTransport, name: str):
    """Memory-map a blob when the transport can, else ``None``.

    The zero-copy probe the decoded-shard cache uses: a local-directory
    transport answers with an ``mmap`` (the caller keeps it alive for as
    long as any view into it); archives and object stores answer ``None``
    and the caller falls back to :func:`try_read_blob`.
    """
    mapper = getattr(transport, "map_blob", None)
    if mapper is None:
        return None
    try:
        return mapper(name)
    except TransportError:
        return None


def try_write_blob(transport: ShardTransport, name: str, data: bytes) -> bool:
    """Atomically publish a blob, best effort; ``False`` when it failed.

    Every transport's ``write_blob`` is an atomic publish (staged tmp +
    rename locally, whole-object put on object stores), so readers never
    observe a torn payload.  This wrapper is for *advisory* blobs that
    are periodically rewritten — the distributed coordinator's
    autoscaling ``hints`` — where a transient transport failure must cost
    one stale interval, not the run.
    """
    try:
        transport.write_blob(name, data)
    except (TransportError, OSError):
        return False
    return True


def try_claim_blob(transport: ShardTransport, src: str, dst: str) -> bool:
    """Claim ``src`` by renaming it to ``dst``; ``False`` if the race was lost.

    Renames fail when the *source* is gone, so concurrent claimants racing
    for one blob (each renaming it to its own claim name) resolve to
    exactly one winner on transports with atomic rename.  On object
    stores — where rename is copy-then-delete — two racers can briefly
    both hold a copy; claimed work must therefore be idempotent (the
    distributed engine's folds are: duplicate results are bit-identical).
    """
    try:
        transport.rename_blob(src, dst)
    except TransportError:
        return False
    return True


# --------------------------------------------------------------------- #
# Sniffing and specs
# --------------------------------------------------------------------- #
def open_transport(source, *, create: bool = False) -> ShardTransport:
    """Resolve a path (or pass a transport through) to a :class:`ShardTransport`.

    An existing directory — or, with ``create=True``, any path not ending
    in ``.zip`` — becomes a :class:`LocalDirTransport`; a zip archive (or a
    to-be-created ``*.zip`` path) a :class:`ZipArchiveTransport`; an
    ``s3://bucket/prefix`` URL an ``S3ObjectStoreTransport``.  Objects
    already implementing the protocol pass through unchanged.
    """
    if isinstance(source, ShardTransport):
        return source
    if isinstance(source, str) and source.startswith("s3://"):
        from repro.events.transport_s3 import S3ObjectStoreTransport

        return S3ObjectStoreTransport.from_url(source, create=create)
    path = Path(source)
    if path.is_dir():
        return LocalDirTransport(path)
    if path.is_file():
        if ZipArchiveTransport.is_archive(path):
            return ZipArchiveTransport(path)
        raise ValueError(f"{path}: not a store directory or zip archive")
    if not create:
        raise FileNotFoundError(f"{path}: no such store")
    if path.suffix == ".zip":
        return ZipArchiveTransport(path, create=True)
    return LocalDirTransport(path, create=True)


def transport_from_spec(spec: dict) -> ShardTransport:
    """Rebuild a transport from :meth:`ShardTransport.spec` output.

    The inverse the process execution engine uses in its workers: specs
    are small and picklable, transports need not be.
    """
    kind = spec.get("kind")
    if kind == LocalDirTransport.kind:
        return LocalDirTransport(spec["path"])
    if kind == ZipArchiveTransport.kind:
        return ZipArchiveTransport(spec["path"])
    if kind == FakeObjectStoreTransport.kind:
        return spec["transport"]
    if kind == PrefixTransport.kind:
        return PrefixTransport(transport_from_spec(spec["inner"]), spec["prefix"])
    if kind == "s3":
        from repro.events.transport_s3 import S3ObjectStoreTransport

        return S3ObjectStoreTransport.from_spec(spec)
    raise ValueError(f"unknown shard-transport spec kind {kind!r}")
