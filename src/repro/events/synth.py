"""Deterministic synthetic trace generation, at columnar speed.

The detector throughput benchmark needs a *valid*, million-event trace whose
findings are plentiful enough to exercise every detector but sparse enough
that materialising the finding events does not dominate the measurement.
Building such a trace one dataclass at a time would take longer than the
benchmark itself, so the generator synthesises the column arrays directly
with NumPy index arithmetic and bulk-ingests them through
:meth:`ColumnarTrace.from_arrays`.

The trace is a sequence of five-slot cycles over ``num_variables`` mapped
variables on one device::

    alloc · h2d · (kernel | second h2d) · d2h · delete

with fixed modular patterns (no RNG — the same ``num_events`` always yields
the same trace) choosing which cycles:

* reuse a pooled payload hash (duplicate transfers, every 11th cycle),
* copy the unmodified payload back (round trips, every 17th cycle),
* reuse a fixed ``(host address, size)`` mapping key (repeated
  allocations, every 97th cycle),
* replace their kernel with a second, overwriting h2d (unused transfers
  and unused allocations, every 23rd cycle and the kernel-free tail).
"""

from __future__ import annotations

import numpy as np

from repro.events.columnar import (
    CODE_ALLOC,
    CODE_DELETE,
    CODE_FROM_DEVICE,
    CODE_TARGET,
    CODE_TO_DEVICE,
    ColumnarTrace,
)

#: Events per cycle (four data ops plus either a kernel or a fifth data op).
EVENTS_PER_CYCLE = 5

_SLOT_DURATION = 1e-6
_ACTIVE_FRACTION = 0.6


def make_synthetic_columnar_trace(
    num_events: int,
    *,
    num_variables: int = 8,
    program_name: str = "synthetic-columnar",
) -> ColumnarTrace:
    """Generate a valid single-device trace with roughly ``num_events`` events.

    The result satisfies :func:`repro.events.validation.validate_trace` and
    produces non-empty findings for all five detectors.
    """
    cycles = max(num_events // EVENTS_PER_CYCLE, 1)
    i = np.arange(cycles, dtype=np.int64)
    var = i % num_variables
    host = 1  # one target device (0); OpenMP numbers the host after it

    tail = max(cycles // 64, 1)
    has_kernel = (i % 23 != 0) & (i < cycles - tail)

    # Payload hashes: mostly unique, every 11th cycle drawn from a 4-hash
    # pool (duplicate transfers); every 17th cycle the d2h carries the h2d's
    # hash back unmodified (round trips).
    h2d_hash = np.where(i % 11 == 0, 0x1000 + (i % 4), 0x0100_0000 + i)
    d2h_hash = np.where(i % 17 == 0, h2d_hash, 0x0900_0000 + i)
    extra_hash = 0x0700_0000 + i  # the overwriting second h2d, always unique

    # Mapping keys: mostly unique (host address and size vary per cycle);
    # every 97th cycle reuses its variable's fixed key (repeated allocations).
    repeated = i % 97 == 0
    host_addr = np.where(repeated, 0x0005_0000 + var * 0x40, 0x0090_0000 + i * 0x40)
    nbytes = np.where(repeated, 4096, 1024 + 8 * (i % 251))
    dev_addr = 0x00A0_0000 + i * 0x100  # unique per cycle: never live-reused

    slot_time = _SLOT_DURATION
    duration = _ACTIVE_FRACTION * slot_time

    def _slot(offset: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        seq = i * EVENTS_PER_CYCLE + offset
        start = seq * slot_time
        return seq, start, start + duration

    def _const(value: int) -> np.ndarray:
        return np.full(cycles, value, dtype=np.int64)

    # Data-op slots: alloc(0), h2d(1), optional second h2d(2), d2h(3), delete(4).
    second_h2d = ~has_kernel
    slot_specs = [
        # (slot, kind, src_dev, dest_dev, src_addr, dest_addr, nbytes, hash, mask)
        (0, CODE_ALLOC, _const(host), _const(0), host_addr, dev_addr, nbytes, None, None),
        (1, CODE_TO_DEVICE, _const(host), _const(0), host_addr, dev_addr, nbytes, h2d_hash, None),
        (2, CODE_TO_DEVICE, _const(host), _const(0), host_addr, dev_addr, nbytes, extra_hash, second_h2d),
        (3, CODE_FROM_DEVICE, _const(0), _const(host), dev_addr, host_addr, nbytes, d2h_hash, None),
        (4, CODE_DELETE, _const(host), _const(0), host_addr, dev_addr, nbytes, None, None),
    ]

    parts: dict[str, list[np.ndarray]] = {name: [] for name in (
        "seq", "kind", "src_device_num", "dest_device_num", "src_addr",
        "dest_addr", "nbytes", "start_time", "end_time", "content_hash",
        "has_content_hash",
    )}
    for slot, kind, src_dev, dest_dev, src_addr, dest_addr, size, payload, mask in slot_specs:
        seq, start, end = _slot(slot)
        keep = slice(None) if mask is None else mask
        n = cycles if mask is None else int(mask.sum())
        parts["seq"].append(seq[keep])
        parts["kind"].append(np.full(n, kind, dtype=np.int8))
        parts["src_device_num"].append(src_dev[keep])
        parts["dest_device_num"].append(dest_dev[keep])
        parts["src_addr"].append(src_addr[keep].astype(np.uint64))
        parts["dest_addr"].append(dest_addr[keep].astype(np.uint64))
        parts["nbytes"].append(size[keep])
        parts["start_time"].append(start[keep])
        parts["end_time"].append(end[keep])
        has_hash = payload is not None
        parts["content_hash"].append(
            payload[keep].astype(np.uint64) if has_hash else np.zeros(n, dtype=np.uint64)
        )
        parts["has_content_hash"].append(np.full(n, has_hash, dtype=np.bool_))

    data_ops = {name: np.concatenate(chunks) for name, chunks in parts.items()}
    order = np.argsort(data_ops["seq"], kind="stable")
    data_ops = {name: col[order] for name, col in data_ops.items()}

    k_seq, k_start, k_end = _slot(2)
    targets = {
        "seq": k_seq[has_kernel],
        "kind": np.full(int(has_kernel.sum()), CODE_TARGET, dtype=np.int8),
        "device_num": np.zeros(int(has_kernel.sum()), dtype=np.int32),
        "start_time": k_start[has_kernel],
        "end_time": k_end[has_kernel],
    }

    return ColumnarTrace.from_arrays(
        num_devices=1,
        program_name=program_name,
        total_runtime=cycles * EVENTS_PER_CYCLE * slot_time,
        data_ops=data_ops,
        targets=targets,
    )
