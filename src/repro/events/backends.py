"""The storage-backend registry behind :func:`load_trace`.

Each on-disk trace format is one :class:`TraceBackend`: a sniffer deciding
whether a path is in that format and a loader producing the corresponding
in-memory representation.  The built-in backends are registered at import
time —

====================  ==========================  ==========================
backend               sniff                       loads as
====================  ==========================  ==========================
``sharded``           directory with a manifest   ``ShardedTraceStore``
``sharded-zip``       zip archive holding a       ``ShardedTraceStore`` (over
                      store manifest member       a ``ZipArchiveTransport``)
``flat-columnar``     file with the ``ODPF``      ``ColumnarTrace`` (zero-copy
                      magic (a flat payload)      views over an mmap)
``columnar-binary``   any other zip archive       ``ColumnarTrace``
                      (``PK`` magic)
``json``              anything else               ``Trace``
====================  ==========================  ==========================

New formats (a database-backed store, a compressed archive of shards, …)
plug in through :func:`register_trace_backend` without touching the
sniffing logic of existing callers — ``load_trace`` tries backends in
registration order, most specific first.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List


@dataclass(frozen=True)
class TraceBackend:
    """One pluggable storage format."""

    name: str
    sniff: Callable[[Path], bool]
    load: Callable[[Path], object]


_BACKENDS: List[TraceBackend] = []


def register_trace_backend(backend: TraceBackend, *, front: bool = False) -> None:
    """Register a storage backend (``front=True`` to sniff before others)."""
    if any(existing.name == backend.name for existing in _BACKENDS):
        raise ValueError(f"a trace backend named {backend.name!r} is already registered")
    if front:
        _BACKENDS.insert(0, backend)
    else:
        _BACKENDS.append(backend)


def available_backends() -> list[str]:
    return [backend.name for backend in _BACKENDS]


def load_trace(path: str | Path):
    """Load a trace from disk with whichever backend recognises the path."""
    if isinstance(path, str) and path.startswith("s3://"):
        # Remote stores skip path sniffing: an s3 location is always a
        # sharded store (the only layout the transports publish).
        from repro.events.store import ShardedTraceStore
        from repro.events.transport import open_transport

        return ShardedTraceStore.open(open_transport(path))
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"{path}: no such trace")
    for backend in _BACKENDS:
        if backend.sniff(path):
            return backend.load(path)
    raise ValueError(f"{path}: no trace backend recognises this path")


# --------------------------------------------------------------------- #
# Built-in backends
# --------------------------------------------------------------------- #
def _sniff_sharded(path: Path) -> bool:
    from repro.events.store import ShardedTraceStore

    return path.is_dir() and ShardedTraceStore.is_store_dir(path)


def _load_sharded(path: Path):
    from repro.events.store import ShardedTraceStore

    return ShardedTraceStore.open(path)


def _sniff_sharded_zip(path: Path) -> bool:
    # A zip-archived store is also a zip archive, so this must sniff
    # before ``columnar-binary``: only a store carries a manifest member.
    from repro.events.transport import zip_contains_manifest

    return zip_contains_manifest(path)


def _load_sharded_zip(path: Path):
    from repro.events.store import ShardedTraceStore
    from repro.events.transport import ZipArchiveTransport

    return ShardedTraceStore.open(ZipArchiveTransport(path))


def _sniff_flat_columnar(path: Path) -> bool:
    from repro.events.columnar import FLAT_MAGIC

    if not path.is_file():
        return False
    with path.open("rb") as fh:
        return fh.read(len(FLAT_MAGIC)) == FLAT_MAGIC


def _load_flat_columnar(path: Path):
    from repro.events.columnar import ColumnarTrace

    return ColumnarTrace.load_flat(path)


def _sniff_columnar_binary(path: Path) -> bool:
    if not path.is_file():
        return False
    with path.open("rb") as fh:
        return fh.read(2) == b"PK"


def _load_columnar_binary(path: Path):
    from repro.events.columnar import ColumnarTrace

    return ColumnarTrace.load_binary(path)


def _sniff_json(path: Path) -> bool:
    return path.is_file()


def _load_json(path: Path):
    from repro.events.trace import Trace

    return Trace.load(path)


register_trace_backend(TraceBackend("sharded", _sniff_sharded, _load_sharded))
register_trace_backend(
    TraceBackend("sharded-zip", _sniff_sharded_zip, _load_sharded_zip)
)
register_trace_backend(
    TraceBackend("flat-columnar", _sniff_flat_columnar, _load_flat_columnar)
)
register_trace_backend(
    TraceBackend("columnar-binary", _sniff_columnar_binary, _load_columnar_binary)
)
register_trace_backend(TraceBackend("json", _sniff_json, _load_json))
