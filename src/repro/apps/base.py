"""Framework shared by all simulated benchmark applications."""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.omp.runtime import OffloadRuntime

#: A runnable program: a callable that drives an offload runtime.
Program = Callable[[OffloadRuntime], None]


class ProblemSize(enum.Enum):
    """The three input classes used throughout the evaluation (Table 5)."""

    SMALL = "small"
    MEDIUM = "medium"
    LARGE = "large"

    @classmethod
    def parse(cls, text: str) -> "ProblemSize":
        try:
            return cls(text.lower())
        except ValueError:
            raise ValueError(
                f"unknown problem size {text!r}; expected one of "
                f"{', '.join(s.value for s in cls)}"
            ) from None


class AppVariant(enum.Enum):
    """Application variants used in the evaluation."""

    BASELINE = "baseline"
    FIXED = "fixed"
    SYNTHETIC = "synthetic"

    @classmethod
    def parse(cls, text: str) -> "AppVariant":
        try:
            return cls(text.lower())
        except ValueError:
            raise ValueError(
                f"unknown variant {text!r}; expected one of "
                f"{', '.join(v.value for v in cls)}"
            ) from None


@dataclass(frozen=True)
class AppInfo:
    """Static description of an application (Table 5 row)."""

    name: str
    domain: str
    suite: str
    description: str
    inputs: dict[ProblemSize, str]


class BenchmarkApp(abc.ABC):
    """Base class for simulated benchmark applications.

    Subclasses implement :meth:`build_program` for the variants they support
    and describe their inputs through :meth:`info`.  The experiment harness
    only ever interacts with applications through this interface.
    """

    #: registry name, e.g. ``"bfs"``
    name: str = "abstract"
    #: application domain, e.g. ``"Graph Algorithms"`` (Table 5 column)
    domain: str = ""
    #: originating suite, e.g. ``"Rodinia"``
    suite: str = ""
    #: one-line description used in reports
    description: str = ""

    @abc.abstractmethod
    def parameters(self, size: ProblemSize) -> dict:
        """Problem parameters for a given input size (array sizes, iterations)."""

    @abc.abstractmethod
    def build_program(self, size: ProblemSize, variant: AppVariant) -> Program:
        """Return the runnable program for ``(size, variant)``.

        Raises :class:`ValueError` for unsupported variants.
        """

    # ------------------------------------------------------------------ #
    def supported_variants(self) -> tuple[AppVariant, ...]:
        """The variants this application implements (baseline always exists)."""
        supported = [AppVariant.BASELINE]
        for variant in (AppVariant.FIXED, AppVariant.SYNTHETIC):
            try:
                self.build_program(ProblemSize.SMALL, variant)
            except ValueError:
                continue
            supported.append(variant)
        return tuple(supported)

    def supports_variant(self, variant: AppVariant) -> bool:
        return variant in self.supported_variants()

    def input_description(self, size: ProblemSize) -> str:
        """Human-readable input string (the Table 5 cell)."""
        params = self.parameters(size)
        return " ".join(f"{key}={value}" for key, value in params.items())

    def info(self) -> AppInfo:
        return AppInfo(
            name=self.name,
            domain=self.domain,
            suite=self.suite,
            description=self.description,
            inputs={size: self.input_description(size) for size in ProblemSize},
        )

    def program_name(self, size: ProblemSize, variant: AppVariant) -> str:
        suffix = "" if variant is AppVariant.BASELINE else f" ({variant.value})"
        return f"{self.name}{suffix} [{size.value}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


def unsupported_variant(app_name: str, variant: AppVariant) -> ValueError:
    """Consistent error for variants an application does not provide."""
    return ValueError(f"{app_name} does not provide a {variant.value!r} variant")
