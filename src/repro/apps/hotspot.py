"""Rodinia ``hotspot`` (thermal simulation), OpenMP offload version.

The simulation maps the power grid and two temperature buffers over the
whole run; the only inefficiency in the shipped code is a defensive
``target update to(power)`` issued before each of the two pyramid passes
even though the power grid never changes, producing the two duplicate data
transfers reported in Table 1.  The synthetic variant injects the issue mix
listed in the "Applications With Injected Synthetic Issues" rows.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppVariant, BenchmarkApp, ProblemSize, Program, unsupported_variant
from repro.apps import synthetic
from repro.omp.mapping import from_, to
from repro.omp.runtime import OffloadRuntime
from repro.util.rng import make_rng


class HotspotApp(BenchmarkApp):
    """Iterative 5-point stencil on a 2-D temperature grid."""

    name = "hotspot"
    domain = "Thermal Simulation"
    suite = "Rodinia"
    description = "Transient thermal simulation with ping-pong temperature grids."

    def parameters(self, size: ProblemSize) -> dict:
        rows = {
            ProblemSize.SMALL: 64,
            ProblemSize.MEDIUM: 512,
            ProblemSize.LARGE: 1024,
        }[size]
        return {"rows": rows, "cols": rows, "pyramid_height": 2, "sim_steps": 4}

    def build_program(self, size: ProblemSize, variant: AppVariant) -> Program:
        params = self.parameters(size)
        if variant is AppVariant.BASELINE:
            return self._build(params, inject=False)
        if variant is AppVariant.SYNTHETIC:
            return self._build(params, inject=True)
        raise unsupported_variant(self.name, variant)

    # ------------------------------------------------------------------ #
    def _build(self, params: dict, *, inject: bool) -> Program:
        rows, cols = params["rows"], params["cols"]
        sim_steps = params["sim_steps"]

        def program(rt: OffloadRuntime) -> None:
            rng = make_rng(self.name, rows)
            temp = rng.random((rows, cols)) * 30.0 + 320.0
            power = rng.random((rows, cols)) * 0.5
            temp_dst = np.zeros_like(temp)
            scratch = np.zeros(rows, dtype=np.float64)
            rt.host_compute(nbytes=temp.nbytes * 2)  # read input grids

            kernel_time = rows * cols * 2.0e-9

            def stencil(dev) -> None:
                src = dev[temp]
                dst = dev[temp_dst]
                p = dev[power]
                dst[1:-1, 1:-1] = src[1:-1, 1:-1] + 0.1 * (
                    src[:-2, 1:-1] + src[2:, 1:-1] + src[1:-1, :-2] + src[1:-1, 2:]
                    - 4.0 * src[1:-1, 1:-1]
                ) + 0.05 * p[1:-1, 1:-1]
                src[...] = dst

            with rt.target_data(
                to(power, name="power"),
                to(temp, name="temp_src"),
                from_(temp_dst, name="temp_dst"),
            ):
                for step in range(sim_steps):
                    # The shipped code refreshes the (unchanged) power grid
                    # before the second and third pyramid passes "to be safe".
                    if 1 <= step <= 2:
                        rt.target_update(to=[power], name="defensive_power_refresh")
                    rt.target(
                        reads=[temp, power],
                        writes=[temp, temp_dst],
                        kernel=stencil,
                        kernel_time=kernel_time,
                        name="hotspot_kernel",
                    )
                    if inject and step == sim_steps - 1:
                        # Synthetic issues around the key kernel (Table 1 syn row).
                        synthetic.inject_duplicate_transfers(rt, power, 10)
                        synthetic.inject_round_trips(rt, temp_dst, 4)
                        synthetic.inject_repeated_allocations(rt, scratch, 11)
            rt.host_compute(nbytes=temp_dst.nbytes)  # write output

        return program
