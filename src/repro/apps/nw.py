"""Rodinia ``nw`` (Needleman-Wunsch sequence alignment), OpenMP offload version.

The shipped offload port maps the reference matrix and the itemsets matrix
once around the wave-front kernels, so the baseline reports no issues
(Table 1).  The synthetic variant injects the small issue mix of the
"nw (syn)" row.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppVariant, BenchmarkApp, ProblemSize, Program, unsupported_variant
from repro.apps import synthetic
from repro.omp.mapping import to, tofrom
from repro.omp.runtime import OffloadRuntime
from repro.util.rng import make_rng


class NWApp(BenchmarkApp):
    """Wave-front dynamic programming over an (n+1) x (n+1) score matrix."""

    name = "nw"
    domain = "Bioinformatics"
    suite = "Rodinia"
    description = "Needleman-Wunsch global sequence alignment (wave-front kernels)."

    _BLOCK = 16

    def parameters(self, size: ProblemSize) -> dict:
        n = {
            ProblemSize.SMALL: 512,
            ProblemSize.MEDIUM: 1024,
            ProblemSize.LARGE: 2048,
        }[size]
        return {"max_rows": n, "penalty": 10, "block_size": self._BLOCK}

    def build_program(self, size: ProblemSize, variant: AppVariant) -> Program:
        params = self.parameters(size)
        if variant is AppVariant.BASELINE:
            return self._build(params, inject=False)
        if variant is AppVariant.SYNTHETIC:
            return self._build(params, inject=True)
        raise unsupported_variant(self.name, variant)

    def _build(self, params: dict, *, inject: bool) -> Program:
        n = params["max_rows"]
        block = params["block_size"]
        penalty = params["penalty"]
        blocks = n // block

        def program(rt: OffloadRuntime) -> None:
            rng = make_rng(self.name, n)
            reference = rng.integers(-4, 10, size=(n, n)).astype(np.int32)
            itemsets = np.zeros((n, n), dtype=np.int32)
            itemsets[0, :] = -penalty * np.arange(n)
            itemsets[:, 0] = -penalty * np.arange(n)
            scratch = rng.random(block * block)
            rt.host_compute(nbytes=reference.nbytes)

            kernel_time = block * n * 1.0e-9

            def wavefront(dev, diag: int, forward: bool) -> None:
                score = dev[itemsets]
                ref = dev[reference]
                # Simplified wave-front relaxation over one block diagonal:
                # accumulate the best predecessor score plus the match bonus.
                lo = max(1, diag * block)
                hi = min(n, lo + block)
                score[lo:hi, lo:hi] = np.maximum(
                    score[lo - 1 : hi - 1, lo - 1 : hi - 1] + ref[lo:hi, lo:hi],
                    score[lo:hi, lo:hi] - penalty,
                )

            with rt.target_data(
                to(reference, name="reference"),
                tofrom(itemsets, name="input_itemsets"),
            ):
                # Forward pass over the upper-left block diagonals.
                for diag in range(blocks):
                    rt.target(
                        reads=[reference, itemsets],
                        writes=[itemsets],
                        kernel=lambda dev, d=diag: wavefront(dev, d, True),
                        kernel_time=kernel_time,
                        name="nw_kernel_1",
                    )
                # Backward pass over the lower-right block diagonals.
                for diag in range(blocks - 1, -1, -1):
                    rt.target(
                        reads=[reference, itemsets],
                        writes=[itemsets],
                        kernel=lambda dev, d=diag: wavefront(dev, d, False),
                        kernel_time=kernel_time,
                        name="nw_kernel_2",
                    )
                if inject:
                    # "nw (syn)" row of Table 1: DD=8, RA=4, UA=1, UT=3.
                    synthetic.inject_duplicate_transfers(rt, reference, 8)
                    synthetic.inject_repeated_allocations(rt, scratch, 5)
                    synthetic.inject_unused_allocations(rt, scratch, 1)
                    synthetic.inject_unused_transfers(rt, itemsets, 3)
            rt.host_compute(nbytes=itemsets.nbytes)

        return program
