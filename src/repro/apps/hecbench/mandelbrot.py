"""HeCBench ``mandelbrot-omp``: Mandelbrot-set escape-time rendering.

The benchmark renders the set repeatedly while re-mapping a small
colour-table on every launch (DD + RA) and allocates a diagnostics buffer
whose lifetime never overlaps a kernel (UA).  The output tile ``b`` is
mapped ``alloc`` and only *partially* written by the kernel (interior pixels
that never escape keep their default), which is what makes the
Arbalest-style checker conservatively report use-of-uninitialised-memory for
``b[0]`` — a false positive, since the untouched elements are never read.
The fixed variant hoists the colour table and drops the dead allocation; the
paper measures 3.974 s → 3.950 s.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppVariant, BenchmarkApp, ProblemSize, Program, unsupported_variant
from repro.omp.mapping import alloc, release, to
from repro.omp.runtime import OffloadRuntime
from repro.util.rng import make_rng


class MandelbrotApp(BenchmarkApp):
    """Escape-time fractal rendering with a per-launch colour table."""

    name = "mandelbrot-omp"
    domain = "Computer Vision"
    suite = "HeCBench"
    description = "Mandelbrot rendering with a re-mapped colour table per launch."

    def parameters(self, size: ProblemSize) -> dict:
        side = {ProblemSize.SMALL: 128, ProblemSize.MEDIUM: 256, ProblemSize.LARGE: 512}[size]
        return {"width": side, "height": side, "launches": 50, "max_iterations": 64}

    def build_program(self, size: ProblemSize, variant: AppVariant) -> Program:
        params = self.parameters(size)
        if variant is AppVariant.BASELINE:
            return self._build(params, fixed=False)
        if variant is AppVariant.FIXED:
            return self._build(params, fixed=True)
        raise unsupported_variant(self.name, variant)

    def _build(self, params: dict, *, fixed: bool) -> Program:
        side = params["width"]
        launches = params["launches"]
        max_iter = params["max_iterations"]

        def program(rt: OffloadRuntime) -> None:
            rng = make_rng(self.name, side)
            colors = (rng.random(256) * 255).astype(np.float32)  # colour table
            b = np.zeros((side, side), dtype=np.float32)          # output tile
            diagnostics = np.zeros(1024, dtype=np.float64)
            rt.host_compute(nbytes=b.nbytes)

            kernel_time = side * side * max_iter * 1.2e-9 + 2e-5

            def render(dev, frame: int) -> None:
                tile = dev[b]
                table = dev[colors]
                # Only pixels outside the set are written (partial write).
                ys, xs = np.meshgrid(np.arange(1, side), np.arange(1, side), indexing="ij")
                escape = ((xs * 13 + ys * 7 + frame) % max_iter).astype(np.float32)
                tile[1:, 1:] = table[escape.astype(np.int64) % 256]

            if fixed:
                with rt.target_data(
                    to(colors, name="colors"),
                    alloc(b, name="b"),
                ):
                    for frame in range(launches):
                        rt.target(reads=[colors], partial_writes=[b],
                                  kernel=lambda dev, f=frame: render(dev, f),
                                  kernel_time=kernel_time, name="mandelbrot_kernel")
                    rt.target_update(from_=[b], name="readback")
            else:
                with rt.target_data(alloc(b, name="b")):
                    for frame in range(launches):
                        # The colour table is re-mapped around every launch.
                        rt.target(
                            maps=[to(colors, name="colors")],
                            reads=[colors],
                            partial_writes=[b],
                            kernel=lambda dev, f=frame: render(dev, f),
                            kernel_time=kernel_time,
                            name="mandelbrot_kernel",
                        )
                    rt.target_update(from_=[b], name="readback")
                    # Dead diagnostics buffer: allocated after the last kernel,
                    # never used (the UA finding).
                    rt.target_enter_data(alloc(diagnostics, name="diagnostics"))
                    rt.target_exit_data(release(diagnostics))
            rt.host_compute(nbytes=b.nbytes)

        return program
