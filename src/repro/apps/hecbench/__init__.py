"""HeCBench programs used for the Arbalest-Vec comparison (Section 7.7).

Five OpenMP offload programs from HeCBench: ``resize-omp``,
``mandelbrot-omp``, ``accuracy-omp``, ``lif-omp`` and ``bspline-vgh-omp``.
They were chosen because their kernels are representative of computer
vision, machine learning and simulation workloads; here each reproduces the
data-mapping behaviour that made OMPDataPerf and Arbalest-Vec report the
issue classes shown in Table 2, and — for the programs the paper fixes —
provides the fixed variant whose runtime Table 3 reports.
"""

from repro.apps.hecbench.resize import ResizeApp
from repro.apps.hecbench.mandelbrot import MandelbrotApp
from repro.apps.hecbench.accuracy import AccuracyApp
from repro.apps.hecbench.lif import LIFApp
from repro.apps.hecbench.bspline import BSplineVGHApp

__all__ = ["ResizeApp", "MandelbrotApp", "AccuracyApp", "LIFApp", "BSplineVGHApp"]
