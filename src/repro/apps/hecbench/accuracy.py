"""HeCBench ``accuracy-omp``: top-1 classification accuracy computation.

The kernel counts how many predicted class scores match the labels.  The
shipped mapping sends the label vector twice (once explicitly, once through
a defensive refresh — DD), allocates a per-class histogram that no kernel
ever uses (UA), and stages a normalisation table that is overwritten before
the kernel can read it (UT).  All three issues involve tiny buffers, which
is why fixing them barely moves the runtime (11.644 s → 11.640 s in
Table 3).  The kernel fully writes its output counter, so the Arbalest-style
checker reports nothing.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppVariant, BenchmarkApp, ProblemSize, Program, unsupported_variant
from repro.omp.mapping import alloc, release, to, tofrom
from repro.omp.runtime import OffloadRuntime
from repro.util.rng import make_rng


class AccuracyApp(BenchmarkApp):
    """Top-1 accuracy over a batch of class-score vectors."""

    name = "accuracy-omp"
    domain = "Machine Learning"
    suite = "HeCBench"
    description = "Classification accuracy kernel over predicted class scores."

    _CLASSES = 100

    def parameters(self, size: ProblemSize) -> dict:
        batch = {
            ProblemSize.SMALL: 2048,
            ProblemSize.MEDIUM: 8192,
            ProblemSize.LARGE: 32768,
        }[size]
        return {"batch": batch, "classes": self._CLASSES, "repetitions": 100}

    def build_program(self, size: ProblemSize, variant: AppVariant) -> Program:
        params = self.parameters(size)
        if variant is AppVariant.BASELINE:
            return self._build(params, fixed=False)
        if variant is AppVariant.FIXED:
            return self._build(params, fixed=True)
        raise unsupported_variant(self.name, variant)

    def _build(self, params: dict, *, fixed: bool) -> Program:
        batch = params["batch"]
        classes = params["classes"]
        reps = params["repetitions"]

        def program(rt: OffloadRuntime) -> None:
            rng = make_rng(self.name, batch)
            scores = rng.random((batch, classes)).astype(np.float32)
            labels = rng.integers(0, classes, size=batch).astype(np.int32)
            correct = np.zeros(1, dtype=np.int64)
            histogram = np.zeros(classes, dtype=np.int64)
            norms = rng.random(classes).astype(np.float32)
            rt.host_compute(nbytes=scores.nbytes)

            kernel_time = batch * classes * 1.0e-10 + 2e-5

            def accuracy_kernel(dev) -> None:
                s = dev[scores]
                l = dev[labels]
                dev[correct][0] = int((s.argmax(axis=1) == l).sum())

            with rt.target_data(
                to(scores, name="scores"),
                to(labels, name="labels"),
                tofrom(correct, name="correct"),
            ):
                if not fixed:
                    # Defensive refresh of the (unchanged) labels: DD.
                    rt.target_update(to=[labels], name="defensive_label_refresh")
                    # Normalisation table staged twice before any kernel can
                    # read the first copy: the first transfer is unused (UT).
                    rt.target_enter_data(to(norms, name="norms"))
                    norms[0] += 1.0
                    rt.target_update(to=[norms], name="restage_norms")
                for _ in range(reps):
                    rt.target(reads=[scores, labels, norms] if not fixed else [scores, labels],
                              writes=[correct],
                              kernel=accuracy_kernel, kernel_time=kernel_time,
                              name="accuracy_kernel")
                if not fixed:
                    rt.target_exit_data(release(norms))
                    # Per-class histogram allocated after the last kernel and
                    # never used (UA).
                    rt.target_enter_data(alloc(histogram, name="histogram"))
                    rt.target_exit_data(release(histogram))
            rt.host_compute(nbytes=correct.nbytes)

        return program
