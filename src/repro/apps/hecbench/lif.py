"""HeCBench ``lif-omp``: leaky integrate-and-fire neuron simulation.

The mapping in the shipped benchmark is already tight — the membrane state
stays resident across timesteps and only the final spike train is copied
back — so OMPDataPerf reports nothing (Table 2).  The spike-output buffer is
mapped ``alloc`` and written only for the neurons that actually fire, which
is what makes the Arbalest-style checker conservatively report
use-of-uninitialised-memory for ``spikes[0]`` — a false positive the paper
calls out, since untouched entries are never read.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppVariant, BenchmarkApp, ProblemSize, Program, unsupported_variant
from repro.omp.mapping import alloc, to, tofrom
from repro.omp.runtime import OffloadRuntime
from repro.util.rng import make_rng


class LIFApp(BenchmarkApp):
    """Leaky integrate-and-fire dynamics over a population of neurons."""

    name = "lif-omp"
    domain = "Simulation"
    suite = "HeCBench"
    description = "LIF neuron time-stepping with resident membrane state."

    def parameters(self, size: ProblemSize) -> dict:
        neurons = {
            ProblemSize.SMALL: 4096,
            ProblemSize.MEDIUM: 16384,
            ProblemSize.LARGE: 65536,
        }[size]
        return {"neurons": neurons, "timesteps": 200}

    def build_program(self, size: ProblemSize, variant: AppVariant) -> Program:
        params = self.parameters(size)
        if variant is AppVariant.BASELINE:
            return self._build(params)
        raise unsupported_variant(self.name, variant)

    def _build(self, params: dict) -> Program:
        neurons = params["neurons"]
        timesteps = params["timesteps"]

        def program(rt: OffloadRuntime) -> None:
            rng = make_rng(self.name, neurons)
            current = rng.random(neurons).astype(np.float32)
            voltage = np.full(neurons, -65.0, dtype=np.float32)
            spikes = np.zeros((timesteps, 8), dtype=np.int32)  # sparse spike log
            rt.host_compute(nbytes=current.nbytes)

            kernel_time = neurons * 2.0e-9 + 1e-5

            def step_kernel(dev, t: int) -> None:
                v = dev[voltage]
                v += 0.5 * (dev[current] - 0.04 * (v + 65.0))
                fired = np.nonzero(v > -50.0)[0][:8]
                if fired.size:
                    dev[spikes][t, : fired.size] = fired.astype(np.int32)
                    v[fired] = -65.0

            with rt.target_data(
                to(current, name="input_current"),
                tofrom(voltage, name="membrane_voltage"),
                alloc(spikes, name="spikes"),
            ):
                for t in range(timesteps):
                    rt.target(reads=[current, voltage],
                              writes=[voltage],
                              partial_writes=[spikes],
                              kernel=lambda dev, ts=t: step_kernel(dev, ts),
                              kernel_time=kernel_time, name="lif_step")
                rt.target_update(from_=[spikes], name="spike_readback")
            rt.host_compute(nbytes=spikes.nbytes)

        return program
