"""HeCBench ``resize-omp``: bilinear image down-scaling.

The benchmark repeats the resize kernel many times over the same input
image; the shipped mapping re-transfers the (unchanged) input and
re-allocates both buffers on every repetition, which OMPDataPerf reports as
DD + RA (Table 2).  The output buffer is fully written by the kernel, so the
Arbalest-style checker has nothing to report (N/A).  The fixed variant maps
the image once around the repetition loop; the paper measures an
11.604 s → 11.065 s improvement from that change.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppVariant, BenchmarkApp, ProblemSize, Program, unsupported_variant
from repro.omp.mapping import from_, to
from repro.omp.runtime import OffloadRuntime
from repro.util.rng import make_rng


class ResizeApp(BenchmarkApp):
    """Repeated bilinear resize of one image."""

    name = "resize-omp"
    domain = "Computer Vision"
    suite = "HeCBench"
    description = "Bilinear image resize repeated over a fixed input image."

    def parameters(self, size: ProblemSize) -> dict:
        side = {ProblemSize.SMALL: 256, ProblemSize.MEDIUM: 512, ProblemSize.LARGE: 1024}[size]
        return {"width": side, "height": side, "repetitions": 100, "scale": 2}

    def build_program(self, size: ProblemSize, variant: AppVariant) -> Program:
        params = self.parameters(size)
        if variant is AppVariant.BASELINE:
            return self._build(params, fixed=False)
        if variant is AppVariant.FIXED:
            return self._build(params, fixed=True)
        raise unsupported_variant(self.name, variant)

    def _build(self, params: dict, *, fixed: bool) -> Program:
        width, height = params["width"], params["height"]
        reps = params["repetitions"]
        scale = params["scale"]

        def program(rt: OffloadRuntime) -> None:
            rng = make_rng(self.name, width)
            image = (rng.random((height, width)) * 255).astype(np.float32)
            out = np.zeros((height // scale, width // scale), dtype=np.float32)
            rt.host_compute(nbytes=image.nbytes)

            kernel_time = out.size * 6.0e-8 + 2e-5

            def resize_kernel(dev) -> None:
                src = dev[image]
                dst = dev[out]
                dst[...] = src[::scale, ::scale] * 0.25 + src[1::scale, ::scale] * 0.25 \
                    + src[::scale, 1::scale] * 0.25 + src[1::scale, 1::scale] * 0.25

            if fixed:
                with rt.target_data(to(image, name="input"), from_(out, name="output")):
                    for _ in range(reps):
                        rt.target(reads=[image], writes=[out],
                                  kernel=resize_kernel, kernel_time=kernel_time,
                                  name="resize_kernel")
            else:
                # Shipped mapping: everything re-mapped on every repetition.
                for _ in range(reps):
                    rt.target(
                        maps=[to(image, name="input"), from_(out, name="output")],
                        reads=[image],
                        writes=[out],
                        kernel=resize_kernel,
                        kernel_time=kernel_time,
                        name="resize_kernel",
                    )
            rt.host_compute(nbytes=out.nbytes)

        return program
