"""HeCBench ``bspline-vgh-omp``: B-spline value/gradient/hessian evaluation.

The motivating example of Section 7.7.  The shipped program keeps nine small
coefficient arrays mapped ``alloc`` over a host-side walker loop and issues a
``target update to(...)`` for each of them on *every* iteration (Listing 3,
"before").  Several of those arrays are re-initialised to the same values
every iteration, so the updates are duplicate transfers; a staging update
issued after the final kernel is an unused transfer; and a results-summary
buffer allocated after the last kernel is an unused allocation.  The output
arrays (``walkers_vals``/``grads``/``hess``) are only partially written by
the kernel, which is what drives the Arbalest-style checker's UUM false
positives.

The fixed variant applies the paper's fix: the arrays are enlarged to hold
all ``WSIZE`` per-iteration initialisations and copied to the device once
before the loop ("after" in Listing 3), reducing the number of
copy-to-device calls by ~99 % at the cost of a modest amount of extra device
memory.  The paper measures a 14 % speedup (6.736 s → 5.899 s).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppVariant, BenchmarkApp, ProblemSize, Program, unsupported_variant
from repro.omp.mapping import alloc, from_, release, to
from repro.omp.runtime import OffloadRuntime
from repro.util.rng import make_rng


class BSplineVGHApp(BenchmarkApp):
    """Spline value/gradient/hessian evaluation over a loop of walkers."""

    name = "bspline-vgh-omp"
    domain = "Simulation"
    suite = "HeCBench"
    description = "QMC-style B-spline evaluation with per-walker coefficient staging."

    #: the nine per-walker coefficient arrays of the original program
    _COEFF_NAMES = ("a", "b", "c", "da", "db", "dc", "d2a", "d2b", "d2c")
    #: elements per coefficient array per walker (matches the 4-wide arrays)
    _COEFF_LEN = 4

    def parameters(self, size: ProblemSize) -> dict:
        walkers = {ProblemSize.SMALL: 50, ProblemSize.MEDIUM: 100, ProblemSize.LARGE: 200}[size]
        points = {ProblemSize.SMALL: 24576, ProblemSize.MEDIUM: 49152, ProblemSize.LARGE: 98304}[size]
        return {"walkers": walkers, "grid_points": points}

    def build_program(self, size: ProblemSize, variant: AppVariant) -> Program:
        params = self.parameters(size)
        if variant is AppVariant.BASELINE:
            return self._baseline(params)
        if variant is AppVariant.FIXED:
            return self._fixed(params)
        raise unsupported_variant(self.name, variant)

    # ------------------------------------------------------------------ #
    def _make_arrays(self, walkers: int, points: int):
        rng = make_rng(self.name, walkers, points)
        base = rng.random((len(self._COEFF_NAMES), self._COEFF_LEN))
        vals = np.zeros(points, dtype=np.float64)
        grads = np.zeros((points, 3), dtype=np.float64)
        hess = np.zeros((points, 6), dtype=np.float64)
        return base, vals, grads, hess

    def _init_coeffs(self, base: np.ndarray, walker: int) -> np.ndarray:
        """Per-walker deterministic initialisation of the nine arrays.

        The derivative arrays (``da`` .. ``d2c``) depend only on the base
        coefficients, not on the walker index, so their re-initialisation
        produces the same bytes every iteration — the duplicate transfers
        OMPDataPerf reports.
        """
        coeffs = np.empty_like(base)
        coeffs[:3] = base[:3] * (1.0 + 0.01 * walker)      # a, b, c change per walker
        coeffs[3:] = base[3:] * 2.0                          # derivatives do not
        return coeffs

    def _baseline(self, params: dict) -> Program:
        walkers = params["walkers"]
        points = params["grid_points"]

        def program(rt: OffloadRuntime) -> None:
            base, vals, grads, hess = self._make_arrays(walkers, points)
            coeff_arrays = {name: np.zeros(self._COEFF_LEN) for name in self._COEFF_NAMES}
            summary = np.zeros(64, dtype=np.float64)
            rt.host_compute(nbytes=points * 8)

            kernel_time = points * 1.4e-8 + 2e-5

            def vgh_kernel(dev, walker: int) -> None:
                a = dev[coeff_arrays["a"]]
                lo = (walker * 7) % max(points - 8, 1)
                dev[vals][lo : lo + 4] = a
                dev[grads][lo : lo + 4, 0] = a * 0.5
                dev[hess][lo : lo + 4, 0] = a * 0.25

            data_maps = [alloc(arr, name=name) for name, arr in coeff_arrays.items()]
            data_maps += [
                from_(vals, name="walkers_vals"),
                from_(grads, name="walkers_grads"),
                from_(hess, name="walkers_hess"),
            ]
            with rt.target_data(*data_maps):
                for walker in range(walkers):
                    coeffs = self._init_coeffs(base, walker)
                    for i, name in enumerate(self._COEFF_NAMES):
                        coeff_arrays[name][:] = coeffs[i]
                    rt.host_compute(nbytes=1024)
                    # Listing 3 "before": update every coefficient array to
                    # the device on every walker iteration.
                    rt.target_update(to=list(coeff_arrays.values()), name="coeff_update")
                    rt.target(
                        reads=list(coeff_arrays.values()),
                        partial_writes=[vals, grads, hess],
                        kernel=lambda dev, w=walker: vgh_kernel(dev, w),
                        kernel_time=kernel_time,
                        name="bspline_vgh_kernel",
                    )
                # A final staging update issued after the last kernel (the UT
                # finding) and a summary buffer allocated too late to be used
                # (the UA finding).
                rt.target_update(to=[coeff_arrays["a"]], name="late_staging")
                rt.target_enter_data(alloc(summary, name="summary"))
                rt.target_exit_data(release(summary))
            rt.host_compute(nbytes=vals.nbytes)

        return program

    def _fixed(self, params: dict) -> Program:
        walkers = params["walkers"]
        points = params["grid_points"]

        def program(rt: OffloadRuntime) -> None:
            base, vals, grads, hess = self._make_arrays(walkers, points)
            # Listing 3 "after": one wide array per coefficient holding every
            # walker's initialisation, copied to the device once.
            wide = {
                name: np.zeros(self._COEFF_LEN * walkers) for name in self._COEFF_NAMES
            }
            for walker in range(walkers):
                coeffs = self._init_coeffs(base, walker)
                for i, name in enumerate(self._COEFF_NAMES):
                    wide[name][walker * self._COEFF_LEN : (walker + 1) * self._COEFF_LEN] = coeffs[i]
            rt.host_compute(nbytes=1024 * walkers)

            kernel_time = points * 1.4e-8 + 2e-5

            def vgh_kernel(dev, walker: int) -> None:
                a = dev[wide["a"]][walker * self._COEFF_LEN : (walker + 1) * self._COEFF_LEN]
                lo = (walker * 7) % max(points - 8, 1)
                dev[vals][lo : lo + 4] = a
                dev[grads][lo : lo + 4, 0] = a * 0.5
                dev[hess][lo : lo + 4, 0] = a * 0.25

            data_maps = [to(arr, name=name) for name, arr in wide.items()]
            data_maps += [
                from_(vals, name="walkers_vals"),
                from_(grads, name="walkers_grads"),
                from_(hess, name="walkers_hess"),
            ]
            with rt.target_data(*data_maps):
                for walker in range(walkers):
                    rt.target(
                        reads=list(wide.values()),
                        partial_writes=[vals, grads, hess],
                        kernel=lambda dev, w=walker: vgh_kernel(dev, w),
                        kernel_time=kernel_time,
                        name="bspline_vgh_kernel",
                    )
            rt.host_compute(nbytes=vals.nbytes)

        return program
