"""Simulated benchmark applications.

Python ports of the data-mapping structure of the applications used in the
paper's evaluation (Section 7.2 and Table 5): four Rodinia benchmarks (bfs,
hotspot, lud, nw), babelstream, and five HPC proxy apps (minife, minifmm,
rsbench, tealeaf, xsbench), plus the five HeCBench programs used for the
Arbalest-Vec comparison (Section 7.7).

Each application implements the *data movement* of the original code — which
arrays are mapped where, when, how often, with which map types — against the
offload runtime simulator, together with a scaled-down numpy version of the
computational kernels so that device-side data genuinely changes (or does
not) the way it would in the original program.  Every application provides
up to three variants:

``baseline``
    The mapping structure of the published benchmark, including whatever
    inefficiencies it ships with.
``fixed``
    The mapping structure after applying the fixes described in Sections
    7.5 and 7.7 (only for the applications the paper fixes).
``synthetic``
    The baseline with artificial inefficiencies injected around key kernels
    (only for the applications the paper lists under "Applications With
    Injected Synthetic Issues").
"""

from repro.apps.base import AppVariant, BenchmarkApp, ProblemSize
from repro.apps.registry import (
    EVALUATION_APP_NAMES,
    HECBENCH_APP_NAMES,
    all_apps,
    evaluation_apps,
    get_app,
    hecbench_apps,
)

__all__ = [
    "AppVariant",
    "BenchmarkApp",
    "ProblemSize",
    "EVALUATION_APP_NAMES",
    "HECBENCH_APP_NAMES",
    "all_apps",
    "evaluation_apps",
    "get_app",
    "hecbench_apps",
]
