"""UK-MAC ``tealeaf``: a heat-conduction mini-app (iterative sparse solver).

The offload port keeps the field arrays resident, but every inner CG
iteration initialises two reduction scalars on the host and maps them
``tofrom`` around the reduction kernels.  Each of those mappings allocates
and deletes device storage (RA) and ships the same 8-byte zero to the device
(DD); Section 7.5 notes this is "usually the fastest way to initialise
reduction variables with current OpenMP features", which is why there is no
fixed variant.  Once per outer timestep the temperature field is copied out
for a host-side energy check and copied back unmodified, producing one
round trip per timestep boundary.

The synthetic variant additionally injects the very large DD/RT mix of the
"tealeaf (syn)" row of Table 1 around the solver kernels.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppVariant, BenchmarkApp, ProblemSize, Program, unsupported_variant
from repro.apps import synthetic
from repro.omp.mapping import to, tofrom
from repro.omp.runtime import OffloadRuntime
from repro.util.rng import make_rng


class TeaLeafApp(BenchmarkApp):
    """2-D implicit heat conduction solved with a CG iteration."""

    name = "tealeaf"
    domain = "High Energy Physics"
    suite = "UK-MAC"
    description = "Linear heat-conduction solver with per-iteration host-initialised reductions."

    def parameters(self, size: ProblemSize) -> dict:
        grid = {ProblemSize.SMALL: 32, ProblemSize.MEDIUM: 64, ProblemSize.LARGE: 96}[size]
        outer = {ProblemSize.SMALL: 6, ProblemSize.MEDIUM: 12, ProblemSize.LARGE: 12}[size]
        total_inner = {
            ProblemSize.SMALL: 600,
            ProblemSize.MEDIUM: 2354,
            ProblemSize.LARGE: 4708,
        }[size]
        return {"grid": grid, "outer_steps": outer, "total_inner_iterations": total_inner}

    def build_program(self, size: ProblemSize, variant: AppVariant) -> Program:
        params = self.parameters(size)
        if variant is AppVariant.BASELINE:
            return self._build(params, size, inject=False)
        if variant is AppVariant.SYNTHETIC:
            return self._build(params, size, inject=True)
        raise unsupported_variant(self.name, variant)

    def _synthetic_plan(self, size: ProblemSize) -> dict:
        scale = {ProblemSize.SMALL: 0.25, ProblemSize.MEDIUM: 1.0, ProblemSize.LARGE: 1.5}[size]
        return {"duplicates": int(12688 * scale), "round_trips": int(25603 * scale)}

    # ------------------------------------------------------------------ #
    def _build(self, params: dict, size, *, inject: bool) -> Program:
        grid = params["grid"]
        outer_steps = params["outer_steps"]
        total_inner = params["total_inner_iterations"]

        def program(rt: OffloadRuntime) -> None:
            rng = make_rng(self.name, grid, total_inner)
            u = rng.random((grid, grid)) + 1.0          # temperature
            u0 = np.array(u)                             # state at step start
            kx = rng.random((grid, grid)) * 0.1 + 1.0
            ky = rng.random((grid, grid)) * 0.1 + 1.0
            # Work fields: all zero-initialised, identical length (the source
            # of the setup-time duplicate receipts).
            p = np.zeros((grid, grid))
            r = np.zeros((grid, grid))
            w = np.zeros((grid, grid))
            z = np.zeros((grid, grid))
            sd = np.zeros((grid, grid))
            mi = np.zeros((grid, grid))
            # Per-iteration reduction scalars (host-initialised every time).
            rro = np.zeros(1)
            pw = np.zeros(1)
            # Small exchange buffer bounced by the synthetic variant.
            halo = rng.random(64)
            rt.host_compute(nbytes=u.nbytes * 4)

            kernel_time = grid * grid * 1.5e-9 + 4e-6
            # Split the inner iterations as evenly as possible over the outer
            # timesteps while preserving the configured total.
            base, extra = divmod(total_inner, outer_steps)
            inner_counts = [base + (1 if step < extra else 0) for step in range(outer_steps)]
            plan = self._synthetic_plan(size) if inject else None

            def cg_init_kernel(dev) -> None:
                dev[r][...] = dev[u] * 0.01
                dev[p][...] = dev[r]

            def cg_w_kernel(dev) -> None:
                d_w, d_p = dev[w], dev[p]
                d_w[1:-1, 1:-1] = d_p[1:-1, 1:-1] * dev[kx][1:-1, 1:-1]
                dev[pw][0] = float((d_w * d_p).sum())

            def cg_ur_kernel(dev) -> None:
                d_u, d_r, d_p = dev[u], dev[r], dev[p]
                d_u += 1e-4 * d_p
                d_r -= 1e-4 * dev[w]
                d_p[...] = d_r + 0.5 * d_p
                dev[rro][0] = float((d_r * d_r).sum())

            data_maps = [
                tofrom(u, name="u"),
                to(u0, name="u0"),
                to(kx, name="kx"),
                to(ky, name="ky"),
                to(p, name="p"),
                to(r, name="r"),
                to(w, name="w"),
                to(z, name="z"),
                to(sd, name="sd"),
                to(mi, name="mi"),
            ]
            if plan:
                data_maps.append(tofrom(halo, name="halo"))

            with rt.target_data(*data_maps):
                rt.target(reads=[u], writes=[r, p],
                          kernel=cg_init_kernel, kernel_time=kernel_time,
                          name="tea_leaf_cg_init")
                for step, inner in enumerate(inner_counts):
                    for _ in range(inner):
                        # Reduction scalars initialised on the host and mapped
                        # tofrom around each reduction kernel: the DD/RA source.
                        pw[0] = 0.0
                        rt.target(maps=[tofrom(pw, name="pw")],
                                  reads=[p, kx, pw], writes=[w, pw],
                                  kernel=cg_w_kernel, kernel_time=kernel_time,
                                  name="tea_leaf_cg_calc_w")
                        rro[0] = 0.0
                        rt.target(maps=[tofrom(rro, name="rro")],
                                  reads=[p, w, rro], writes=[u, r, rro],
                                  kernel=cg_ur_kernel, kernel_time=kernel_time,
                                  name="tea_leaf_cg_calc_ur")
                    if step < outer_steps - 1:
                        # Outer-step boundary: the field is copied out for the
                        # host-side energy check and sent back unmodified.
                        rt.target_update(from_=[u], name="field_summary")
                        rt.host_compute(nbytes=u.nbytes)
                        rt.target_update(to=[u], name="field_summary")
                if plan:
                    synthetic.inject_duplicate_transfers(rt, halo, plan["duplicates"])
                    synthetic.inject_round_trips(rt, halo, plan["round_trips"])
                    synthetic.inject_unused_transfers(rt, halo, 1)
            rt.host_compute(nbytes=u.nbytes)

        return program
