"""Rodinia ``lud`` (LU decomposition), OpenMP offload version.

The shipped offload port is already clean: the matrix is mapped ``tofrom``
once around the whole blocked factorisation and every per-block kernel works
on present data, so Table 1 reports zeros across the board.  The synthetic
variant injects a large issue mix around the per-block kernels (the largest
synthetic row of Table 1), which is what makes lud useful for stress-testing
the detectors and the overhead accounting.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppVariant, BenchmarkApp, ProblemSize, Program, unsupported_variant
from repro.apps import synthetic
from repro.omp.mapping import tofrom
from repro.omp.runtime import OffloadRuntime
from repro.util.rng import make_rng


class LUDApp(BenchmarkApp):
    """Blocked LU factorisation of a dense matrix."""

    name = "lud"
    domain = "Linear Algebra"
    suite = "Rodinia"
    description = "Blocked in-place LU decomposition (diagonal/perimeter/internal kernels)."

    _BLOCK = 32

    def parameters(self, size: ProblemSize) -> dict:
        n = {
            ProblemSize.SMALL: 256,
            ProblemSize.MEDIUM: 512,
            ProblemSize.LARGE: 1024,
        }[size]
        return {"matrix_dim": n, "block_size": self._BLOCK}

    def build_program(self, size: ProblemSize, variant: AppVariant) -> Program:
        params = self.parameters(size)
        if variant is AppVariant.BASELINE:
            return self._build(params, inject=False, size=size)
        if variant is AppVariant.SYNTHETIC:
            return self._build(params, inject=True, size=size)
        raise unsupported_variant(self.name, variant)

    def _synthetic_plan(self, size: ProblemSize) -> dict:
        """Injection counts, scaled with problem size (Medium matches Table 1)."""
        scale = {ProblemSize.SMALL: 0.25, ProblemSize.MEDIUM: 1.0, ProblemSize.LARGE: 2.0}[size]
        return {
            "duplicates": int(1736 * scale),
            "round_trips": int(1243 * scale),
            "reallocs": int(748 * scale),
            "unused_allocs": int(250 * scale),
            "unused_transfers": int(252 * scale),
        }

    # ------------------------------------------------------------------ #
    def _build(self, params: dict, *, inject: bool, size: ProblemSize) -> Program:
        n = params["matrix_dim"]
        block = params["block_size"]
        steps = n // block

        def program(rt: OffloadRuntime) -> None:
            rng = make_rng(self.name, n)
            # Diagonally dominant matrix so the factorisation is stable.
            matrix = rng.random((n, n)) + np.eye(n) * n
            scratch = rng.random(n)
            lookahead = rng.random((block, block))
            # Small per-block workspace: the array the synthetic issues are
            # injected around (mimicking a mishandled intermediate buffer).
            workspace = rng.random((block, block))
            rt.host_compute(nbytes=matrix.nbytes)

            kernel_time = block * block * 2.0e-9
            plan = self._synthetic_plan(size) if inject else None

            def diagonal(dev, offset: int) -> None:
                a = dev[matrix]
                blk = a[offset : offset + block, offset : offset + block]
                for i in range(1, block):
                    blk[i, :i] /= np.maximum(np.diag(blk)[:i], 1e-9)
                    blk[i, i:] -= blk[i, :i] @ blk[:i, i:]

            def perimeter(dev, offset: int) -> None:
                a = dev[matrix]
                a[offset + block :, offset : offset + block] *= 0.999
                a[offset : offset + block, offset + block :] *= 0.999

            def internal(dev, offset: int) -> None:
                a = dev[matrix]
                diag = a[offset : offset + block, offset : offset + block]
                a[offset + block :, offset + block :] -= (
                    a[offset + block :, offset : offset + block]
                    @ np.linalg.solve(np.triu(diag) + np.eye(block) * 1e-9,
                                      a[offset : offset + block, offset + block :])
                ) * 1e-3

            data_maps = [tofrom(matrix, name="m")]
            if plan:
                data_maps.append(tofrom(workspace, name="workspace"))
            with rt.target_data(*data_maps):
                for step in range(steps):
                    offset = step * block
                    rt.target(reads=[matrix], writes=[matrix],
                              kernel=lambda dev, o=offset: diagonal(dev, o),
                              kernel_time=kernel_time, name="lud_diagonal")
                    if step < steps - 1:
                        rt.target(reads=[matrix], writes=[matrix],
                                  kernel=lambda dev, o=offset: perimeter(dev, o),
                                  kernel_time=kernel_time * 2, name="lud_perimeter")
                        rt.target(reads=[matrix], writes=[matrix],
                                  kernel=lambda dev, o=offset: internal(dev, o),
                                  kernel_time=kernel_time * 4, name="lud_internal")
                    if plan and step == steps // 2:
                        # Inject the synthetic issue mix around the mid-point
                        # kernels (Table 1 "lud (syn)" row).
                        synthetic.inject_duplicate_transfers(rt, workspace, plan["duplicates"])
                        synthetic.inject_round_trips(rt, workspace, plan["round_trips"])
                        synthetic.inject_repeated_allocations(rt, scratch, plan["reallocs"])
                        synthetic.inject_unused_allocations(rt, lookahead, plan["unused_allocs"])
                        synthetic.inject_unused_transfers(rt, workspace, plan["unused_transfers"])
            rt.host_compute(nbytes=matrix.nbytes)

        return program
