"""Rodinia ``bfs`` (breadth-first search), OpenMP offload version.

The published offload port drives the level-synchronous traversal from the
host: every level it maps a small "continue" flag ``tofrom`` around the
frontier-update kernel and reads it back to decide whether to launch another
level.  That flag is the source of all three issue classes the paper reports
for bfs (Section 7.5): it is re-allocated every level (RA), re-sent with the
same zero value every level (DD), and — because the final level reads back
the same zero the host keeps sending — every send completes a content-level
round trip (RT).  The two frontier masks are both zero-initialised, so
mapping the second one is itself one duplicate receipt, which is why the
*fixed* version still reports a single DD, exactly as in Table 1.

The fixed variant applies the paper's fix: the level loop moves into a
single target region, so the flag never crosses the interconnect.  The paper
reports a 2.1x speedup for the small problem size from this change.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppVariant, BenchmarkApp, ProblemSize, Program, unsupported_variant
from repro.omp.mapping import to, tofrom
from repro.omp.runtime import OffloadRuntime
from repro.util.rng import make_rng


class BFSApp(BenchmarkApp):
    """Breadth-first search over a synthetic layered graph of known depth."""

    name = "bfs"
    domain = "Graph Algorithms"
    suite = "Rodinia"
    description = "Level-synchronous BFS with a host-side termination flag."

    #: out-degree of every node (the Rodinia generator uses an average of 6)
    _DEGREE = 6

    def parameters(self, size: ProblemSize) -> dict:
        nodes = {
            ProblemSize.SMALL: 4096,
            ProblemSize.MEDIUM: 65536,
            ProblemSize.LARGE: 262144,
        }[size]
        return {"nodes": nodes, "edges": nodes * self._DEGREE, "levels": 10}

    # ------------------------------------------------------------------ #
    def _make_graph(self, nodes: int, levels: int) -> dict[str, np.ndarray]:
        """Build a layered graph whose BFS depth from node 0 is exactly ``levels``.

        Nodes are partitioned into ``levels`` layers; every node's edges point
        at random nodes of the next layer (nodes of the last layer point back
        at themselves, so the traversal terminates there).
        """
        rng = make_rng(self.name, nodes, levels)
        degree = self._DEGREE
        starts = np.arange(nodes, dtype=np.int64) * degree
        degrees = np.full(nodes, degree, dtype=np.int64)
        layer_of = np.minimum(np.arange(nodes) * levels // nodes, levels - 1)
        edges = np.empty(nodes * degree, dtype=np.int64)
        layer_bounds = [np.nonzero(layer_of == lvl)[0] for lvl in range(levels)]
        for node in range(nodes):
            lvl = int(layer_of[node])
            if lvl + 1 < levels:
                targets = layer_bounds[lvl + 1]
                edges[node * degree : (node + 1) * degree] = rng.choice(targets, size=degree)
            else:
                edges[node * degree : (node + 1) * degree] = node
        return {"starts": starts, "degrees": degrees, "edges": edges}

    def build_program(self, size: ProblemSize, variant: AppVariant) -> Program:
        params = self.parameters(size)
        if variant is AppVariant.BASELINE:
            return self._baseline(params)
        if variant is AppVariant.FIXED:
            return self._fixed(params)
        raise unsupported_variant(self.name, variant)

    # ------------------------------------------------------------------ #
    def _baseline(self, params: dict) -> Program:
        nodes = params["nodes"]
        levels = params["levels"]

        def program(rt: OffloadRuntime) -> None:
            graph = self._make_graph(nodes, levels)
            mask = np.zeros(nodes, dtype=np.int8)
            updating_mask = np.zeros(nodes, dtype=np.int8)
            visited = np.zeros(nodes, dtype=np.int8)
            cost = np.full(nodes, -1, dtype=np.int32)
            over = np.zeros(1, dtype=np.int8)  # "another level is needed" flag

            mask[0] = 1
            visited[0] = 1
            cost[0] = 0
            rt.host_compute(nbytes=graph["edges"].nbytes)  # graph construction

            kernel_time = nodes * 1.5e-9

            with rt.target_data(
                to(graph["starts"], name="h_graph_nodes_start"),
                to(graph["degrees"], name="h_graph_nodes_edges"),
                to(graph["edges"], name="h_graph_edges"),
                to(mask, name="h_graph_mask"),
                to(updating_mask, name="h_updating_graph_mask"),
                to(visited, name="h_graph_visited"),
                tofrom(cost, name="h_cost"),
            ):
                level = 0
                while True:
                    # Kernel 1: expand the current frontier (all data present).
                    rt.target(
                        reads=[graph["edges"], graph["starts"], graph["degrees"], mask, cost],
                        writes=[mask, updating_mask, cost],
                        kernel=lambda dev, lvl=level, g=graph: self._expand(
                            dev, g, mask, updating_mask, cost, lvl
                        ),
                        kernel_time=kernel_time,
                        name="bfs_kernel_1",
                    )
                    # Kernel 2: promote the updating mask and set the flag.
                    # The flag is what the paper flags: mapped tofrom every
                    # level, so it is re-allocated and re-sent each time.
                    over[0] = 0
                    rt.target(
                        maps=[tofrom(over, name="h_over")],
                        reads=[updating_mask, over],
                        writes=[mask, visited, updating_mask, over],
                        kernel=lambda dev: self._promote(dev, mask, updating_mask, visited, over),
                        kernel_time=kernel_time * 0.5,
                        name="bfs_kernel_2",
                    )
                    level += 1
                    if over[0] == 0 or level >= levels + 2:
                        break
            rt.host_compute(nbytes=cost.nbytes)  # result verification

        return program

    def _fixed(self, params: dict) -> Program:
        nodes = params["nodes"]
        levels = params["levels"]

        def program(rt: OffloadRuntime) -> None:
            graph = self._make_graph(nodes, levels)
            mask = np.zeros(nodes, dtype=np.int8)
            updating_mask = np.zeros(nodes, dtype=np.int8)
            visited = np.zeros(nodes, dtype=np.int8)
            cost = np.full(nodes, -1, dtype=np.int32)

            mask[0] = 1
            visited[0] = 1
            cost[0] = 0
            rt.host_compute(nbytes=graph["edges"].nbytes)

            def whole_traversal(dev) -> None:
                # The continue flag is now a device-local (team-private)
                # value: it never crosses the interconnect.
                keep_going = True
                level = 0
                while keep_going and level < levels + 2:
                    self._expand(dev, graph, mask, updating_mask, cost, level)
                    keep_going = self._promote_buffers(
                        dev[mask], dev[updating_mask], dev[visited]
                    )
                    level += 1

            # The loop check lives on the device now: one region, one mapping.
            rt.target(
                maps=[
                    to(graph["starts"], name="h_graph_nodes_start"),
                    to(graph["degrees"], name="h_graph_nodes_edges"),
                    to(graph["edges"], name="h_graph_edges"),
                    to(mask, name="h_graph_mask"),
                    to(updating_mask, name="h_updating_graph_mask"),
                    to(visited, name="h_graph_visited"),
                    tofrom(cost, name="h_cost"),
                ],
                kernel=whole_traversal,
                kernel_time=nodes * 1.5e-9 * levels * 1.4,
                name="bfs_fused_kernel",
            )
            rt.host_compute(nbytes=cost.nbytes)

        return program

    # ------------------------------------------------------------------ #
    # Device kernels (operate on device buffers through the view)
    # ------------------------------------------------------------------ #
    def _expand(self, dev, graph, mask, updating_mask, cost, level) -> None:
        d_mask = dev[mask]
        d_updating = dev[updating_mask]
        d_cost = dev[cost]
        d_edges = dev[graph["edges"]]
        frontier = np.nonzero(d_mask)[0]
        d_mask[:] = 0
        if frontier.size == 0:
            return
        degree = self._DEGREE
        slots = (frontier[:, None] * degree + np.arange(degree)[None, :]).ravel()
        neighbors = d_edges[slots]
        fresh = neighbors[d_cost[neighbors] < 0]
        if fresh.size:
            d_cost[fresh] = level + 1
            d_updating[fresh] = 1

    def _promote(self, dev, mask, updating_mask, visited, over) -> None:
        """Kernel 2 of the baseline: promotes the frontier and sets the mapped flag."""
        any_new = self._promote_buffers(dev[mask], dev[updating_mask], dev[visited])
        if any_new:
            dev[over][0] = 1

    @staticmethod
    def _promote_buffers(d_mask, d_updating, d_visited) -> bool:
        newly = np.nonzero(d_updating)[0]
        if newly.size:
            d_mask[newly] = 1
            d_visited[newly] = 1
        d_updating[:] = 0
        return bool(newly.size)
