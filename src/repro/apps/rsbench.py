"""ANL ``rsbench``: multipole cross-section lookup proxy (event-based mode).

The offload port stages the pole and window data on the device and runs one
large event-based lookup kernel.  The shipped code omits a ``map`` clause
for the simulation-input structure, so the implicit ``tofrom`` rule copies
the (unmodified) inputs back from the GPU after the kernel — the single
round trip reported in Table 1.  The fixed variant adds ``map(to:)`` for the
input structure, which removes the issue.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppVariant, BenchmarkApp, ProblemSize, Program, unsupported_variant
from repro.omp.mapping import from_, to
from repro.omp.runtime import OffloadRuntime
from repro.util.rng import make_rng


class RSBenchApp(BenchmarkApp):
    """Event-based multipole cross-section lookups."""

    name = "rsbench"
    domain = "Neutron Transport"
    suite = "ANL"
    description = "Monte Carlo cross-section lookup proxy (multipole representation)."

    def parameters(self, size: ProblemSize) -> dict:
        lookups = {
            ProblemSize.SMALL: 100_000,
            ProblemSize.MEDIUM: 1_000_000,
            ProblemSize.LARGE: 4_250_000,
        }[size]
        return {"lookups": lookups, "nuclides": 68, "poles": 1000, "mode": "event"}

    def build_program(self, size: ProblemSize, variant: AppVariant) -> Program:
        params = self.parameters(size)
        if variant is AppVariant.BASELINE:
            return self._build(params, fixed=False)
        if variant is AppVariant.FIXED:
            return self._build(params, fixed=True)
        raise unsupported_variant(self.name, variant)

    def _build(self, params: dict, *, fixed: bool) -> Program:
        lookups = params["lookups"]
        nuclides = params["nuclides"]
        poles = params["poles"]

        def program(rt: OffloadRuntime) -> None:
            rng = make_rng(self.name, lookups)
            pole_data = rng.random((nuclides, poles, 4))
            window_data = rng.random((nuclides, poles // 10, 3))
            # The simulation-input structure (problem parameters, seeds, ...)
            # — the variable the paper's fix adds an explicit map(to:) for.
            sim_inputs = np.array(
                [lookups, nuclides, poles, 42, 0, 0, 0, 0], dtype=np.float64
            )
            verification = np.zeros(16, dtype=np.float64)
            rt.host_compute(nbytes=pole_data.nbytes)

            kernel_time = lookups * 6.0e-9 + 1e-5

            def lookup_kernel(dev) -> None:
                p = dev[pole_data]
                v = dev[verification]
                sample = p[:, :: max(poles // 16, 1), 0]
                v[: sample.shape[0] % 16 or 16] += sample.sum()

            maps = [
                to(pole_data, name="poles"),
                to(window_data, name="windows"),
                from_(verification, name="verification"),
            ]
            if fixed:
                maps.append(to(sim_inputs, name="inputs"))
                reads = [pole_data, window_data, sim_inputs]
            else:
                # No map clause for the inputs: the implicit tofrom rule
                # copies them back from the device even though the kernel
                # never modifies them.
                reads = [pole_data, window_data, sim_inputs]

            rt.target(
                maps=maps,
                reads=reads,
                writes=[verification],
                kernel=lookup_kernel,
                kernel_time=kernel_time,
                name="xs_lookup_kernel",
            )
            rt.host_compute(nbytes=verification.nbytes)

        return program
