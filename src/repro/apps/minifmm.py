"""``minifmm``: a task-based fast multipole method proxy (University of Bristol).

The offload port is compute dominated: the multipole and local expansion
buffers are mapped once and a large number of small P2P/M2L kernels run on
resident data.  The only reported issues are three duplicate receipts caused
by mapping several zero-initialised expansion buffers of identical length at
setup (Section 7.5 notes these init-time DDs are not worth fixing).  The
synthetic variant injects the "minifmm (syn)" issue mix of Table 1.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppVariant, BenchmarkApp, ProblemSize, Program, unsupported_variant
from repro.apps import synthetic
from repro.omp.mapping import to, tofrom
from repro.omp.runtime import OffloadRuntime
from repro.util.rng import make_rng


class MiniFMMApp(BenchmarkApp):
    """Fast multipole method proxy: tree of cells, P2P and M2L interaction kernels."""

    name = "minifmm"
    domain = "Particle Physics"
    suite = "UoB-HPC"
    description = "Task-based FMM proxy with resident particle and expansion data."

    _TERMS = 16

    def parameters(self, size: ProblemSize) -> dict:
        particles = {
            ProblemSize.SMALL: 1000,
            ProblemSize.MEDIUM: 10000,
            ProblemSize.LARGE: 40000,
        }[size]
        cells = max(particles // 64, 8)
        return {"particles": particles, "cells": cells, "terms": self._TERMS}

    def build_program(self, size: ProblemSize, variant: AppVariant) -> Program:
        params = self.parameters(size)
        if variant is AppVariant.BASELINE:
            return self._build(params, inject=False)
        if variant is AppVariant.SYNTHETIC:
            return self._build(params, inject=True)
        raise unsupported_variant(self.name, variant)

    def _build(self, params: dict, *, inject: bool) -> Program:
        n = params["particles"]
        cells = params["cells"]
        terms = params["terms"]

        def program(rt: OffloadRuntime) -> None:
            rng = make_rng(self.name, n)
            positions = rng.random((n, 3))
            charges = rng.random(n)
            forces = np.zeros((n, 3))
            potentials = np.zeros(n)
            # Expansion buffers: all zero-initialised, all the same length —
            # the source of the three init-time duplicate receipts.
            multipoles = np.zeros((cells, terms))
            locals_ = np.zeros((cells, terms))
            downward = np.zeros((cells, terms))
            upward = np.zeros((cells, terms))
            scratch = rng.random(terms)
            rt.host_compute(nbytes=positions.nbytes)

            p2p_time = (n / cells) ** 2 * 2.0e-9 + 4e-6
            m2l_time = terms * terms * 2.0e-9 + 4e-6

            def p2m(dev) -> None:
                # Upward pass: compute multipole expansions from the charges.
                per_cell = n // cells
                q = dev[charges][: per_cell * cells].reshape(cells, per_cell)
                dev[multipoles][...] = q.sum(axis=1)[:, None] * (
                    1.0 / (1.0 + np.arange(terms))[None, :]
                )

            def p2p(dev, cell: int) -> None:
                lo = cell * (n // cells)
                hi = min(n, lo + (n // cells))
                pos = dev[positions][lo:hi]
                q = dev[charges][lo:hi]
                if pos.shape[0] == 0:
                    return
                d = pos[:, None, :] - pos[None, :, :]
                r2 = (d * d).sum(axis=2) + 1e-6
                inv_r = 1.0 / np.sqrt(r2)
                dev[potentials][lo:hi] += (q[None, :] * inv_r).sum(axis=1)
                dev[forces][lo:hi] += (d * (q[None, :, None] * inv_r[..., None] ** 3)).sum(axis=1)

            def m2l(dev, cell: int) -> None:
                dev[locals_][cell] += dev[multipoles][(cell * 7 + 3) % cells] * 0.01

            with rt.target_data(
                to(positions, name="positions"),
                to(charges, name="charges"),
                tofrom(forces, name="forces"),
                tofrom(potentials, name="potentials"),
                to(multipoles, name="multipoles"),
                to(locals_, name="locals"),
                to(downward, name="downward"),
                to(upward, name="upward"),
            ):
                rt.target(reads=[charges], writes=[multipoles],
                          kernel=p2m, kernel_time=m2l_time, name="fmm_p2m")
                for cell in range(cells):
                    rt.target(reads=[positions, charges], writes=[potentials, forces],
                              kernel=lambda dev, c=cell: p2p(dev, c),
                              kernel_time=p2p_time, name="fmm_p2p")
                    rt.target(reads=[multipoles], writes=[locals_],
                              kernel=lambda dev, c=cell: m2l(dev, c),
                              kernel_time=m2l_time, name="fmm_m2l")
                if inject:
                    # "minifmm (syn)" row: DD=75, RT=64, RA=57, UA=57, UT=76.
                    synthetic.inject_duplicate_transfers(rt, multipoles, 72)
                    synthetic.inject_round_trips(rt, locals_, 64)
                    synthetic.inject_repeated_allocations(rt, scratch, 58)
                    synthetic.inject_unused_allocations(rt, scratch, 57)
                    synthetic.inject_unused_transfers(rt, downward, 76)
            rt.host_compute(nbytes=forces.nbytes)

        return program
