"""Registry of the simulated benchmark applications.

The ten evaluation applications (Sections 7.2–7.6, Table 5) and the five
HeCBench applications used for the Arbalest-Vec comparison (Section 7.7) are
registered here; the experiment harness, the CLI and the tests all resolve
applications by name through this module.
"""

from __future__ import annotations

from typing import Iterable

from repro.apps.base import BenchmarkApp
from repro.apps.babelstream import BabelStreamApp
from repro.apps.bfs import BFSApp
from repro.apps.hotspot import HotspotApp
from repro.apps.lud import LUDApp
from repro.apps.minife import MiniFEApp
from repro.apps.minifmm import MiniFMMApp
from repro.apps.nw import NWApp
from repro.apps.rsbench import RSBenchApp
from repro.apps.tealeaf import TeaLeafApp
from repro.apps.xsbench import XSBenchApp
from repro.apps.hecbench import (
    AccuracyApp,
    BSplineVGHApp,
    LIFApp,
    MandelbrotApp,
    ResizeApp,
)

#: The ten applications of the main evaluation, in the order the paper lists
#: them (Table 1 / Figures 2–4).
EVALUATION_APP_NAMES: tuple[str, ...] = (
    "babelstream",
    "bfs",
    "hotspot",
    "lud",
    "minife",
    "minifmm",
    "nw",
    "rsbench",
    "tealeaf",
    "xsbench",
)

#: The five HeCBench programs of the Arbalest-Vec comparison (Tables 2 and 3).
HECBENCH_APP_NAMES: tuple[str, ...] = (
    "resize-omp",
    "mandelbrot-omp",
    "accuracy-omp",
    "lif-omp",
    "bspline-vgh-omp",
)

_APP_CLASSES: tuple[type[BenchmarkApp], ...] = (
    BabelStreamApp,
    BFSApp,
    HotspotApp,
    LUDApp,
    MiniFEApp,
    MiniFMMApp,
    NWApp,
    RSBenchApp,
    TeaLeafApp,
    XSBenchApp,
    ResizeApp,
    MandelbrotApp,
    AccuracyApp,
    LIFApp,
    BSplineVGHApp,
)


def _build_registry() -> dict[str, BenchmarkApp]:
    registry: dict[str, BenchmarkApp] = {}
    for cls in _APP_CLASSES:
        app = cls()
        if app.name in registry:
            raise RuntimeError(f"duplicate application name {app.name!r}")
        registry[app.name] = app
    return registry


_REGISTRY = _build_registry()


def all_apps() -> dict[str, BenchmarkApp]:
    """Every registered application, keyed by name."""
    return dict(_REGISTRY)


def get_app(name: str) -> BenchmarkApp:
    """Look up one application by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown application {name!r}; known applications: {known}") from None


def _subset(names: Iterable[str]) -> dict[str, BenchmarkApp]:
    return {name: get_app(name) for name in names}


def evaluation_apps() -> dict[str, BenchmarkApp]:
    """The ten main-evaluation applications, in paper order."""
    return _subset(EVALUATION_APP_NAMES)


def hecbench_apps() -> dict[str, BenchmarkApp]:
    """The five HeCBench applications of the Arbalest-Vec comparison."""
    return _subset(HECBENCH_APP_NAMES)
