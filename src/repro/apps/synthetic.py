"""Synthetic inefficiency injection.

Section 7.5: "For the benchmarks that were already well optimized, we
injected artificial issues meant to mimic common inefficiencies (...) that a
programmer may stumble into around key kernels."  The helpers below perform
those patterns through the *public* runtime API — re-mapping data that is
already resident, bouncing unmodified data back and forth, tearing mappings
down per-kernel only to recreate them — so the injected traces look exactly
like the programmer mistakes they imitate.

Each helper interleaves a small "consumer" kernel with the injected data
operations where the corresponding real-world pattern would have one (e.g.
Listing 2's round trips happen *around* kernel executions).  That keeps the
patterns separable: injecting duplicate transfers does not also create
unused transfers, matching how the paper's synthetic rows show zero UA/UT
for several applications despite large DD/RT/RA counts.
"""

from __future__ import annotations

import numpy as np

from repro.omp.mapping import alloc, release
from repro.omp.runtime import OffloadRuntime

#: Duration charged for the tiny consumer kernels the injectors launch.
_CONSUMER_KERNEL_TIME = 2.0e-6


def _consume(
    runtime: OffloadRuntime,
    array: np.ndarray,
    device_num: int | None,
    *,
    mutate: bool = False,
) -> None:
    """Launch a trivial kernel that reads (and optionally updates) ``array``."""

    def kernel(dev) -> None:
        if mutate:
            dev[array].reshape(-1)[0] += 1.0

    runtime.target(
        reads=[array],
        writes=[array] if mutate else (),
        kernel=kernel,
        kernel_time=_CONSUMER_KERNEL_TIME,
        device_num=device_num,
        name="synthetic-consumer",
    )


def inject_duplicate_transfers(
    runtime: OffloadRuntime,
    array: np.ndarray,
    count: int,
    *,
    device_num: int | None = None,
) -> None:
    """Re-send an already-present, unmodified array before ``count`` kernels.

    Mimics a programmer refreshing device data "just in case" inside a loop.
    The array must currently be mapped on the device.  Produces ``count``
    duplicate receipts (plus one more if the original mapping already copied
    the same content to the device); produces no unused transfers because a
    kernel runs after every refresh, and no round trips because the consumer
    kernel modifies the device copy (so the stale host payload keeps being
    re-sent, which is precisely the mistake being imitated).
    """
    if count < 0:
        raise ValueError("count cannot be negative")
    for _ in range(count):
        runtime.target_update(to=[array], device_num=device_num, name="synthetic-duplicate")
        _consume(runtime, array, device_num, mutate=True)


def inject_round_trips(
    runtime: OffloadRuntime,
    array: np.ndarray,
    count: int,
    *,
    device_num: int | None = None,
) -> None:
    """Bounce an unmodified array device→host→device across ``count`` kernels.

    Mimics the Listing-2 pattern: the result is copied back after a kernel
    and re-sent, unmodified, before the next one.  The consumer kernel run
    after every bounce *modifies* the data, so successive bounces carry
    different payloads — each bounce is a round trip but not also a
    duplicate transfer, exactly like Listing 2.
    """
    if count < 0:
        raise ValueError("count cannot be negative")
    for _ in range(count):
        runtime.target_update(from_=[array], device_num=device_num, name="synthetic-roundtrip")
        runtime.target_update(to=[array], device_num=device_num, name="synthetic-roundtrip")
        _consume(runtime, array, device_num, mutate=True)


def inject_repeated_allocations(
    runtime: OffloadRuntime,
    array: np.ndarray,
    count: int,
    *,
    device_num: int | None = None,
) -> None:
    """Map ``array`` with ``map(alloc)`` around ``count`` separate kernels.

    Mimics mappings whose lifetime does not extend across kernels, the root
    cause of repeated device memory allocation (Section 4.3).  Produces
    ``count - 1`` redundant allocations and no transfers; the allocations all
    overlap a kernel, so none of them is an *unused* allocation.  The array
    must not currently be mapped.
    """
    if count < 0:
        raise ValueError("count cannot be negative")
    for _ in range(count):
        runtime.target(
            maps=[alloc(array, name="synthetic-realloc")],
            kernel=None,
            kernel_time=_CONSUMER_KERNEL_TIME,
            device_num=device_num,
            name="synthetic-realloc",
        )


def inject_unused_allocation(
    runtime: OffloadRuntime,
    array: np.ndarray,
    *,
    device_num: int | None = None,
) -> None:
    """Allocate device storage that no kernel will ever overlap, then free it.

    Mimics dead-code mappings and overly cautious pre-allocations.  Because
    the allocation's whole lifetime sits between kernel executions it is
    provably unused.  Repeated calls with the same array also accumulate
    repeated-allocation findings, as the corresponding real mistake would.
    """
    runtime.target_enter_data(alloc(array), device_num=device_num, name="synthetic-unused-alloc")
    runtime.target_exit_data(release(array), device_num=device_num, name="synthetic-unused-alloc")


def inject_unused_allocations(
    runtime: OffloadRuntime,
    like: np.ndarray,
    count: int,
    *,
    device_num: int | None = None,
) -> None:
    """Inject ``count`` independent unused allocations.

    Each injection uses its own freshly created buffer (all kept alive for
    the duration of the call) so the unused allocations do not additionally
    register as *repeated* allocations of a single variable — matching the
    paper's synthetic rows, where the UA and RA counts are independent.
    """
    if count < 0:
        raise ValueError("count cannot be negative")
    buffers = [np.zeros_like(like) for _ in range(count)]
    for buf in buffers:
        inject_unused_allocation(runtime, buf, device_num=device_num)


def inject_unused_transfers(
    runtime: OffloadRuntime,
    array: np.ndarray,
    count: int,
    *,
    device_num: int | None = None,
    rng: np.random.Generator | None = None,
) -> None:
    """Send ``count`` payloads that are overwritten before any kernel runs.

    Each injected transfer is immediately superseded by the next transfer
    from the same host address with no intervening kernel, so all but the
    final send are provably unused.  Host contents are perturbed between
    sends so the pattern is not also a duplicate transfer.  The array must
    currently be mapped; the final payload is handed to a consumer kernel so
    it does not count as unused itself.
    """
    if count < 0:
        raise ValueError("count cannot be negative")
    if rng is None:
        rng = np.random.default_rng(0xC0FFEE)
    flat = array.reshape(-1)
    for _ in range(count + 1):
        flat[0] = flat[0] + float(rng.random()) + 1.0
        runtime.target_update(to=[array], device_num=device_num, name="synthetic-unused-transfer")
    # The consumer modifies the device copy so that a later copy-back of the
    # array (e.g. a tofrom mapping ending) does not also read as a round trip.
    _consume(runtime, array, device_num, mutate=True)
