"""``babelstream``: the GPU memory-bandwidth benchmark.

BabelStream maps its three work arrays once and then runs the five STREAM
kernels (copy, mul, add, triad, dot) for a configurable number of
iterations.  The offload port re-initialises and re-maps the dot-product
partial-sum buffer on every iteration; because the host always sends the
same zeroed buffer and tears the mapping down again afterwards, the run
accumulates exactly ``iterations - 1`` duplicate transfers and
``iterations - 1`` repeated allocations — the paper notes these are an
intentional part of the benchmark's methodology (each test run is supposed
to be independent), which is why there is no "fixed" variant.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppVariant, BenchmarkApp, ProblemSize, Program, unsupported_variant
from repro.omp.mapping import to, tofrom
from repro.omp.runtime import OffloadRuntime


class BabelStreamApp(BenchmarkApp):
    """Five STREAM kernels over three large device-resident arrays."""

    name = "babelstream"
    domain = "Memory Bandwidth"
    suite = "BabelStream"
    description = "STREAM triad-style bandwidth benchmark with a per-iteration dot reduction."

    #: number of partial sums produced by the dot kernel
    _DOT_GROUPS = 256

    def parameters(self, size: ProblemSize) -> dict:
        iterations = {
            ProblemSize.SMALL: 100,
            ProblemSize.MEDIUM: 500,
            ProblemSize.LARGE: 2500,
        }[size]
        elements = {
            ProblemSize.SMALL: 1 << 13,
            ProblemSize.MEDIUM: 1 << 14,
            ProblemSize.LARGE: 1 << 14,
        }[size]
        return {"iterations": iterations, "elements": elements}

    def build_program(self, size: ProblemSize, variant: AppVariant) -> Program:
        params = self.parameters(size)
        if variant in (AppVariant.BASELINE, AppVariant.SYNTHETIC):
            # Table 1 lists "babelstream (syn)" with the same counts as the
            # baseline: no extra issues are injected.
            return self._build(params)
        raise unsupported_variant(self.name, variant)

    def _build(self, params: dict) -> Program:
        iterations = params["iterations"]
        elements = params["elements"]

        def program(rt: OffloadRuntime) -> None:
            a = np.full(elements, 0.1, dtype=np.float64)
            b = np.full(elements, 0.2, dtype=np.float64)
            c = np.zeros(elements, dtype=np.float64)
            sums = np.zeros(self._DOT_GROUPS, dtype=np.float64)
            # The reference benchmark uses scalar=0.4 and lets the array values
            # grow; the coefficients below keep the linear recurrence's spectral
            # radius just under one so values stay finite and distinct across
            # thousands of iterations (no overflow, no flush-to-zero), and
            # content hashes only repeat where the mapping pattern genuinely
            # repeats data.
            scalar = 0.999
            rt.host_compute(nbytes=a.nbytes * 3)

            stream_kernel_time = elements * 8 * 3 * 1.2e-12 + 6e-6

            with rt.target_data(
                tofrom(a, name="a"), tofrom(b, name="b"), tofrom(c, name="c")
            ):
                for _ in range(iterations):
                    rt.target(reads=[a], writes=[c],
                              kernel=lambda dev: dev[c].__setitem__(slice(None), dev[a]),
                              kernel_time=stream_kernel_time, name="copy")
                    rt.target(reads=[c], writes=[b],
                              kernel=lambda dev: dev[b].__setitem__(slice(None), scalar * dev[c]),
                              kernel_time=stream_kernel_time, name="mul")
                    rt.target(reads=[a, b], writes=[c],
                              kernel=lambda dev: dev[c].__setitem__(
                                  slice(None), 0.5 * (dev[a] + dev[b])),
                              kernel_time=stream_kernel_time, name="add")
                    rt.target(reads=[b, c], writes=[a],
                              kernel=lambda dev: dev[a].__setitem__(
                                  slice(None), 0.5 * dev[b] + 0.5 * scalar * dev[c]),
                              kernel_time=stream_kernel_time, name="triad")
                    # The dot kernel re-maps (and re-zeroes) its partial-sum
                    # buffer on every iteration: the DD/RA source.
                    sums[:] = 0.0
                    rt.target(
                        maps=[tofrom(sums, name="sums")],
                        reads=[a, b, sums],
                        writes=[sums],
                        kernel=lambda dev: dev[sums].__setitem__(
                            slice(None),
                            np.add.reduceat(dev[a] * dev[b],
                                            np.linspace(0, elements, self._DOT_GROUPS,
                                                        endpoint=False, dtype=np.int64)),
                        ),
                        kernel_time=stream_kernel_time,
                        name="dot",
                    )
                    rt.host_compute(nbytes=sums.nbytes)  # host-side final reduction
            rt.host_compute(nbytes=a.nbytes)  # verification

        return program
