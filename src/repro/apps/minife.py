"""Mantevo ``minife``: an implicit finite-element proxy (CG solver).

The published OpenMP offload port keeps the matrix and the main solution
vectors resident, but two per-iteration intermediates — the matvec result
``Ap`` and the dot-product partial buffer — are mapped ``tofrom`` around
their kernels *inside* the CG loop and re-zeroed on the host every
iteration.  That produces one repeated allocation and one duplicate (all
zeros) transfer per intermediate per iteration, plus a handful of duplicate
receipts from the zero-initialised work vectors at setup, and four
round trips from unmodified solution-vector checkpoints: the DD=402 /
RT=4 / RA=398 row of Table 1.

The fixed variant applies the paper's fix — "extending the lifetime of
intermediate variables used on the target device" — by hoisting both
intermediates into the enclosing ``target data`` region and initialising
them on the device; only the three setup-time duplicate receipts remain
(the minife (fix) row).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppVariant, BenchmarkApp, ProblemSize, Program, unsupported_variant
from repro.omp.mapping import alloc, to, tofrom
from repro.omp.runtime import OffloadRuntime
from repro.util.rng import make_rng


class MiniFEApp(BenchmarkApp):
    """Conjugate-gradient solve over a synthetic sparse (banded) operator."""

    name = "minife"
    domain = "Finite Element Analysis"
    suite = "Mantevo"
    description = "CG solver with per-iteration intermediate vectors."

    _DOT_GROUPS = 64

    def parameters(self, size: ProblemSize) -> dict:
        nx = {ProblemSize.SMALL: 66, ProblemSize.MEDIUM: 132, ProblemSize.LARGE: 264}[size]
        return {"nx": nx, "ny": nx - 2, "nz": nx - 2, "cg_iterations": 200}

    def build_program(self, size: ProblemSize, variant: AppVariant) -> Program:
        params = self.parameters(size)
        if variant is AppVariant.BASELINE:
            return self._build(params, fixed=False)
        if variant is AppVariant.FIXED:
            return self._build(params, fixed=True)
        raise unsupported_variant(self.name, variant)

    def _build(self, params: dict, *, fixed: bool) -> Program:
        nx, ny = params["nx"], params["ny"]
        n = nx * ny  # 2-D proxy of the 3-D operator; keeps vectors light
        iterations = params["cg_iterations"]

        def program(rt: OffloadRuntime) -> None:
            rng = make_rng(self.name, n)
            diag = rng.random(n) + 4.0
            off = rng.random(n) * -1.0
            b = rng.random(n)
            x = np.zeros(n)
            r = np.zeros(n)
            p = np.zeros(n)
            z = np.zeros(n)
            ap = np.zeros(n)
            dots = np.zeros(self._DOT_GROUPS)
            rt.host_compute(nbytes=diag.nbytes * 4)  # assembly

            matvec_time = n * 1.0e-8
            axpy_time = n * 2.5e-9

            def matvec_dot(dev) -> None:
                d_ap = dev[ap]
                d_p = dev[p]
                d_ap[:] = dev[diag] * d_p
                d_ap[1:] += dev[off][1:] * d_p[:-1]
                d_ap[:-1] += dev[off][:-1] * d_p[1:]
                splits = np.linspace(0, n, self._DOT_GROUPS, endpoint=False, dtype=np.int64)
                dev[dots][:] = np.add.reduceat(d_p * d_ap, splits)

            def update(dev) -> None:
                d_x, d_r, d_p = dev[x], dev[r], dev[p]
                alpha = 1e-3
                d_x += alpha * d_p
                d_r -= alpha * 0.9 * d_p
                d_p[:] = d_r + 0.5 * d_p

            def init_residual(dev) -> None:
                dev[r][:] = dev[b]
                dev[p][:] = dev[b]

            base_maps = [
                to(diag, name="A_diag"),
                to(off, name="A_off"),
                to(b, name="b"),
                tofrom(x, name="x"),
                to(r, name="r"),
                to(p, name="p"),
                to(z, name="z"),
            ]
            if fixed:
                # Hoisted intermediates: allocated once, initialised on device.
                base_maps += [alloc(ap, name="Ap"), alloc(dots, name="dots")]

            with rt.target_data(*base_maps):
                rt.target(reads=[b], writes=[r, p, x],
                          kernel=init_residual, kernel_time=axpy_time, name="waxpby_init")
                for it in range(iterations):
                    if fixed:
                        rt.target(reads=[diag, off, p], writes=[ap, dots],
                                  kernel=matvec_dot, kernel_time=matvec_time,
                                  name="matvec_dot")
                    else:
                        # Intermediates re-zeroed on the host and re-mapped
                        # around each kernel: the RA/DD source.
                        ap[:] = 0.0
                        dots[:] = 0.0
                        rt.target(maps=[tofrom(ap, name="Ap"), tofrom(dots, name="dots")],
                                  reads=[diag, off, p], writes=[ap, dots],
                                  kernel=matvec_dot, kernel_time=matvec_time,
                                  name="matvec_dot")
                    rt.target(reads=[p, r], writes=[x, r, p],
                              kernel=update, kernel_time=axpy_time, name="waxpby")
                    if not fixed and it > 0 and it % 40 == 0:
                        # Convergence checkpoint: the solution vector is copied
                        # out for a host-side norm and sent back unmodified.
                        rt.target_update(from_=[x], name="checkpoint")
                        rt.host_compute(nbytes=x.nbytes)
                        rt.target_update(to=[x], name="checkpoint")
            rt.host_compute(nbytes=x.nbytes)  # verification / output

        return program
