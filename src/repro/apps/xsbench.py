"""ANL ``xsbench``: continuous-energy cross-section lookup proxy (event mode).

Structurally the same story as rsbench (Section 7.5): the nuclide grid data
is staged once and a single event-based lookup kernel dominates, but the
simulation-input structure lacks an explicit map clause, so the implicit
``tofrom`` rule ships it back from the GPU unmodified — one round trip.
The fixed variant adds the missing ``map(to:)`` clause.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppVariant, BenchmarkApp, ProblemSize, Program, unsupported_variant
from repro.omp.mapping import from_, to
from repro.omp.runtime import OffloadRuntime
from repro.util.rng import make_rng


class XSBenchApp(BenchmarkApp):
    """Event-based continuous-energy macroscopic cross-section lookups."""

    name = "xsbench"
    domain = "Neutron Transport"
    suite = "ANL"
    description = "Monte Carlo cross-section lookup proxy (nuclide grid representation)."

    def parameters(self, size: ProblemSize) -> dict:
        lookups = {
            ProblemSize.SMALL: 170_000,
            ProblemSize.MEDIUM: 1_700_000,
            ProblemSize.LARGE: 17_000_000,
        }[size]
        gridpoints = {
            ProblemSize.SMALL: 2_000,
            ProblemSize.MEDIUM: 11_303,
            ProblemSize.LARGE: 11_303,
        }[size]
        return {"lookups": lookups, "nuclides": 68, "gridpoints": gridpoints, "mode": "event"}

    def build_program(self, size: ProblemSize, variant: AppVariant) -> Program:
        params = self.parameters(size)
        if variant is AppVariant.BASELINE:
            return self._build(params, fixed=False)
        if variant is AppVariant.FIXED:
            return self._build(params, fixed=True)
        raise unsupported_variant(self.name, variant)

    def _build(self, params: dict, *, fixed: bool) -> Program:
        lookups = params["lookups"]
        nuclides = params["nuclides"]
        gridpoints = params["gridpoints"]

        def program(rt: OffloadRuntime) -> None:
            rng = make_rng(self.name, lookups, gridpoints)
            energy_grid = np.sort(rng.random(nuclides * gridpoints // 8))
            xs_data = rng.random((nuclides, gridpoints // 8, 6))
            concentrations = rng.random((12, nuclides))
            sim_inputs = np.array(
                [lookups, nuclides, gridpoints, 7, 1, 0, 0, 0], dtype=np.float64
            )
            results = np.zeros(32, dtype=np.float64)
            rt.host_compute(nbytes=xs_data.nbytes)

            kernel_time = lookups * 4.0e-9 + 1e-5

            def lookup_kernel(dev) -> None:
                xs = dev[xs_data]
                out = dev[results]
                out[:] += xs[:, :: max(gridpoints // 64, 1), 0].sum()

            maps = [
                to(energy_grid, name="energy_grid"),
                to(xs_data, name="nuclide_grid"),
                to(concentrations, name="concentrations"),
                from_(results, name="verification"),
            ]
            if fixed:
                maps.append(to(sim_inputs, name="inputs"))

            rt.target(
                maps=maps,
                reads=[energy_grid, xs_data, concentrations, sim_inputs],
                writes=[results],
                kernel=lookup_kernel,
                kernel_time=kernel_time,
                name="xs_lookup_kernel",
            )
            rt.host_compute(nbytes=results.nbytes)

        return program
