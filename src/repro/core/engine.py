"""Pluggable execution engines for the streaming detector passes.

:func:`repro.core.analysis.analyze_stream` runs five
:class:`~repro.core.detectors._streaming.StreamingPass` folds over one
stream.  How those folds execute is this module's job, behind one
:class:`ExecutionEngine` protocol with three backends:

* :class:`SerialEngine` — the sequential single-scan pipeline: every shard
  is loaded once and handed to all five folds on the calling thread
  (``jobs > 1`` adds the prefetch thread and concurrent finalizes).
* :class:`ThreadEngine` — the stream is cut into ``jobs`` contiguous,
  event-balanced partitions (:func:`~repro.events.stream.partition_stream`)
  and each worker thread folds all five passes over its partition; the
  per-partition carries then merge left to right.  Shard decode releases
  the GIL, so load overlaps fold — but the folds themselves stay
  GIL-bound, which is the ceiling this backend cannot pass.
* :class:`ProcessEngine` — the same partition/fold/merge/finalize shape
  with *process* workers, which is what lets the fold work scale past one
  core.  Workers receive a picklable **transport spec**, not events: each
  rebuilds the shard transport
  (:func:`~repro.events.transport.transport_from_spec`), opens the
  :class:`~repro.events.store.ShardedTraceStore` through it and folds its
  shard range locally, so only the spawn arguments (a spec, a
  :class:`PartitionTask`, the pass specs) and the folded carry states —
  small, picklable — ever cross the process boundary.  The store can
  therefore live behind *any* transport (a local directory, a zip
  archive, an object store), and the finalize-side materialisation scans
  run on the same worker pool, so a process-engine run stays off the
  parent's GIL end to end.

A fourth backend lives in :mod:`repro.core.distributed`:
``DistributedEngine`` speaks the same partition→fold→merge→finalize shape
across *machines*, with partition tasks leased from a transport-backed
queue instead of submitted to an in-process pool.  It shares this
module's task vocabulary — :class:`PartitionTask`,
:func:`partition_tasks`, :func:`fold_store_task` — and registers itself
in :data:`ENGINES` on import (``repro.core`` imports it, so the registry
is always complete).

All three produce bit-identical findings: partition workers fold with
``eager=False`` (classification deferred until the carries merge), and the
per-detector ``merge`` contracts reconstruct exactly the carry a
sequential fold would have built (see ``docs/architecture.md`` for the
contract table).  Engines are resolved by name through :data:`ENGINES` /
:func:`resolve_engine`, which is what the ``--engine`` CLI flag and the
``engine=`` keyword of ``analyze_stream`` speak.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping, Optional, Protocol, Sequence, runtime_checkable

from repro.core.detectors._streaming import StreamingPass, run_streaming_passes
from repro.events.protocol import EventStream
from repro.events.stream import StreamPartition, partition_stream


@dataclass(frozen=True)
class PassSpec:
    """A picklable recipe for one streaming pass.

    Engines instantiate passes per partition (a pass instance is
    single-use and carries fold state), so they are handed recipes instead
    of instances; ``cls`` must be a module-level class for the spec to
    cross a process boundary by reference.
    """

    cls: type
    kwargs: Mapping = field(default_factory=dict)

    def build(self, *, eager: bool = True) -> StreamingPass:
        pass_ = self.cls(**dict(self.kwargs))
        pass_.eager = eager
        return pass_


@runtime_checkable
class ExecutionEngine(Protocol):
    """How a set of streaming passes executes over one stream."""

    name: str

    def run(
        self, specs: Sequence[PassSpec], stream: EventStream, *, jobs: int = 1
    ) -> list:
        """Fold every spec's pass over ``stream`` and return the finalized
        findings, one entry per spec, identical to a sequential fold."""
        ...


def _check_jobs(jobs: int) -> None:
    if jobs < 1:
        raise ValueError("jobs must be at least 1")


# --------------------------------------------------------------------- #
# Engine configuration (spec strings)
# --------------------------------------------------------------------- #
_BOOL_WORDS = {
    "on": True, "true": True, "yes": True, "1": True,
    "off": False, "false": False, "no": False, "0": False,
}


def _opt_bool(text: str) -> bool:
    try:
        return _BOOL_WORDS[text.strip().lower()]
    except KeyError:
        raise ValueError(
            f"expected on/off (or true/false, yes/no), got {text!r}"
        ) from None


def _opt_int(text: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ValueError(f"expected an integer, got {text!r}") from None


def _opt_float(text: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"expected a number, got {text!r}") from None


def _opt_str(text: str) -> str:
    return text


#: Deprecated call shapes warn exactly once per process, keyed by shape
#: (the single-warning policy of the EngineConfig migration).
_DEPRECATION_WARNED: set[str] = set()


def _warn_deprecated_once(key: str, message: str) -> None:
    if key in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


@dataclass(frozen=True)
class EngineConfig:
    """One parsed engine request: a registry name plus typed options.

    The unified configuration surface behind ``--engine`` and
    ``resolve_engine``: every per-engine constructor kwarg that used to
    need ad-hoc plumbing is addressable from one spec string::

        EngineConfig.parse("distributed:claim_batch=4,lease_timeout=10,speculate=on")
        EngineConfig.parse("process:keep_pool=on")
        EngineConfig.parse("serial")

    Option names and types come from each engine class's
    ``config_options`` mapping (``{name: converter}``); unknown engines
    and unknown or mistyped options fail at parse time with the full list
    of valid choices, not deep inside a constructor.
    """

    name: str
    options: Mapping = field(default_factory=dict)

    @classmethod
    def parse(cls, spec: str) -> "EngineConfig":
        name, _, rest = spec.partition(":")
        name = name.strip()
        if name not in ENGINES:
            raise ValueError(
                f"unknown execution engine {name!r}; "
                f"available: {', '.join(available_engines())}"
            )
        converters = engine_config_options(name)
        options: dict = {}
        for item in rest.split(","):
            item = item.strip()
            if not item:
                continue
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or not key:
                raise ValueError(
                    f"engine option {item!r} is not of the form key=value "
                    f"(in spec {spec!r})"
                )
            if key not in converters:
                known = ", ".join(sorted(converters)) or "none"
                raise ValueError(
                    f"unknown option {key!r} for engine {name!r}; "
                    f"known options: {known}"
                )
            try:
                options[key] = converters[key](value.strip())
            except ValueError as exc:
                raise ValueError(
                    f"bad value for engine option {key!r}: {exc}"
                ) from None
        return cls(name=name, options=options)

    def spec(self) -> str:
        """The spec string this config round-trips to."""
        if not self.options:
            return self.name
        rendered = ",".join(f"{k}={v}" for k, v in sorted(self.options.items()))
        return f"{self.name}:{rendered}"

    def build(self) -> "ExecutionEngine":
        return ENGINES[self.name](**dict(self.options))


def engine_config_options(name: str) -> Mapping:
    """The ``{option: converter}`` mapping an engine accepts in a spec."""
    try:
        engine_cls = ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown execution engine {name!r}; "
            f"available: {', '.join(available_engines())}"
        ) from None
    return getattr(engine_cls, "config_options", {})


def _fold_partition(
    specs: Sequence[PassSpec], partition: StreamPartition, on_batch=None
) -> list[StreamingPass]:
    """Fold fresh deferred-mode passes over one partition's batches.

    Batches arrive through a bounded read-ahead
    (:func:`~repro.events.stream.prefetch_batches`): the next shard's
    fetch — an O(1) map for local ``.odpf`` shards, a byte read plus
    decode elsewhere — overlaps the current shard's fold.

    ``on_batch`` (when given) is called after every folded batch with the
    number of events it held — the fold-position hook that lets a worker's
    heartbeat carry progress, not just liveness (warm-pool counters, the
    distributed worker's beat blobs).
    """
    from repro.events.stream import prefetch_batches

    passes = [spec.build(eager=False) for spec in specs]
    offset = partition.data_op_offset
    for batch in prefetch_batches(partition, depth=2):
        for pass_ in passes:
            pass_.fold(batch, offset)
        offset += batch.num_data_op_events
        if on_batch is not None:
            on_batch(batch.num_data_op_events + batch.num_target_events)
    return passes


def _merge_partition_carries(chains: list[list[StreamingPass]]) -> list[StreamingPass]:
    """Left-fold the per-partition carries into the first partition's."""
    head = chains[0]
    for tail in chains[1:]:
        for target, source in zip(head, tail):
            target.merge(source)
    return head


def _finalize_all(
    passes: Sequence[StreamingPass], stream: EventStream, jobs: int
) -> list:
    """Finalize every pass; concurrently when jobs allow.

    Finalizes are independent (each may re-scan only the shards holding
    its finding rows), exactly like the serial pipeline's parallel
    finalize stage.
    """
    if jobs <= 1 or len(passes) <= 1:
        return [pass_.finalize(stream) for pass_ in passes]
    with ThreadPoolExecutor(max_workers=min(jobs, len(passes))) as pool:
        futures = [pool.submit(pass_.finalize, stream) for pass_ in passes]
        return [future.result() for future in futures]


class SerialEngine:
    """One sequential scan, all folds on the calling thread (the default)."""

    name = "serial"

    def run(self, specs, stream, *, jobs: int = 1) -> list:
        _check_jobs(jobs)
        passes = [spec.build() for spec in specs]
        return run_streaming_passes(passes, stream, jobs=jobs)


class ThreadEngine:
    """Partitioned folds on worker threads, merged left to right."""

    name = "thread"

    def run(self, specs, stream, *, jobs: int = 1) -> list:
        _check_jobs(jobs)
        parts = partition_stream(stream, jobs)
        if len(parts) <= 1:
            return SerialEngine().run(specs, stream, jobs=jobs)
        with ThreadPoolExecutor(max_workers=len(parts)) as pool:
            futures = [pool.submit(_fold_partition, specs, part) for part in parts]
            chains = [future.result() for future in futures]
        merged = _merge_partition_carries(chains)
        return _finalize_all(merged, stream, jobs)


def _open_store_from_spec(spec: dict):
    from repro.events.store import ShardedTraceStore
    from repro.events.transport import transport_from_spec

    return ShardedTraceStore.open(transport_from_spec(spec))


@dataclass(frozen=True)
class PartitionTask:
    """One schedulable unit of fold work: a contiguous shard range.

    The picklable twin of :class:`~repro.events.stream.StreamPartition`
    that does not hold the stream itself — what crosses a process
    boundary (the process engine's spawn arguments) or lands in a task
    queue (one blob per task, for the distributed engine).  ``index`` is
    the task's position in partition order, which is the order the folded
    carries must merge back in.
    """

    index: int
    lo: int
    hi: int
    data_op_offset: int
    num_events: int


def partition_tasks(store, n: int) -> list[PartitionTask]:
    """Cut a store into at most ``n`` :class:`PartitionTask` units.

    Mirrors :meth:`~repro.events.store.ShardedTraceStore.partitions` but
    returns the detached task records.  The degenerate cases — one
    partition or an unpartitionable stream — come back as the empty list,
    which every engine treats as "run serially".
    """
    parts = store.partitions(n)
    if len(parts) <= 1:
        return []
    return [
        PartitionTask(
            index=i,
            lo=part.lo,
            hi=part.hi,
            data_op_offset=part.data_op_offset,
            num_events=part.num_events,
        )
        for i, part in enumerate(parts)
    ]


def fold_store_task(
    spec: dict, task: PartitionTask, pass_specs: tuple
) -> list[StreamingPass]:
    """Worker entry point: open the store from its spec, fold one task.

    Runs wherever the scheduling engine put it — a process-pool worker, a
    distributed worker on another machine — and everything it touches
    beyond the arguments is read through the rebuilt transport; only the
    folded carries return.
    """
    store = _open_store_from_spec(spec)
    partition = StreamPartition(
        store, task.lo, task.hi, task.data_op_offset, task.num_events
    )
    return _fold_partition(pass_specs, partition)


def _finalize_store_pass(spec: dict, pass_: StreamingPass):
    """Process-worker entry point: run one pass's finalize against the store.

    Finalize may re-scan the shards holding finding rows (targeted
    materialisation); running it here keeps that scan — the last
    GIL-bound stage of an analysis — off the parent process.  The merged
    carry travels in, the finished findings travel out.
    """
    return pass_.finalize(_open_store_from_spec(spec))


def _process_context():
    # fork keeps worker start-up (and the numpy import) off the critical
    # path, but it is only dependable on Linux — forked children crash in
    # Apple frameworks on macOS (why CPython dropped it as the default
    # there) — so elsewhere prefer forkserver, then portable spawn.
    methods = multiprocessing.get_all_start_methods()
    if sys.platform.startswith("linux") and "fork" in methods:
        return multiprocessing.get_context("fork")
    if "forkserver" in methods:
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context("spawn")


class ProcessEngine:
    """Partitioned folds on a *warm* pool of worker processes.

    The only backend whose fold work scales past one core — and the only
    one with a requirement on the stream: it must be a
    :class:`~repro.events.store.ShardedTraceStore` (over any transport),
    because workers re-open it from its transport spec rather than
    receive events.

    The per-task constants the old spawn-per-run submission paid are all
    amortised here:

    * workers come from a :class:`~repro.core.pool.WarmWorkerPool` — each
      process spawns once and folds many partitions (the store is cut
      into ``jobs * tasks_per_worker`` tasks, so reuse happens within a
      single run, not only across runs);
    * each worker opens the store once and keeps it across tasks;
    * decoded shards are published to a
      :class:`~repro.events.shardcache.SharedShardCache` so every shard
      blob is parsed exactly once across the whole pool, everything else
      reading zero-copy views;
    * carries travel as :mod:`repro.core.carrycodec` payloads, not
      pickles.

    Finalize runs on the same pool (merged carries shipped out once more)
    so the materialisation scans — the last GIL-bound stage — stay off
    the parent process and hit the already-shared shards.

    With ``keep_pool=True`` the pool, the per-worker stores and the shard
    cache survive across ``run()`` calls (close with :meth:`close` or use
    the engine as a context manager).  After every run :attr:`stats`
    holds the overhead breakdown the engine benchmarks record.
    """

    name = "process"

    #: Options addressable from an ``EngineConfig`` spec string
    #: (``"process:keep_pool=on,tasks_per_worker=8"``).
    config_options = {
        "keep_pool": _opt_bool,
        "tasks_per_worker": _opt_int,
    }

    def __init__(self, *, keep_pool: bool = False, tasks_per_worker: int = 4) -> None:
        if tasks_per_worker < 1:
            raise ValueError("tasks_per_worker must be at least 1")
        self.keep_pool = keep_pool
        self.tasks_per_worker = tasks_per_worker
        self._pool = None
        self._cache = None
        self._cache_key = None
        self._cache_shards = 0
        self._spawned_total = 0
        #: overhead breakdown of the most recent run (empty before any,
        #: or when the run degraded to the serial engine)
        self.stats: dict = {}

    # ------------------------------------------------------------------ #
    def run(self, specs, stream, *, jobs: int = 1) -> list:
        _check_jobs(jobs)
        from repro.events.store import ShardedTraceStore

        if not isinstance(stream, ShardedTraceStore):
            raise TypeError(
                "the process engine sends transport specs to its workers "
                "and requires a ShardedTraceStore; shard the trace first "
                "(shard_trace / `ompdataperf trace shard`) or use the "
                "serial or thread engine"
            )
        # Oversubscribe partitions over workers: task count is what warm
        # reuse amortises against.  jobs == 1 keeps its historical meaning
        # (no partitioning — run serially).
        requested = jobs if jobs == 1 else jobs * self.tasks_per_worker
        tasks = partition_tasks(stream, requested)
        if not tasks:
            if not self.keep_pool:
                self.close()
            return self._run_degraded_serial(specs, stream, jobs)
        specs = tuple(specs)
        spec = stream.transport.spec()
        try:
            pool, spawn_seconds_now = self._ensure_pool(min(jobs, len(tasks)))
            cache_spec = self._ensure_cache(stream)
            fold_jobs = {
                pool.submit_fold(spec, cache_spec, task, specs): task
                for task in tasks
            }
            results = pool.collect(fold_jobs)
            ordered = sorted(fold_jobs, key=lambda job: fold_jobs[job].index)
            from repro.core.carrycodec import decode_carries, encode_carries

            chains = [decode_carries(results[job][0]) for job in ordered]
            task_stats = [results[job][1] for job in ordered]
            merged = _merge_partition_carries(chains)
            finalize_jobs = [
                pool.submit_finalize(spec, cache_spec, encode_carries([pass_]))
                for pass_ in merged
            ]
            finalize_results = pool.collect(finalize_jobs)
            findings = [finalize_results[job][0] for job in finalize_jobs]
            task_stats += [finalize_results[job][1] for job in finalize_jobs]
            self.stats = self._build_stats(task_stats, len(tasks), spawn_seconds_now)
            return findings
        except BaseException:
            # Any failure — a dead worker, a KeyboardInterrupt mid-merge —
            # tears the pool down and unlinks every shared segment, even
            # in keep-pool mode: leaked /dev/shm entries are never an
            # acceptable failure mode.
            self.close()
            raise
        finally:
            if not self.keep_pool:
                self.close()

    def _run_degraded_serial(self, specs, stream, jobs: int) -> list:
        """Serial fallback (``jobs == 1`` or an unpartitionable store).

        Reports the same overhead breakdown as the pooled path by diffing
        the store's own counters around the run — so ``BENCH_engine.json``
        gets a real spawn/open/decode/map/fold block at one worker instead
        of an empty one.
        """
        from time import perf_counter

        decode0 = stream.decode_seconds
        count0 = stream.decode_count
        hits0 = stream.cache_hits
        map0 = stream.map_seconds
        mapc0 = stream.map_count
        started = perf_counter()
        findings = SerialEngine().run(specs, stream, jobs=jobs)
        wall = perf_counter() - started
        decode_seconds = stream.decode_seconds - decode0
        map_seconds = stream.map_seconds - map0
        overhead = decode_seconds + map_seconds
        self.stats = {
            "spawn_count": self._spawned_total,
            "spawn_seconds": 0.0,
            "tasks": 1,
            "workers": 0,
            "pool_reuse": 0,
            "open_seconds": 0.0,
            "decode_seconds": decode_seconds,
            "decode_count": stream.decode_count - count0,
            "cache_hits": stream.cache_hits - hits0,
            "map_seconds": map_seconds,
            "map_count": stream.map_count - mapc0,
            "fold_seconds": max(0.0, wall - overhead),
            "overhead_seconds": overhead,
            "overhead_per_task": overhead,
        }
        return findings

    # ------------------------------------------------------------------ #
    def _ensure_pool(self, workers: int):
        from repro.core.pool import WarmWorkerPool

        if self._pool is not None and self._pool.num_workers != workers:
            self._close_pool()
        if self._pool is None:
            self._pool = WarmWorkerPool(workers, mp_context=_process_context())
            self._spawned_total += self._pool.spawn_count
            return self._pool, self._pool.spawn_seconds
        return self._pool, 0.0

    def _ensure_cache(self, stream) -> Optional[dict]:
        from repro.events.shardcache import SharedShardCache

        key = _store_identity(stream.transport.spec())
        if self._cache is not None and self._cache_key != key:
            self._close_cache()
        if self._cache is None:
            self._cache = SharedShardCache()
            self._cache_key = key
            self._cache_shards = 0
        self._cache_shards = max(self._cache_shards, stream.num_shards)
        return self._cache.spec()

    def _build_stats(self, task_stats, num_tasks: int, spawn_seconds: float) -> dict:
        open_seconds = sum(s["open_seconds"] for s in task_stats)
        decode_seconds = sum(s["decode_seconds"] for s in task_stats)
        map_seconds = sum(s["map_seconds"] for s in task_stats)
        fold_seconds = sum(s["fold_seconds"] for s in task_stats)
        overhead = spawn_seconds + open_seconds + decode_seconds + map_seconds
        return {
            "spawn_count": self._spawned_total,
            "spawn_seconds": spawn_seconds,
            "tasks": num_tasks,
            "workers": len({s["worker"] for s in task_stats}),
            "pool_reuse": sum(1 for s in task_stats if s["task_no"] > 1),
            "open_seconds": open_seconds,
            "decode_seconds": decode_seconds,
            "decode_count": sum(s["decode_count"] for s in task_stats),
            "cache_hits": sum(s["cache_hits"] for s in task_stats),
            "map_seconds": map_seconds,
            "map_count": sum(s["map_count"] for s in task_stats),
            "fold_seconds": fold_seconds,
            "overhead_seconds": overhead,
            "overhead_per_task": overhead / max(1, num_tasks),
        }

    def _close_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def _close_cache(self) -> None:
        cache, self._cache = self._cache, None
        self._cache_key = None
        if cache is not None:
            cache.cleanup(self._cache_shards)
        self._cache_shards = 0

    def close(self) -> None:
        """Shut the pool down and unlink every shared segment (idempotent)."""
        self._close_pool()
        self._close_cache()

    def __enter__(self) -> "ProcessEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _store_identity(spec: dict):
    """Hashable identity of a store's transport spec (cache invalidation)."""
    kind = spec.get("kind")
    if kind == "prefix":
        return (kind, spec.get("prefix"), _store_identity(spec["inner"]))
    if "path" in spec:
        return (kind, str(spec["path"]))
    return (kind, id(spec.get("transport")))


#: Engine registry, keyed by the names the CLI exposes.  The distributed
#: engine registers itself here when :mod:`repro.core.distributed` is
#: imported (``repro.core``'s package init does, so the registry is
#: complete before any CLI or test reads it).
ENGINES: dict[str, type] = {
    SerialEngine.name: SerialEngine,
    ThreadEngine.name: ThreadEngine,
    ProcessEngine.name: ProcessEngine,
}


def available_engines() -> list[str]:
    return sorted(ENGINES)


def engine_registry_name(engine) -> str:
    """The registry name of an engine instance ("serial", "thread", ...)."""
    return getattr(type(engine), "name", type(engine).__name__)


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def process_engine_fallback_reason(jobs: Optional[int] = None) -> Optional[str]:
    """Why the process engine would not help here, or ``None`` if it can.

    The process engine exists to scale GIL-bound folds across cores; on a
    single-core machine its workers only add fork/pickle overhead (the
    BENCH_engine record shows thread *and* process slower than serial at
    one core), and on a platform where multiprocessing cannot start
    workers at all it simply fails.  Callers that prefer degradation over
    surprises (the CLI) check this before resolving ``"process"``.
    """
    if jobs is not None and jobs < 2:
        return "a single analysis worker was requested (--jobs 1)"
    cores = _usable_cores()
    if cores < 2:
        return (
            f"only {cores} usable core{'s' if cores != 1 else ''}: process "
            "workers would oversubscribe the machine"
        )
    try:
        methods = multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - broken multiprocessing backend
        methods = []
    if not methods:
        return "this platform has no multiprocessing start method (no fork or spawn)"
    return None


def resolve_engine(engine, *, jobs: Optional[int] = None, degrade: bool = False) -> ExecutionEngine:
    """Resolve an engine request (name, spec string, config or instance).

    Accepts a registry name (``"serial"``, ``"thread"``, ``"process"``,
    ``"distributed"``), a spec string with options
    (``"distributed:claim_batch=4,lease_timeout=10,speculate=on"``), an
    :class:`EngineConfig`, an :class:`ExecutionEngine` instance, or
    ``None`` for the default serial engine.  With ``degrade=True`` a
    ``"process"`` request on a machine where it cannot help — a single
    usable core, one worker, or a platform without a multiprocessing
    start method — emits a :class:`RuntimeWarning` and falls back to the
    serial engine instead of oversubscribing (findings are identical on
    every engine, so only throughput is at stake).

    Stable stats contract: after ``run()`` every engine exposes a
    ``stats`` dict (possibly empty).  Keys, once published in a release,
    are only ever *added*, never renamed or removed — callers may rely on
    ``stats.get("tasks")``, the process engine's overhead breakdown
    (``spawn/open/decode/map/fold_seconds``, ``overhead_seconds``) and
    the distributed engine's coordinator block (``requeued``,
    ``respawned``, ``speculative_launches``, ``debris_blobs``,
    ``peak_unmerged_chains``, ``duplicate_results``, ``hints``).  The
    structured way to read them is
    :attr:`repro.core.analysis.StreamAnalysisReport.engine_stats`.
    """
    if engine is None:
        return SerialEngine()
    if isinstance(engine, str):
        engine = EngineConfig.parse(engine)
    if isinstance(engine, EngineConfig):
        if engine.name == ProcessEngine.name and degrade:
            reason = process_engine_fallback_reason(jobs)
            if reason is not None:
                warnings.warn(
                    f"the process engine cannot speed this machine up "
                    f"({reason}); falling back to the serial engine",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return SerialEngine()
        return engine.build()
    if isinstance(engine, ExecutionEngine):
        return engine
    raise TypeError(f"cannot use {type(engine).__name__} as an execution engine")
