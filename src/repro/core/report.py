"""Human-readable report rendering.

The output format follows the excerpt in the paper's artifact appendix
(Section A.6): one section per issue category with per-finding rows showing
the share of program time attributable to the finding, the volume involved,
the repeat count and the source attribution, followed by an overall
optimization-potential summary.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.dwarf.attribution import format_location
from repro.util.tables import Table, format_bytes, format_seconds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.analysis import AnalysisReport


def _percent_of_runtime(seconds: float, runtime: float) -> str:
    if runtime <= 0.0:
        return "0.00%"
    return f"{100.0 * seconds / runtime:.2f}%"


def render_duplicate_section(report: "AnalysisReport") -> str:
    table = Table(
        ["time (%)", "wasted time", "count", "bytes", "dest device", "source location"],
        title="OpenMP Duplicate Target Data Transfer Analysis",
    )
    runtime = report.trace.runtime
    for group in sorted(report.duplicate_groups, key=lambda g: g.wasted_time, reverse=True):
        representative = group.events[1]
        table.add_row(
            [
                _percent_of_runtime(group.wasted_time, runtime),
                format_seconds(group.wasted_time),
                group.num_redundant,
                format_bytes(group.nbytes),
                group.dest_device_num,
                format_location(representative.codeptr, report.debug_info),
            ]
        )
    if not report.duplicate_groups:
        return table.render() + "\nNo duplicate data transfers detected."
    return table.render()


def render_round_trip_section(report: "AnalysisReport") -> str:
    table = Table(
        ["time (%)", "wasted time", "trips", "bytes", "route", "source location"],
        title="OpenMP Round-Trip Target Data Transfer Analysis",
    )
    runtime = report.trace.runtime
    for group in sorted(report.round_trip_groups, key=lambda g: g.wasted_time, reverse=True):
        representative = group.trips[0].rx_event
        route = f"dev{group.src_device_num} <-> dev{group.dest_device_num}"
        table.add_row(
            [
                _percent_of_runtime(group.wasted_time, runtime),
                format_seconds(group.wasted_time),
                group.num_trips,
                format_bytes(group.trips[0].tx_event.nbytes),
                route,
                format_location(representative.codeptr, report.debug_info),
            ]
        )
    if not report.round_trip_groups:
        return table.render() + "\nNo round-trip data transfers detected."
    return table.render()


def render_repeated_alloc_section(report: "AnalysisReport") -> str:
    table = Table(
        ["time (%)", "wasted time", "count", "bytes", "device", "source location"],
        title="OpenMP Repeated Device Memory Allocation Analysis",
    )
    runtime = report.trace.runtime
    for group in sorted(report.repeated_alloc_groups, key=lambda g: g.wasted_time, reverse=True):
        representative = group.allocations[1].alloc_event
        table.add_row(
            [
                _percent_of_runtime(group.wasted_time, runtime),
                format_seconds(group.wasted_time),
                group.num_redundant,
                format_bytes(group.nbytes),
                group.device_num,
                format_location(representative.codeptr, report.debug_info),
            ]
        )
    if not report.repeated_alloc_groups:
        return table.render() + "\nNo repeated device memory allocations detected."
    return table.render()


def render_unused_alloc_section(report: "AnalysisReport") -> str:
    table = Table(
        ["time (%)", "wasted time", "bytes", "device", "source location"],
        title="OpenMP Unused Device Memory Allocation Analysis",
    )
    runtime = report.trace.runtime
    for finding in sorted(report.unused_allocations, key=lambda f: f.wasted_time, reverse=True):
        table.add_row(
            [
                _percent_of_runtime(finding.wasted_time, runtime),
                format_seconds(finding.wasted_time),
                format_bytes(finding.nbytes),
                finding.device_num,
                format_location(finding.pair.alloc_event.codeptr, report.debug_info),
            ]
        )
    if not report.unused_allocations:
        return table.render() + "\nNo unused device memory allocations detected."
    return table.render()


def render_unused_transfer_section(report: "AnalysisReport") -> str:
    table = Table(
        ["time (%)", "wasted time", "bytes", "device", "reason", "source location"],
        title="OpenMP Unused Data Transfer Analysis",
    )
    runtime = report.trace.runtime
    for finding in sorted(report.unused_transfers, key=lambda f: f.wasted_time, reverse=True):
        table.add_row(
            [
                _percent_of_runtime(finding.wasted_time, runtime),
                format_seconds(finding.wasted_time),
                format_bytes(finding.nbytes),
                finding.device_num,
                finding.reason,
                format_location(finding.event.codeptr, report.debug_info),
            ]
        )
    if not report.unused_transfers:
        return table.render() + "\nNo unused data transfers detected."
    return table.render()


def render_potential_section(report: "AnalysisReport") -> str:
    potential = report.potential
    lines = [
        "=== Optimization Potential ===",
        f"measured runtime          : {format_seconds(potential.measured_runtime)}",
        f"predicted time savings    : {format_seconds(potential.predicted_time_saved)} "
        f"({100.0 * potential.predicted_saved_fraction:.1f}% of runtime)",
        f"predicted runtime         : {format_seconds(potential.predicted_runtime)}",
        f"predicted speedup         : {potential.predicted_speedup:.2f}x",
        f"removable data operations : {potential.predicted_ops_saved}",
        f"removable transfer volume : {format_bytes(potential.predicted_bytes_saved)}",
    ]
    return "\n".join(lines)


def render_summary_line(report: "AnalysisReport") -> str:
    counts = report.counts.as_dict()
    rendered = ", ".join(f"{name}={value}" for name, value in counts.items())
    program = report.trace.program_name or "<program>"
    return f"{program}: {rendered}"


def render_report(report: "AnalysisReport") -> str:
    """Render the full multi-section analysis report."""
    sections = [
        render_summary_line(report),
        render_duplicate_section(report),
        render_round_trip_section(report),
        render_repeated_alloc_section(report),
        render_unused_alloc_section(report),
        render_unused_transfer_section(report),
        render_potential_section(report),
    ]
    return "\n\n".join(sections)
