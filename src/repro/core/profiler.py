"""The high-level OMPDataPerf entry point.

Usage mirrors the real tool's ``ompdataperf ./program args`` workflow, except
that "programs" here are Python callables written against the offload
runtime simulator::

    tool = OMPDataPerf()
    result = tool.profile(my_program, program_name="bfs")
    print(result.analysis.render())

``profile`` runs the program with the trace collector attached (and its
overhead charged to the virtual clock); ``run_uninstrumented`` runs the same
program without any tool, which is how the overhead experiment obtains its
baseline.  ``analyze`` post-processes a previously recorded trace, the
offline half of the tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.analysis import (
    AnalysisReport,
    StreamAnalysisReport,
    analyze_stream,
    analyze_trace,
)
from repro.core.collector import TraceCollector
from repro.core.overhead import OverheadModel
from repro.dwarf.debuginfo import DebugInfoRegistry
from repro.events.columnar import ColumnarTrace
from repro.events.store import ShardedTraceStore, TraceWriter
from repro.events.stream import DEFAULT_SHARD_EVENTS
from repro.events.trace import Trace
from repro.events.validation import validate_stream, validate_trace
from repro.hashing import DEFAULT_HASHER
from repro.hashing.base import Hasher
from repro.omp.costmodel import CostModel
from repro.omp.runtime import OffloadRuntime
from repro.ompt.interface import OmptInterface

#: A "program": a callable that drives an :class:`OffloadRuntime`.
Program = Callable[[OffloadRuntime], None]


@dataclass
class ProfileResult:
    """Everything produced by one instrumented run.

    ``trace`` is the collector's columnar store; its Trace-compatible read
    API (and ``to_trace()``) covers consumers that want object events.
    """

    trace: ColumnarTrace
    analysis: AnalysisReport
    #: virtual runtime of the instrumented run (includes tool overhead)
    instrumented_runtime: float
    #: portion of the instrumented runtime attributed to the tool
    tool_overhead: float
    collector: TraceCollector
    debug_info: DebugInfoRegistry

    @property
    def native_runtime_estimate(self) -> float:
        """Instrumented runtime with the tool's own overhead subtracted."""
        return max(self.instrumented_runtime - self.tool_overhead, 0.0)

    @property
    def space_overhead_bytes(self) -> int:
        return self.trace.space_overhead_bytes()

    def render_report(self) -> str:
        return self.analysis.render()


@dataclass
class StreamingProfileResult:
    """Everything produced by one bounded-memory instrumented run.

    ``store`` is the on-disk sharded trace the collector flushed into;
    ``analysis`` holds the findings of the incremental detector passes.
    """

    store: ShardedTraceStore
    analysis: StreamAnalysisReport
    instrumented_runtime: float
    tool_overhead: float
    collector: TraceCollector
    debug_info: DebugInfoRegistry

    @property
    def native_runtime_estimate(self) -> float:
        return max(self.instrumented_runtime - self.tool_overhead, 0.0)

    @property
    def space_overhead_bytes(self) -> int:
        return self.store.space_overhead_bytes()

    def render_report(self) -> str:
        return self.analysis.render()


class OMPDataPerf:
    """Portable, low-overhead detector of inefficient data-mapping patterns."""

    def __init__(
        self,
        *,
        hasher: str | Hasher = DEFAULT_HASHER,
        overhead_model: Optional[OverheadModel] = OverheadModel(),
        audit_collisions: bool = False,
        validate: bool = True,
    ) -> None:
        self.hasher = hasher
        self.overhead_model = overhead_model
        self.audit_collisions = audit_collisions
        self.validate = validate

    # ------------------------------------------------------------------ #
    def attach(self, runtime: OffloadRuntime) -> TraceCollector:
        """Attach a fresh trace collector to an existing runtime."""
        collector = TraceCollector(
            hasher=self.hasher,
            overhead_model=self.overhead_model,
            audit_collisions=self.audit_collisions,
        )
        runtime.ompt.connect_tool(collector)
        return collector

    def profile(
        self,
        program: Program,
        *,
        num_devices: int = 1,
        cost_model: Optional[CostModel] = None,
        device_memory_capacity: int = 40 * (1 << 30),
        program_name: Optional[str] = None,
    ) -> ProfileResult:
        """Run ``program`` with the collector attached and analyze the trace."""
        ompt = OmptInterface()
        collector = TraceCollector(
            hasher=self.hasher,
            overhead_model=self.overhead_model,
            audit_collisions=self.audit_collisions,
        )
        ompt.connect_tool(collector)
        runtime = OffloadRuntime(
            num_devices=num_devices,
            cost_model=cost_model,
            ompt=ompt,
            device_memory_capacity=device_memory_capacity,
            program_name=program_name,
        )
        program(runtime)
        total_runtime = runtime.finish()
        trace = collector.finish_trace(total_runtime=total_runtime, program_name=program_name)
        if self.validate:
            validate_trace(trace)
        analysis = analyze_trace(trace, debug_info=runtime.debug_info)
        return ProfileResult(
            trace=trace,
            analysis=analysis,
            instrumented_runtime=total_runtime,
            tool_overhead=runtime.clock.tool_overhead,
            collector=collector,
            debug_info=runtime.debug_info,
        )

    def profile_streaming(
        self,
        program: Program,
        store_path,
        *,
        shard_events: int = DEFAULT_SHARD_EVENTS,
        num_devices: int = 1,
        cost_model: Optional[CostModel] = None,
        device_memory_capacity: int = 40 * (1 << 30),
        program_name: Optional[str] = None,
        jobs: int = 1,
        engine: str = "serial",
    ) -> "StreamingProfileResult":
        """Run ``program`` with the collector flushing shards to disk.

        Ingest memory stays O(``shard_events``) regardless of trace length;
        the analysis then runs the incremental detectors over the resulting
        :class:`~repro.events.store.ShardedTraceStore` on the chosen
        execution engine (``engine="process"`` with ``jobs > 1`` folds
        disjoint shard ranges on worker processes — see
        :mod:`repro.core.engine`).  ``engine`` accepts the same spec
        strings as :func:`repro.core.analysis.analyze_stream`
        (``"distributed:claim_batch=4,speculate=on"``); the returned
        result's ``analysis`` is a
        :class:`~repro.core.analysis.StreamAnalysisReport` carrying the
        engine's name, stats block, and timings.
        """
        writer = TraceWriter(
            store_path,
            shard_events=shard_events,
            num_devices=num_devices,
            program_name=program_name,
        )
        ompt = OmptInterface()
        collector = TraceCollector(
            hasher=self.hasher,
            overhead_model=self.overhead_model,
            audit_collisions=self.audit_collisions,
            writer=writer,
        )
        ompt.connect_tool(collector)
        runtime = OffloadRuntime(
            num_devices=num_devices,
            cost_model=cost_model,
            ompt=ompt,
            device_memory_capacity=device_memory_capacity,
            program_name=program_name,
        )
        program(runtime)
        total_runtime = runtime.finish()
        store = collector.finish_store(
            total_runtime=total_runtime, program_name=program_name
        )
        if self.validate:
            validate_stream(store)
        analysis = analyze_stream(
            store, debug_info=runtime.debug_info, jobs=jobs, engine=engine
        )
        return StreamingProfileResult(
            store=store,
            analysis=analysis,
            instrumented_runtime=total_runtime,
            tool_overhead=runtime.clock.tool_overhead,
            collector=collector,
            debug_info=runtime.debug_info,
        )

    def analyze(
        self,
        trace: Trace | ColumnarTrace,
        *,
        debug_info: Optional[DebugInfoRegistry] = None,
    ) -> AnalysisReport:
        """Offline analysis of a previously recorded (or loaded) trace."""
        if self.validate:
            validate_trace(trace)
        return analyze_trace(trace, debug_info=debug_info)

    def analyze_stream(
        self,
        stream,
        *,
        debug_info: Optional[DebugInfoRegistry] = None,
        jobs: int = 1,
        engine: str = "serial",
    ) -> StreamAnalysisReport:
        """Offline incremental analysis of an event stream (sharded store)."""
        if self.validate:
            validate_stream(stream)
        return analyze_stream(
            stream, debug_info=debug_info, jobs=jobs, engine=engine
        )


def run_uninstrumented(
    program: Program,
    *,
    num_devices: int = 1,
    cost_model: Optional[CostModel] = None,
    device_memory_capacity: int = 40 * (1 << 30),
    program_name: Optional[str] = None,
) -> float:
    """Run a program with no tool attached and return its virtual runtime.

    This is the "native execution" baseline against which the instrumented
    run is compared when reproducing the runtime-overhead results (Figure 2).
    """
    runtime = OffloadRuntime(
        num_devices=num_devices,
        cost_model=cost_model,
        device_memory_capacity=device_memory_capacity,
        program_name=program_name,
    )
    program(runtime)
    return runtime.finish()
