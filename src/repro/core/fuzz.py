"""Hostile-trace differential fuzzing: every transport × every engine.

The correctness spine of this reproduction is the differential oracle —
object, columnar, streaming, partitioned-engine and distributed analysis
must agree bit for bit.  The hypothesis suite holds that over *small*
generated traces; this module drives the same oracle over
:mod:`repro.events.hostile` adversarial traces, written out with
shard-boundary-hostile layouts (random cut sizes, mixed shard formats,
spliced empty shards), across every transport × engine combination:

========================  ===================================================
transport                 store layout analysed
========================  ===================================================
``local``                 hostile store in a scratch directory
``zip``                   the same store in a single ``.zip`` archive
``fake-object-store``     in-memory S3-like transport (claims copy+delete)
``s3``                    a real S3 endpoint — included automatically when
                          ``OMPDATAPERF_S3_TEST_ENDPOINT`` is set (MinIO in
                          CI); the distributed leg also backs its *queue*
                          on s3
========================  ===================================================

Each case derives entirely from one integer seed, so every failure is
reproducible with a single command printed next to it::

    PYTHONPATH=src python -m repro.cli fuzz --seed <case_seed> --cases 1 \\
        --events <max_events> --transports <kind> --engines <engine>

The nightly CI leg runs a date-derived seed sweep and uploads the JSON
report written by :func:`run_fuzz_sweep`; ``OMPDATAPERF_FUZZ_SEED`` /
``OMPDATAPERF_FUZZ_CASES`` override the sweep from the environment.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import traceback
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.core.analysis import analyze_stream, analyze_trace
from repro.core.distributed import DistributedEngine
from repro.events.hostile import make_hostile_trace, write_hostile_store
from repro.events.stream import as_event_stream
from repro.events.transport import FakeObjectStoreTransport
from repro.events.validation import validate_trace

#: Environment knobs the nightly leg honours.
SEED_ENV = "OMPDATAPERF_FUZZ_SEED"
CASES_ENV = "OMPDATAPERF_FUZZ_CASES"

#: A real S3 endpoint (MinIO) to include the ``s3`` transport in sweeps.
S3_ENDPOINT_ENV = "OMPDATAPERF_S3_TEST_ENDPOINT"

DEFAULT_CASES = 5
DEFAULT_MAX_EVENTS = 20_000

#: Above this event count the object-mode oracle leg is skipped (it
#: materialises per-event dataclasses; the columnar baseline stands in).
DEFAULT_ORACLE_LIMIT = 60_000

BASE_TRANSPORTS = ("local", "zip", "fake-object-store")
ALL_ENGINES = ("serial", "thread", "process", "distributed")

#: The report fields the differential oracle holds bit-identical.
REPORT_FIELDS = (
    "counts",
    "potential",
    "duplicate_groups",
    "round_trip_groups",
    "repeated_alloc_groups",
    "unused_allocations",
    "unused_transfers",
)


def default_transports() -> tuple[str, ...]:
    """The sweep's transports: the three local kinds, plus ``s3`` when a
    test endpoint is configured."""
    if os.environ.get(S3_ENDPOINT_ENV):
        return BASE_TRANSPORTS + ("s3",)
    return BASE_TRANSPORTS


def diff_reports(expected, actual) -> list[str]:
    """Names of the report fields on which two analysis reports disagree."""
    return [
        name
        for name in REPORT_FIELDS
        if getattr(expected, name) != getattr(actual, name)
    ]


@dataclass(frozen=True)
class FuzzCase:
    """One seeded fuzz case; every parameter derives from ``seed`` alone."""

    seed: int
    num_events: int
    min_shard_events: int
    max_shard_events: int

    @classmethod
    def derive(cls, seed: int, max_events: int) -> "FuzzCase":
        rng = np.random.default_rng(seed)
        num_events = int(rng.integers(max(200, max_events // 4), max_events + 1))
        lo = int(rng.integers(16, 256))
        hi = int(rng.integers(2 * lo, max(2 * lo + 1, min(8192, num_events) + 1)))
        return cls(
            seed=seed,
            num_events=num_events,
            min_shard_events=lo,
            max_shard_events=hi,
        )


def derive_cases(base_seed: int, cases: int, max_events: int) -> list[FuzzCase]:
    """Case seeds are ``base_seed + index``: reproducing case *i* of a sweep
    needs only its own seed (``--seed base+i --cases 1``)."""
    return [FuzzCase.derive(base_seed + i, max_events) for i in range(cases)]


@dataclass
class FuzzFailure:
    """One differential mismatch (or crash) with its reproduction command."""

    seed: int
    max_events: int
    transport: str
    engine: str
    stage: str
    message: str
    repro: str

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class FuzzReport:
    """The sweep summary :func:`run_fuzz_sweep` returns (and writes as JSON)."""

    seed: int
    cases: int
    max_events: int
    transports: tuple[str, ...]
    engines: tuple[str, ...]
    combos_checked: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "cases": self.cases,
            "max_events": self.max_events,
            "transports": list(self.transports),
            "engines": list(self.engines),
            "combos_checked": self.combos_checked,
            "num_failures": len(self.failures),
            "failures": [f.to_dict() for f in self.failures],
        }


def repro_command(
    seed: int, max_events: int, transport: str = "", engine: str = ""
) -> str:
    """The one command that replays a failing case exactly."""
    cmd = (
        f"PYTHONPATH=src python -m repro.cli fuzz --seed {seed} "
        f"--cases 1 --events {max_events}"
    )
    if transport:
        cmd += f" --transports {transport}"
    if engine:
        cmd += f" --engines {engine}"
    return cmd


def _open_s3_transport(prefix: str, *, create: bool):
    from repro.events.transport_s3 import S3ObjectStoreTransport

    endpoint: Optional[str] = os.environ[S3_ENDPOINT_ENV]
    if endpoint == "moto":
        # In-process moto mock: requests must go to the default AWS
        # endpoint (which moto patches), not a real URL.
        endpoint = None
    bucket = os.environ.get("OMPDATAPERF_S3_TEST_BUCKET", "ompdataperf-fuzz")
    return S3ObjectStoreTransport(
        bucket, prefix, endpoint_url=endpoint, create=create
    )


def _store_destination(kind: str, scratch: Path, run_id: str, case_seed: int):
    if kind == "local":
        return scratch / "store"
    if kind == "zip":
        return scratch / "store.zip"
    if kind == "fake-object-store":
        return FakeObjectStoreTransport()
    if kind == "s3":
        return _open_s3_transport(f"fuzz/{run_id}/case-{case_seed}/store", create=True)
    raise ValueError(f"unknown fuzz transport kind {kind!r}")


def _engine_for(kind: str, engine: str, run_id: str, case_seed: int):
    """Resolve the engine argument for one transport × engine combo.

    The distributed leg backs its task queue on the same *class* of
    storage as the store: an in-memory object store gets an object-store
    queue (claims exercise copy-then-delete), the s3 transport gets an
    s3 queue under its own prefix, and the file-backed kinds let the
    engine spawn its usual scratch directory queue.
    """
    if engine != "distributed":
        return engine
    queue = None
    if kind == "fake-object-store":
        queue = FakeObjectStoreTransport()
    elif kind == "s3":
        queue = _open_s3_transport(
            f"fuzz/{run_id}/case-{case_seed}/queue", create=True
        )
    return DistributedEngine(
        queue=queue,
        workers=2,
        worker_mode="thread",
        poll_interval=0.01,
        run_timeout=300.0,
    )


def run_fuzz_sweep(
    *,
    seed: int,
    cases: int = DEFAULT_CASES,
    max_events: int = DEFAULT_MAX_EVENTS,
    transports: Optional[tuple[str, ...]] = None,
    engines: tuple[str, ...] = ALL_ENGINES,
    oracle_limit: int = DEFAULT_ORACLE_LIMIT,
    report_path: Optional[str | Path] = None,
    say: Callable[[str], None] = print,
) -> FuzzReport:
    """Run the five-way differential oracle over hostile traces.

    For each seeded case: generate an adversarial trace, validate it,
    establish the columnar baseline (cross-checked against the object-mode
    oracle when small enough), check the in-memory streaming leg, then
    write the trace as a shard-boundary-hostile store on every transport
    and compare every engine's analysis against the baseline.  Mismatches
    and crashes are recorded with the single command that reproduces them.
    """
    transports = tuple(transports) if transports else default_transports()
    engines = tuple(engines)
    run_id = uuid.uuid4().hex[:8]
    report = FuzzReport(
        seed=seed,
        cases=cases,
        max_events=max_events,
        transports=transports,
        engines=engines,
    )

    def fail(
        case: FuzzCase, transport: str, engine: str, stage: str, message: str
    ) -> None:
        failure = FuzzFailure(
            seed=case.seed,
            max_events=max_events,
            transport=transport,
            engine=engine,
            stage=stage,
            message=message,
            repro=repro_command(case.seed, max_events, transport, engine),
        )
        report.failures.append(failure)
        say(f"FAIL [{stage}] seed={case.seed}: {message}")
        say(f"  reproduce with: {failure.repro}")

    for case in derive_cases(seed, cases, max_events):
        say(
            f"case seed={case.seed}: {case.num_events} events, "
            f"shard cuts {case.min_shard_events}..{case.max_shard_events}"
        )
        try:
            trace = make_hostile_trace(case.num_events, seed=case.seed)
            validate_trace(trace)
            baseline = analyze_trace(trace)
        except Exception:
            fail(case, "", "", "generate", traceback.format_exc(limit=3))
            continue

        if case.num_events <= oracle_limit:
            try:
                mismatch = diff_reports(analyze_trace(trace.to_trace()), baseline)
                if mismatch:
                    fail(
                        case, "", "", "object-oracle",
                        f"columnar disagrees with object oracle on {mismatch}",
                    )
            except Exception:
                fail(case, "", "", "object-oracle", traceback.format_exc(limit=3))
        else:
            say(f"  (object oracle skipped above {oracle_limit} events)")

        try:
            stream = as_event_stream(trace, case.min_shard_events)
            mismatch = diff_reports(baseline, analyze_stream(stream))
            if mismatch:
                fail(case, "", "", "streaming", f"streaming differs on {mismatch}")
        except Exception:
            fail(case, "", "", "streaming", traceback.format_exc(limit=3))

        for kind in transports:
            scratch = Path(tempfile.mkdtemp(prefix="ompdataperf-fuzz-"))
            try:
                try:
                    store = write_hostile_store(
                        trace,
                        _store_destination(kind, scratch, run_id, case.seed),
                        seed=case.seed,
                        min_shard_events=case.min_shard_events,
                        max_shard_events=case.max_shard_events,
                    )
                except Exception:
                    fail(case, kind, "", f"{kind}:write", traceback.format_exc(limit=3))
                    continue
                for engine in engines:
                    stage = f"{kind}:{engine}"
                    try:
                        resolved = _engine_for(kind, engine, run_id, case.seed)
                        result = analyze_stream(store, engine=resolved, jobs=2)
                        mismatch = diff_reports(baseline, result)
                        if mismatch:
                            fail(
                                case, kind, engine, stage,
                                f"analysis differs on {mismatch}",
                            )
                        report.combos_checked += 1
                    except Exception:
                        fail(case, kind, engine, stage, traceback.format_exc(limit=3))
            finally:
                shutil.rmtree(scratch, ignore_errors=True)

    if report_path is not None:
        path = Path(report_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        say(f"fuzz report written to {path}")
    verdict = "OK" if report.ok else f"{len(report.failures)} FAILURE(S)"
    say(
        f"fuzz sweep {verdict}: {report.cases} case(s), "
        f"{report.combos_checked} transport×engine combo(s) checked"
    )
    return report
