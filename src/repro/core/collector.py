"""The OMPT trace collector.

This is the in-process half of OMPDataPerf: a tool that registers the two
required EMI callbacks (``ompt_callback_target_emi`` and
``ompt_callback_target_data_op_emi``, plus the submit callback for kernel
intervals), hashes every transferred payload, and appends fixed-size records
to an in-memory log.  The analysis half (Algorithms 1–5) runs post-mortem on
the resulting :class:`~repro.events.trace.Trace`.

The collector reports its own cost back to the runtime through the callback
return value (seconds of overhead), which the simulator charges to the
virtual clock; that is how the Figure 2 runtime-overhead experiment is
produced from a single instrumented run plus an uninstrumented one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.events.columnar import ColumnarTrace
from repro.events.records import TargetKind
from repro.events.store import ShardedTraceStore, TraceWriter
from repro.hashing import DEFAULT_HASHER
from repro.hashing.base import Hasher, get_hasher
from repro.hashing.collision import CollisionAuditor
from repro.core.overhead import OverheadModel
from repro.ompt.callbacks import (
    CallbackType,
    Endpoint,
    TargetDataOpRecord,
    TargetRecord,
    TargetSubmitRecord,
)
from repro.ompt.interface import OmptInterface


@dataclass
class _PendingTarget:
    """Bookkeeping for a target region between its BEGIN and END records."""

    kind: TargetKind
    device_num: int
    codeptr_ra: Optional[int]
    begin_time: float
    name: Optional[str] = None
    kernel_interval: Optional[tuple[float, float]] = None


class TraceCollector:
    """OMPT tool that records target and data-op events into a trace.

    Parameters
    ----------
    hasher:
        Content hash used for transferred payloads (name or instance);
        defaults to the package default (the vectorised 64-bit hash).
    overhead_model:
        Time-cost model charged back to the monitored program; pass ``None``
        to model an overhead-free (idealised) tool.
    audit_collisions:
        When true, keep payload copies and verify that no two distinct
        payloads share a hash (Appendix B.1's optional mode — high memory
        cost, only for validation runs).
    writer:
        Optional :class:`~repro.events.store.TraceWriter`.  When given,
        events are appended into the writer instead of the in-memory trace:
        the writer flushes a shard to disk every ``shard_events`` events, so
        ingest runs in O(shard) memory no matter how long the program runs.
        Finish with :meth:`finish_store` instead of :meth:`finish_trace`.
    """

    def __init__(
        self,
        *,
        hasher: str | Hasher = DEFAULT_HASHER,
        overhead_model: Optional[OverheadModel] = OverheadModel(),
        audit_collisions: bool = False,
        writer: Optional[TraceWriter] = None,
    ) -> None:
        self.hasher: Hasher = get_hasher(hasher) if isinstance(hasher, str) else hasher
        self.overhead_model = overhead_model
        self.auditor: Optional[CollisionAuditor] = (
            CollisionAuditor(self.hasher) if audit_collisions else None
        )
        #: events land directly in the structure-of-arrays store: appending
        #: a row into preallocated columns is the Python analogue of the
        #: native tool's fixed-size-record append (no per-event objects).
        #: With a writer attached the sink is the bounded shard buffer
        #: instead, and ``self.trace`` stays empty.
        self.trace = ColumnarTrace(num_devices=0)
        self.writer = writer
        self._sink = writer if writer is not None else self.trace
        self._interface: Optional[OmptInterface] = None
        self._pending_targets: dict[int, _PendingTarget] = {}
        self._next_seq = 0
        self._initialized_devices: set[int] = set()
        self.finalized = False
        #: wall-clock style accounting of the hashing work the collector did
        self.hashed_bytes = 0
        self.hashed_payloads = 0

    # ------------------------------------------------------------------ #
    # OmptTool protocol
    # ------------------------------------------------------------------ #
    def initialize(self, interface: OmptInterface) -> None:
        self._interface = interface
        interface.set_callback(CallbackType.DEVICE_INITIALIZE, self._on_device_initialize)
        interface.set_callback(CallbackType.DEVICE_FINALIZE, self._on_device_finalize)
        interface.set_callback(CallbackType.TARGET_EMI, self._on_target)
        interface.set_callback(CallbackType.TARGET_SUBMIT_EMI, self._on_target_submit)
        interface.set_callback(CallbackType.TARGET_DATA_OP_EMI, self._on_target_data_op)

    def finalize(self) -> None:
        self.finalized = True

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _record_cost(self) -> float:
        if self.overhead_model is None:
            return 0.0
        return self.overhead_model.record_time()

    def _hash_cost(self, nbytes: int) -> float:
        if self.overhead_model is None:
            return 0.0
        return self.overhead_model.hash_time(nbytes)

    # ------------------------------------------------------------------ #
    # Callbacks
    # ------------------------------------------------------------------ #
    def _on_device_initialize(self, device_num: int) -> float:
        self._initialized_devices.add(int(device_num))
        self.trace.num_devices = max(self.trace.num_devices, len(self._initialized_devices))
        return 0.0

    def _on_device_finalize(self, device_num: int) -> float:
        return 0.0

    def _on_target(self, record: TargetRecord) -> float:
        if record.endpoint is Endpoint.BEGIN:
            self._pending_targets[record.target_id] = _PendingTarget(
                kind=record.kind,
                device_num=record.device_num,
                codeptr_ra=record.codeptr_ra,
                begin_time=record.time,
                name=record.name,
            )
            return self._record_cost()

        pending = self._pending_targets.pop(record.target_id, None)
        if pending is None:
            # An END without a BEGIN should not happen; tolerate it quietly
            # the way a defensive native tool would.
            return self._record_cost()

        if pending.kind is TargetKind.TARGET:
            # The event the detectors care about is the kernel execution
            # interval (from the submit callback); fall back to the region
            # interval if the runtime never submitted a kernel.
            start, end = pending.kernel_interval or (pending.begin_time, record.time)
        else:
            start, end = pending.begin_time, record.time

        self._sink.append_target(
            seq=self._seq(),
            kind=pending.kind,
            device_num=pending.device_num,
            start_time=start,
            end_time=end,
            codeptr=pending.codeptr_ra,
            target_id=record.target_id,
            name=pending.name,
        )
        return self._record_cost()

    def _on_target_submit(self, record: TargetSubmitRecord) -> float:
        if record.endpoint is Endpoint.END:
            pending = self._pending_targets.get(record.target_id)
            if pending is not None and record.start_time is not None:
                pending.kernel_interval = (record.start_time, record.end_time or record.time)
        return self._record_cost()

    def _on_target_data_op(self, record: TargetDataOpRecord) -> float:
        if record.endpoint is Endpoint.BEGIN:
            return self._record_cost()

        content_hash: Optional[int] = None
        overhead = self._record_cost()
        if record.optype.is_transfer:
            payload = record.payload
            if payload is None:
                raise ValueError("transfer data-op record arrived without a payload")
            if self.auditor is not None:
                content_hash = self.auditor.observe(payload)
            else:
                content_hash = self.hasher.hash(payload)
            self.hashed_bytes += record.bytes
            self.hashed_payloads += 1
            overhead += self._hash_cost(record.bytes)

        start = record.start_time if record.start_time is not None else record.time
        end = record.end_time if record.end_time is not None else record.time
        self._sink.append_data_op(
            seq=self._seq(),
            kind=record.optype,
            src_device_num=record.src_device_num,
            dest_device_num=record.dest_device_num,
            src_addr=record.src_addr,
            dest_addr=record.dest_addr,
            nbytes=record.bytes,
            start_time=start,
            end_time=end,
            content_hash=content_hash,
            codeptr=record.codeptr_ra,
            target_id=record.target_id,
            variable=record.variable,
        )
        return overhead

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def finish_trace(
        self, *, total_runtime: Optional[float] = None, program_name: Optional[str] = None
    ) -> ColumnarTrace:
        """Finalize and return the recorded (columnar) trace."""
        if self.writer is not None:
            raise ValueError(
                "collector records into a TraceWriter; use finish_store()"
            )
        if total_runtime is not None:
            self.trace.total_runtime = total_runtime
        if program_name is not None:
            self.trace.program_name = program_name
        if self.trace.num_devices == 0:
            self.trace.num_devices = 1
        return self.trace

    def finish_store(
        self, *, total_runtime: Optional[float] = None, program_name: Optional[str] = None
    ) -> ShardedTraceStore:
        """Flush the remainder, write the manifest, return the sharded store."""
        if self.writer is None:
            raise ValueError("collector has no TraceWriter; use finish_trace()")
        num_devices = max(self.trace.num_devices, 1)
        return self.writer.close(
            num_devices=num_devices,
            program_name=program_name,
            total_runtime=total_runtime,
        )
