"""Collector overhead model (time and space).

Runtime overhead (Figure 2) in the real tool comes from two sources: a small
fixed cost per OMPT callback (recording the event) and the content hashing of
every transferred payload.  The paper's Appendix B measures native hash
throughput of roughly 25–32 GB/s inside the L3 cache, dropping to the
13–17 GB/s range for buffers larger than the 32 MiB L3.

A pure-Python hash cannot reach those rates, so charging the *measured*
Python hash time into the virtual clock would grossly misrepresent the
tool's overhead.  Instead the collector charges a *modelled* hash cost with
the native throughput profile above (configurable through
:class:`OverheadModel`).  The measured Python throughput is still reported —
that is what Table 4 / Figure 5 show — but the Figure 2 slowdowns are driven
by this model.  EXPERIMENTS.md documents the substitution.

Space overhead (Figure 3) is exact: 72 bytes per data-op event and 24 bytes
per target launch event, as stated in Section 7.4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.protocol import TraceLike, num_data_op_events, num_target_events
from repro.events.records import DATA_OP_EVENT_BYTES, TARGET_EVENT_BYTES


@dataclass(frozen=True)
class OverheadModel:
    """Models the collector's per-event time cost.

    Attributes
    ----------
    per_event_seconds:
        Fixed bookkeeping cost charged for every recorded event endpoint
        (callback dispatch, appending the 72 B / 24 B record).
    hash_latency:
        Fixed per-payload hashing setup cost (dominates tiny payloads).
    hash_rate_cached:
        Hash throughput in bytes/second while the payload fits in the
        last-level cache.
    hash_rate_streaming:
        Hash throughput once the payload exceeds the last-level cache.
    llc_bytes:
        Last-level-cache capacity separating the two regimes (32 MiB on the
        paper's EPYC 7543 CCX).
    """

    per_event_seconds: float = 2.0e-7
    hash_latency: float = 6.0e-8
    hash_rate_cached: float = 30.0e9
    hash_rate_streaming: float = 17.0e9
    llc_bytes: int = 32 * (1 << 20)

    def __post_init__(self) -> None:
        if self.per_event_seconds < 0.0 or self.hash_latency < 0.0:
            raise ValueError("overhead latencies cannot be negative")
        if self.hash_rate_cached <= 0.0 or self.hash_rate_streaming <= 0.0:
            raise ValueError("hash rates must be positive")
        if self.llc_bytes <= 0:
            raise ValueError("llc_bytes must be positive")

    def hash_rate(self, nbytes: int) -> float:
        """Effective modelled hash throughput for a payload of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.hash_rate_cached if nbytes <= self.llc_bytes else self.hash_rate_streaming

    def hash_time(self, nbytes: int) -> float:
        """Modelled time to hash a payload of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.hash_latency + nbytes / self.hash_rate(nbytes)

    def record_time(self) -> float:
        """Modelled time to record one event endpoint."""
        return self.per_event_seconds


def space_overhead_bytes(num_data_op_events: int, num_target_events: int) -> int:
    """Collector memory footprint for a given event count (Section 7.4)."""
    if num_data_op_events < 0 or num_target_events < 0:
        raise ValueError("event counts cannot be negative")
    return DATA_OP_EVENT_BYTES * num_data_op_events + TARGET_EVENT_BYTES * num_target_events


def space_overhead_of_trace(trace: TraceLike) -> int:
    """Collector memory footprint of a recorded trace (either representation)."""
    return space_overhead_bytes(num_data_op_events(trace), num_target_events(trace))


def overhead_accumulation_rate(trace: TraceLike) -> float:
    """Bytes of collector memory accumulated per second of program runtime.

    Section 7.4 reports this rate (tealeaf: ~1 MB/s; geometric mean across
    applications: ~43 KB/s).
    """
    runtime = trace.runtime
    if runtime <= 0.0:
        return 0.0
    return space_overhead_of_trace(trace) / runtime
