"""Persistent warm worker pool for the process engine.

``ProcessEngine`` used to build a fresh ``ProcessPoolExecutor`` per run
and submit one spawn-shaped job per partition; every task then paid the
full set of constants — process start-up, store reopen, shard re-decode —
before folding a single event.  This module replaces that with a pool of
long-lived worker processes:

* each worker **spawns once** and then folds many partitions over a task
  queue (oversubscribing partitions over workers is what makes the reuse
  visible: ``tasks > workers`` means most tasks run on a warm worker);
* each worker **opens each store once**, keyed by its transport spec, and
  keeps it (plus its attached shared-shard cache) across tasks and across
  runs of a ``keep_pool=True`` engine;
* carries cross the result queue as compact
  :mod:`repro.core.carrycodec` payloads instead of pickles;
* every task reports an overhead breakdown (open / decode / map / fold
  seconds, cache hits, which worker ran it) so ``BENCH_engine.json`` can
  show the constants falling even on machines where wall-clock speedup
  cannot.

Crash behaviour is observable the same way the distributed worker's is:
with ``OMPDATAPERF_WORKER_CRASH_AFTER_CLAIM=N`` in the environment a pool
worker hard-exits (``os._exit``) after finishing its ``N``-th command —
after any shared-memory publication, before reporting the result — which
is exactly the window where a real crash would leak segments if cleanup
were tied to worker exit instead of the pool owner.
"""

from __future__ import annotations

import os
import queue as queue_mod
import traceback
from time import perf_counter
from typing import Optional

from repro.core.carrycodec import decode_carries, encode_carries
from repro.core.engine import (
    PartitionTask,
    _fold_partition,
    _open_store_from_spec,
    _process_context,
)
from repro.events.shardcache import SharedShardCache, ensure_resource_tracker
from repro.events.stream import StreamPartition

_CMD_FOLD = "fold"
_CMD_FINALIZE = "finalize"
_CMD_STOP = "stop"

_OK = "ok"
_ERR = "error"

#: How long collect() waits between liveness checks of the workers.
_POLL_SECONDS = 0.1


def store_key(spec: dict):
    """A hashable identity for a transport spec (worker store caching)."""
    kind = spec.get("kind")
    if kind == "prefix":
        return (kind, spec.get("prefix"), store_key(spec["inner"]))
    if "path" in spec:
        return (kind, str(spec["path"]))
    # In-memory transports (the fake object store) carry the transport
    # object itself; a fresh unpickle per task means no reuse, which only
    # costs anything in tests.
    return (kind, id(spec.get("transport")))


def open_store_cached(spec: dict, stores: dict):
    """Open a store from its spec, reusing an already opened instance.

    Returns ``(store, open_seconds)`` where ``open_seconds`` is zero on a
    warm hit.  Shared by the pool workers and the distributed CLI worker,
    both of which hold one ``stores`` dict for their whole lifetime.
    """
    key = store_key(spec)
    store = stores.get(key)
    if store is not None:
        return store, 0.0
    started = perf_counter()
    store = _open_store_from_spec(spec)
    stores[key] = store
    return store, perf_counter() - started


def _crash_after_from_env() -> Optional[int]:
    from repro.core.distributed import CRASH_ENV

    raw = os.environ.get(CRASH_ENV)
    if not raw:
        return None
    try:
        return max(1, int(raw))
    except ValueError:
        return None


def _attach_cache(store, cache_spec: Optional[dict], caches: dict) -> None:
    cache = None
    if cache_spec is not None:
        cache = caches.get(cache_spec["run_id"])
        if cache is None:
            # One live cache per worker: drop handles of superseded runs
            # so warm workers do not accumulate mappings forever.
            for old in caches.values():
                old.close()
            caches.clear()
            cache = SharedShardCache.from_spec(cache_spec)
            caches[cache_spec["run_id"]] = cache
    store.attach_shard_cache(cache)


def _pool_worker(index: int, task_queue, result_queue, crash_after, progress) -> None:
    from repro.core.distributed import CRASH_EXIT_CODE

    stores: dict = {}
    caches: dict = {}
    completed = 0

    def tick_progress(events: int) -> None:
        # Lock-free on CPython: one writer per counter, readers tolerate
        # a stale snapshot (the counter is a liveness/fold-position hint,
        # not an accounting total).
        progress.value += events

    while True:
        command = task_queue.get()
        if command[0] == _CMD_STOP:
            break
        job_id = command[1]
        try:
            kind = command[0]
            store, open_seconds = open_store_cached(command[2], stores)
            _attach_cache(store, command[3], caches)
            decode0 = store.decode_seconds
            count0 = store.decode_count
            hits0 = store.cache_hits
            map0 = store.map_seconds
            mapc0 = store.map_count
            started = perf_counter()
            if kind == _CMD_FOLD:
                task, pass_specs = command[4], command[5]
                partition = StreamPartition(
                    store, task.lo, task.hi, task.data_op_offset, task.num_events
                )
                payload = encode_carries(
                    _fold_partition(pass_specs, partition, on_batch=tick_progress)
                )
            elif kind == _CMD_FINALIZE:
                pass_ = decode_carries(command[4])[0]
                payload = pass_.finalize(store)
            else:
                raise RuntimeError(f"unknown pool command {kind!r}")
            wall = perf_counter() - started
            decode_seconds = store.decode_seconds - decode0
            map_seconds = store.map_seconds - map0
            stats = {
                "worker": index,
                "task_no": completed + 1,
                "open_seconds": open_seconds,
                "decode_seconds": decode_seconds,
                "decode_count": store.decode_count - count0,
                "cache_hits": store.cache_hits - hits0,
                "map_seconds": map_seconds,
                "map_count": store.map_count - mapc0,
                "fold_seconds": max(0.0, wall - decode_seconds - map_seconds),
            }
            completed += 1
            if crash_after is not None and completed >= crash_after:
                # The injected-crash window: work done (shared segments
                # published), result unreported — exactly where a real
                # crash would strand state.
                os._exit(CRASH_EXIT_CODE)
            result_queue.put((_OK, job_id, payload, stats))
        except BaseException:
            result_queue.put((_ERR, job_id, traceback.format_exc()))


class WarmWorkerPool:
    """A fixed set of long-lived fold/finalize worker processes."""

    def __init__(self, num_workers: int, *, mp_context=None) -> None:
        if num_workers < 1:
            raise ValueError("a worker pool needs at least one worker")
        ctx = mp_context or _process_context()
        # Workers must inherit the parent's resource tracker (not spawn
        # private ones) for shared-memory accounting to balance.
        ensure_resource_tracker()
        self._task_queue = ctx.Queue()
        self._result_queue = ctx.Queue()
        self._next_job = 0
        self._closed = False
        crash_after = _crash_after_from_env()
        started = perf_counter()
        self._workers = []
        # One shared fold-position counter per worker (events folded over
        # the worker's lifetime): the warm-pool analogue of the
        # distributed beat's progress half, readable without a queue
        # round-trip even when the worker is wedged mid-fold.
        self._progress = [ctx.Value("Q", 0, lock=False) for _ in range(num_workers)]
        for index in range(num_workers):
            proc = ctx.Process(
                target=_pool_worker,
                args=(
                    index, self._task_queue, self._result_queue, crash_after,
                    self._progress[index],
                ),
                daemon=True,
            )
            proc.start()
            self._workers.append(proc)
        self.spawn_count = num_workers
        self.spawn_seconds = perf_counter() - started

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def fold_positions(self) -> list[int]:
        """Per-worker lifetime fold positions (events folded so far).

        Snapshots the shared counters without disturbing the workers;
        a counter that stops moving while its worker stays alive is the
        warm-pool signature of a stalled fold.
        """
        return [value.value for value in self._progress]

    # ------------------------------------------------------------------ #
    def _submit(self, command: tuple) -> int:
        if self._closed:
            raise RuntimeError("the worker pool is closed")
        self._task_queue.put(command)
        return command[1]

    def _new_job(self) -> int:
        job = self._next_job
        self._next_job += 1
        return job

    def submit_fold(
        self,
        store_spec: dict,
        cache_spec: Optional[dict],
        task: PartitionTask,
        pass_specs: tuple,
    ) -> int:
        """Queue one partition fold; returns the job id to collect on."""
        return self._submit(
            (_CMD_FOLD, self._new_job(), store_spec, cache_spec, task, pass_specs)
        )

    def submit_finalize(
        self, store_spec: dict, cache_spec: Optional[dict], carry_payload: bytes
    ) -> int:
        """Queue one pass finalize (carry travels as a codec payload)."""
        return self._submit(
            (_CMD_FINALIZE, self._new_job(), store_spec, cache_spec, carry_payload)
        )

    def collect(self, job_ids) -> dict:
        """Wait for every job; ``{job_id: (payload, stats)}``.

        Raises ``RuntimeError`` when a worker reports a failure or dies
        with results still outstanding (the warm-pool analogue of
        ``BrokenProcessPool``).
        """
        pending = set(job_ids)
        results: dict = {}
        while pending:
            try:
                message = self._result_queue.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                self._check_alive()
                continue
            status, job_id = message[0], message[1]
            if status == _ERR:
                raise RuntimeError(f"warm pool worker failed:\n{message[2]}")
            if job_id in pending:
                pending.discard(job_id)
                results[job_id] = (message[2], message[3])
        return results

    def _check_alive(self) -> None:
        dead = [proc for proc in self._workers if not proc.is_alive()]
        if dead:
            codes = sorted({proc.exitcode for proc in dead})
            positions = self.fold_positions()
            raise RuntimeError(
                f"{len(dead)} warm pool worker(s) died (exit codes {codes}) "
                f"with results outstanding (fold positions: {positions})"
            )

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop every worker and release the queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            try:
                self._task_queue.put((_CMD_STOP, -1))
            except (OSError, ValueError):  # pragma: no cover - queue gone
                break
        for proc in self._workers:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for q in (self._task_queue, self._result_queue):
            try:
                q.close()
            except (OSError, ValueError):  # pragma: no cover
                pass

    def __enter__(self) -> "WarmWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
