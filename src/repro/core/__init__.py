"""OMPDataPerf: the paper's primary contribution.

* :mod:`repro.core.collector` — the OMPT tool that records the event trace.
* :mod:`repro.core.overhead` — the collector's time/space overhead model.
* :mod:`repro.core.detectors` — Algorithms 1–5 from Section 5.
* :mod:`repro.core.analysis` — runs every detector and aggregates findings.
* :mod:`repro.core.potential` — optimization-potential / predicted-speedup estimation.
* :mod:`repro.core.report` — human-readable report rendering.
* :mod:`repro.core.profiler` — the high-level :class:`OMPDataPerf` entry point.
"""

from repro.core.analysis import AnalysisReport, IssueCounts, analyze_trace
from repro.core.collector import TraceCollector

# Imported for its side effect: registers DistributedEngine in
# repro.core.engine.ENGINES, so the registry (and with it the CLI's
# --engine choices) is complete as soon as anything under repro.core is.
from repro.core import distributed as _distributed  # noqa: F401  (registration)
from repro.core.overhead import OverheadModel
from repro.core.potential import OptimizationPotential, estimate_potential
from repro.core.profiler import OMPDataPerf, ProfileResult

__all__ = [
    "AnalysisReport",
    "IssueCounts",
    "analyze_trace",
    "TraceCollector",
    "OverheadModel",
    "OptimizationPotential",
    "estimate_potential",
    "OMPDataPerf",
    "ProfileResult",
]
