"""Distributed analysis: coordinator/worker execution over a task queue.

:class:`DistributedEngine` is the fourth execution backend
(``analyze_stream(engine="distributed")``, ``--engine distributed``) and
the first whose workers need not share a machine with the coordinator.
It speaks the exact partition→fold→merge→finalize shape of the process
engine, but the partition tasks live as **leased blobs on a shard
transport** (:mod:`repro.events.transport`) instead of in an in-process
pool — a local directory for tests and loopback runs, an object store
wherever a real deployment wants the queue to live.  (The *store* may
additionally sit in a zip archive; the *queue* may not — a zip archive
serializes every mutation through a whole-archive rewrite, so concurrent
writers would erase each other's claims, and both the coordinator and
the worker refuse one.)

Queue layout (all names relative to the queue transport)::

    run.pkl                        pickled run manifest: store transport
                                   spec, pass specs, lease timeout
    tasks/task-00002.a000          pending task, attempt 0 (pickled
                                   PartitionTask); requeues bump the
                                   attempt tag, so a blob name is unique
                                   per (task, attempt) generation
    claims/task-00002.a000.<wid>   leased task: the pending blob renamed
                                   under the claiming worker's id
    beats/task-00002.a000.<wid>    heartbeat counter, renewed on a timer
                                   while the worker folds
    results/rb-<wid>-00001         one result *batch* blob per claim
                                   sweep: ``ODPB``-framed carry-codec
                                   payloads for every task the sweep
                                   folded (see ``_encode_result_batch``)
    errors/task-00002.a000.<wid>   a worker-side failure report
    hints                          periodically-rewritten autoscaling
                                   hints (JSON; see ``queue status``)
    done | abort                   terminal markers (abort carries the
                                   reason)

Lease lifecycle.  A worker claims a pending task with one
generation-tagged rename (``tasks/…a000`` → ``claims/…a000.<wid>``):
renames fail when the source is gone, so racing workers resolve to one
winner on any transport with atomic rename, and the attempt tag
guarantees a requeued task never collides with a stale claim of an
earlier generation.  While folding, the worker renews a heartbeat blob
carrying a liveness counter *and* its fold position
(``<counter>:<events folded>``), so the coordinator can tell a slow
worker from a stuck one.  The coordinator polls the queue and tracks,
per task, when its observable state last *changed* (a claim appeared,
the heartbeat advanced, a result landed); comparing change-counters
instead of wall clocks keeps the protocol immune to clock skew between
machines.  A task whose state freezes for longer than the lease
timeout — a worker died mid-fold, or a claim rename was torn on a
copy-then-delete transport — is requeued under the next attempt tag.
Worker-side exceptions short-circuit the wait: the worker publishes an
error blob and releases the claim, and the coordinator requeues
immediately.  After ``max_attempts`` generations the coordinator
publishes the ``abort`` marker (so every worker exits) and raises
:class:`DistributedExecutionError` naming the task and the last failure.

Speculative re-execution covers the gap between "slow" and "dead": when
a *claimed* task's fold position stops advancing for much longer than
the fleet's median progress interval (``speculation_factor`` times it,
floored at ``min_stall``), the coordinator re-publishes the task under
the next attempt tag *without* waiting for the lease to expire.  The
original claim is left in place — whichever attempt publishes a durable
result first wins, and the loser's eventual output is bit-identical
debris (folds are deterministic, dedup is by task index).  A task is
speculated at most once per run and never into its final permitted
attempt, so speculation can only add one generation, not burn the retry
budget.

Because folds are deterministic and results publish atomically, the
protocol tolerates zombies: a worker presumed dead that later finishes
simply publishes a batch holding bit-identical payloads for the same
task indices (first decode wins, and all reads agree).

Carries cross the queue as compact :mod:`repro.core.carrycodec`
payloads, batched one blob per claim sweep (``--claim-batch`` tasks per
sweep) so an object-store deployment pays one PUT per sweep instead of
one per task.  The coordinator folds each batch into per-pass running
carries *as it lands* (:class:`CarryFolder`: contiguous partition runs
merge eagerly under the per-detector ``merge`` contracts), so its peak
un-merged state is O(contiguous runs × passes) — O(passes) for any
in-order-ish arrival — instead of one carry per task.  Finalize runs
locally over the single merged chain — identical to every other engine,
which is what keeps the differential suite's five legs bit-identical.

While coordinating, the engine periodically rewrites a ``hints`` blob in
the queue (atomic publish; see :func:`~repro.events.transport.try_write_blob`)
with pending depth, claim latency, median fold-progress rate and a
suggested worker delta, so an external fleet manager — or ``ompdataperf
queue status`` — can grow or shrink the worker fleet mid-run.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import shutil
import socket
import statistics
import struct
import subprocess
import sys
import tempfile
import threading
import time
import uuid
import warnings
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.core.carrycodec import CarryCodecError, decode_carries, encode_carries
from repro.core.engine import (
    ENGINES,
    PartitionTask,
    SerialEngine,
    _check_jobs,
    _finalize_all,
    _fold_partition,
    _opt_bool,
    _opt_float,
    _opt_int,
    _opt_str,
    partition_tasks,
)
from repro.core.pool import open_store_cached
from repro.events.shardcache import SharedShardCache, direct_map_preferred
from repro.events.stream import StreamPartition
from repro.events.transport import (
    ShardTransport,
    TransportError,
    ZipArchiveTransport,
    list_blobs_under,
    open_transport,
    try_claim_blob,
    try_read_blob,
    try_write_blob,
)

#: Version tag of the queue protocol; workers refuse manifests they do
#: not speak rather than mis-folding them.  Version 2 switched results
#: from per-task pickles to batched carry-codec blobs and added the
#: ``claim_batch`` manifest field.
QUEUE_FORMAT_VERSION = 2

RUN_MANIFEST = "run.pkl"
DONE_MARKER = "done"
ABORT_MARKER = "abort"
TASK_PREFIX = "tasks/"
CLAIM_PREFIX = "claims/"
BEAT_PREFIX = "beats/"
RESULT_PREFIX = "results/"
ERROR_PREFIX = "errors/"

#: Autoscaling hints blob, periodically rewritten by the coordinator.
HINTS_BLOB = "hints"

#: Schema version of the hints blob.
HINTS_VERSION = 1

#: Test hook honoured only by the CLI ``worker`` entry point: the worker
#: calls ``os._exit(3)`` immediately after its N-th successful claim,
#: simulating a machine dying mid-fold with the lease left dangling.
CRASH_ENV = "OMPDATAPERF_WORKER_CRASH_AFTER_CLAIM"

#: Exit code of a crash-hook death (distinct from error exits).
CRASH_EXIT_CODE = 3

#: Test hook honoured only by the CLI ``worker`` entry point: from its
#: N-th successful claim on, the worker keeps heartbeating but never
#: folds — a *stuck* worker (alive by every liveness signal, making no
#: progress), which is exactly the straggler speculation must rescue.
STALL_ENV = "OMPDATAPERF_WORKER_STALL_AFTER_CLAIM"

# Both patterns are end-anchored so that a transport's in-flight staging
# files (LocalDirTransport publishes through `<name>.tmp-<pid>` +
# os.replace) can never be mistaken for live queue blobs: a pending blob
# ends with the bare task stem, a claim/beat/error blob with the stem
# plus exactly one ".<worker-id>" segment (worker ids are sanitized to
# [A-Za-z0-9_-], so they contain no further dots).
_PENDING_NAME = re.compile(r"task-(\d{5})\.a(\d{3})$")
_LEASED_NAME = re.compile(r"task-(\d{5})\.a(\d{3})\.[A-Za-z0-9_-]+$")


class DistributedExecutionError(RuntimeError):
    """A distributed run could not complete (task retries exhausted,
    every worker lost, or the run timed out)."""


# --------------------------------------------------------------------- #
# Result batches
# --------------------------------------------------------------------- #
#: Frame of one result-batch blob: magic, format version, entry count.
_BATCH_MAGIC = b"ODPB"
_BATCH_VERSION = 1
_BATCH_PREFIX_STRUCT = struct.Struct("<4sHI")
_BATCH_ENTRY_STRUCT = struct.Struct("<IQ")


def _encode_result_batch(entries: Sequence[tuple[int, bytes]]) -> bytes:
    """Frame ``(task_index, carry_payload)`` pairs as one blob."""
    out = bytearray(_BATCH_PREFIX_STRUCT.pack(_BATCH_MAGIC, _BATCH_VERSION, len(entries)))
    for index, payload in entries:
        out += _BATCH_ENTRY_STRUCT.pack(index, len(payload))
        out += payload
    return bytes(out)


def _decode_result_batch(data: bytes) -> list[tuple[int, bytes]]:
    magic, version, count = _BATCH_PREFIX_STRUCT.unpack_from(data, 0)
    if magic != _BATCH_MAGIC:
        raise CarryCodecError(f"bad result-batch magic {magic!r}")
    if version != _BATCH_VERSION:
        raise CarryCodecError(f"unsupported result-batch version {version}")
    offset = _BATCH_PREFIX_STRUCT.size
    entries: list[tuple[int, bytes]] = []
    for _ in range(count):
        index, size = _BATCH_ENTRY_STRUCT.unpack_from(data, offset)
        offset += _BATCH_ENTRY_STRUCT.size
        payload = bytes(data[offset:offset + size])
        if len(payload) != size:
            raise CarryCodecError("truncated result batch")
        offset += size
        entries.append((index, payload))
    if offset != len(data):
        raise CarryCodecError("trailing bytes in result batch")
    return entries


def _task_stem(index: int, attempt: int) -> str:
    return f"task-{index:05d}.a{attempt:03d}"


def _parse_pending_name(name: str) -> Optional[tuple[int, int]]:
    match = _PENDING_NAME.search(name)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2))


def _parse_leased_name(name: str) -> Optional[tuple[int, int]]:
    match = _LEASED_NAME.search(name)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2))


def worker_id() -> str:
    """A queue-safe identifier naming the host, process and instance."""
    host = re.sub(r"[^A-Za-z0-9_-]", "-", socket.gethostname()) or "host"
    return f"{host}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


def _check_queue_transport(transport: ShardTransport) -> None:
    """Reject queue backings that cannot take concurrent writers.

    A zip archive rewrites the whole archive (snapshot + atomic replace)
    on every mutation, so two workers heartbeating concurrently would
    silently erase each other's blobs — fine for a single-writer *store*,
    fatal for a *queue*.
    """
    if isinstance(transport, ZipArchiveTransport):
        raise ValueError(
            f"{transport.describe()}: a zip archive cannot back a task "
            f"queue (every mutation is a whole-archive rewrite, so "
            f"concurrent workers would overwrite each other); use a "
            f"directory or an object store"
        )


@dataclass
class ClaimedTask:
    """A worker-held lease on one task.

    ``counter`` is the liveness half of the heartbeat (bumped on every
    renewal); ``progress`` is the fold-position half (events folded so
    far, ticked by the fold loop) — the coordinator reads the pair as
    ``<counter>:<progress>`` from the beat blob.
    """

    name: str  # full claim blob name
    stem: str  # task-XXXXX.aYYY
    index: int
    attempt: int
    task: PartitionTask
    counter: int = 0
    progress: int = 0


class TaskQueue:
    """The queue protocol over one transport — shared by both actors.

    Every method is a small number of blob operations; nothing here holds
    state beyond the transport, so coordinator and workers may live in
    different processes or on different machines.
    """

    def __init__(self, transport: ShardTransport) -> None:
        self.transport = transport

    # -- run manifest --------------------------------------------------- #
    def publish_run(self, manifest: dict) -> None:
        self.transport.write_blob(RUN_MANIFEST, pickle.dumps(manifest))

    def read_run(self) -> Optional[dict]:
        data = try_read_blob(self.transport, RUN_MANIFEST)
        if data is None:
            return None
        try:
            return pickle.loads(data)
        except Exception:  # noqa: BLE001 — not (yet) a readable manifest
            # A torn or garbage manifest reads as "no run yet": workers
            # keep polling (and honour --idle-timeout) instead of dying
            # on an UnpicklingError.
            return None

    # -- tasks and leases ------------------------------------------------ #
    def publish_task(self, task: PartitionTask, attempt: int = 0) -> None:
        self.transport.write_blob(
            TASK_PREFIX + _task_stem(task.index, attempt), pickle.dumps(task)
        )

    def pending_task_names(self) -> list[str]:
        # The end-anchored parse skips anything that is not a live pending
        # blob (staging files, stray debris) rather than claiming it.
        return [
            name
            for name in list_blobs_under(self.transport, TASK_PREFIX)
            if _parse_pending_name(name) is not None
        ]

    def claim(self, pending_name: str, worker: str) -> Optional[ClaimedTask]:
        """Lease one pending task; ``None`` when the race was lost."""
        parsed = _parse_pending_name(pending_name)
        if parsed is None:
            return None
        index, attempt = parsed
        stem = _task_stem(index, attempt)
        claim_name = f"{CLAIM_PREFIX}{stem}.{worker}"
        if not try_claim_blob(self.transport, pending_name, claim_name):
            return None
        data = try_read_blob(self.transport, claim_name)
        if data is not None:
            try:
                task = pickle.loads(data)
            except Exception:  # noqa: BLE001 — corrupt payload
                data = None
        if data is None:
            # Torn copy-then-delete rename (missing or truncated payload);
            # leave the claim dangling — the coordinator's freeze
            # detection requeues the task under the next attempt.
            return None
        claim = ClaimedTask(
            name=claim_name, stem=stem, index=index, attempt=attempt, task=task,
        )
        self.heartbeat(claim)
        return claim

    def heartbeat(self, claim: ClaimedTask) -> None:
        claim.counter += 1
        suffix = claim.name[len(CLAIM_PREFIX):]
        self.transport.write_blob(
            BEAT_PREFIX + suffix, f"{claim.counter}:{claim.progress}".encode()
        )

    def release(self, claim: ClaimedTask) -> None:
        suffix = claim.name[len(CLAIM_PREFIX):]
        self.transport.delete_blob(claim.name)
        self.transport.delete_blob(BEAT_PREFIX + suffix)

    # -- results and failures -------------------------------------------- #
    def publish_result_batch(
        self, worker: str, seq: int, entries: Sequence[tuple[int, bytes]]
    ) -> None:
        """Publish one sweep's ``(index, carry_payload)`` results atomically."""
        self.transport.write_blob(
            f"{RESULT_PREFIX}rb-{worker}-{seq:05d}", _encode_result_batch(entries)
        )

    def result_batch_names(self) -> list[str]:
        return [
            name
            for name in list_blobs_under(self.transport, RESULT_PREFIX)
            if name[len(RESULT_PREFIX):].startswith("rb-")
        ]

    def read_result_batch(self, name: str) -> list[tuple[int, bytes]]:
        return _decode_result_batch(self.transport.read_blob(name))

    def publish_error(self, claim: ClaimedTask, message: str) -> None:
        suffix = claim.name[len(CLAIM_PREFIX):]
        self.transport.write_blob(ERROR_PREFIX + suffix, message.encode("utf-8"))

    # -- terminal markers ------------------------------------------------- #
    def mark_done(self) -> None:
        self.transport.write_blob(DONE_MARKER, b"")

    def is_done(self) -> bool:
        return self.transport.blob_exists(DONE_MARKER)

    def mark_abort(self, reason: str) -> None:
        self.transport.write_blob(ABORT_MARKER, reason.encode("utf-8"))

    def abort_reason(self) -> Optional[str]:
        data = try_read_blob(self.transport, ABORT_MARKER)
        if data is None:
            return None
        return data.decode("utf-8", errors="replace")


# --------------------------------------------------------------------- #
# Worker
# --------------------------------------------------------------------- #
def run_worker(
    queue,
    *,
    poll_interval: float = 0.5,
    max_tasks: Optional[int] = None,
    idle_timeout: Optional[float] = None,
    echo=None,
    crash_hook: bool = False,
    claim_batch: Optional[int] = None,
) -> int:
    """Claim, fold and publish tasks until the run terminates.

    ``queue`` is a path or a :class:`~repro.events.transport.ShardTransport`;
    a queue location that does not exist yet is polled into existence, so
    workers may start before the coordinator (the CI smoke job does).
    Returns a process exit code: ``0`` after a ``done`` marker (or
    ``max_tasks`` processed), ``1`` on ``abort`` or a protocol mismatch,
    and — only with ``idle_timeout`` — ``1`` when no run ever appeared.

    The worker is warm across tasks: it opens each store once (keyed by
    transport spec) and keeps it for its whole lifetime, so only the
    first task of a run pays the open cost.  Each sweep claims up to
    ``claim_batch`` tasks (default: the manifest's ``claim_batch``),
    renews every held lease on one timer, and publishes one result-batch
    blob for the sweep.

    This function is the whole worker: the CLI ``worker`` subcommand calls
    it in a fresh process, the engine's thread mode calls it on a thread,
    and both speak the identical blob protocol.
    """
    say = echo if echo is not None else (lambda message: None)
    wid = worker_id()
    crash_after = stall_after = 0
    if crash_hook:
        try:
            crash_after = int(os.environ.get(CRASH_ENV, "0"))
        except ValueError:
            crash_after = 0
        try:
            stall_after = int(os.environ.get(STALL_ENV, "0"))
        except ValueError:
            stall_after = 0
    started = time.monotonic()
    transport: Optional[ShardTransport] = None
    run: Optional[dict] = None
    done_tasks = 0
    # successful claims (including ones that error), warm stores, and the
    # per-worker result-batch sequence number
    state = {"claims": 0, "stores": {}, "batches": 0}
    while True:
        if transport is None:
            try:
                transport = open_transport(queue)
            except (FileNotFoundError, ValueError, TransportError):
                transport = None
            if transport is not None:
                try:
                    _check_queue_transport(transport)
                except ValueError as exc:
                    say(f"error: worker {wid}: {exc}")
                    return 1
        if transport is not None:
            tq = TaskQueue(transport)
            try:
                reason = tq.abort_reason()
                if reason is not None:
                    say(f"error: worker {wid}: run aborted by coordinator: {reason}")
                    return 1
                if tq.is_done():
                    say(
                        f"info: worker {wid}: run complete "
                        f"({done_tasks} task(s) processed)"
                    )
                    return 0
                if run is None:
                    run = tq.read_run()
                    if run is not None and run.get("version") != QUEUE_FORMAT_VERSION:
                        say(
                            f"error: worker {wid}: queue speaks protocol version "
                            f"{run.get('version')!r}, this worker speaks "
                            f"{QUEUE_FORMAT_VERSION}"
                        )
                        return 1
                if run is not None:
                    remaining = (
                        None if max_tasks is None else max(1, max_tasks - done_tasks)
                    )
                    swept = _drain_pending(
                        tq, run, wid, say, crash_after, stall_after, state,
                        claim_batch, remaining,
                    )
                    if swept:
                        done_tasks += swept
                        if max_tasks is not None and done_tasks >= max_tasks:
                            say(f"info: worker {wid}: max tasks reached, exiting")
                            return 0
                        continue  # look for more work before sleeping
            except OSError as exc:
                # The queue went briefly unreadable (a TransportError, or a
                # raw filesystem race with a listing mid-teardown); treat
                # it like an empty poll and retry.
                say(f"warning: worker {wid}: transient queue error: {exc}")
        if (
            idle_timeout is not None
            and run is None
            and time.monotonic() - started > idle_timeout
        ):
            say(f"error: worker {wid}: no run appeared within {idle_timeout:g}s")
            return 1
        time.sleep(poll_interval)


def _drain_pending(
    tq: TaskQueue,
    run: dict,
    wid: str,
    say,
    crash_after: int,
    stall_after: int,
    state: dict,
    claim_batch: Optional[int],
    max_claims: Optional[int] = None,
) -> int:
    """One claim sweep: lease up to ``claim_batch`` tasks, fold them on a
    warm store, publish one result batch.  Returns how many completed."""
    batch_size = claim_batch if claim_batch is not None else run.get("claim_batch")
    try:
        batch_size = max(1, int(batch_size or 1))
    except (TypeError, ValueError):
        batch_size = 1
    if max_claims is not None:
        # --max-tasks caps the sweep so a worker never folds past its quota.
        batch_size = min(batch_size, max_claims)
    claims: list[ClaimedTask] = []
    stalled: set[str] = set()
    for pending_name in tq.pending_task_names():
        if len(claims) >= batch_size:
            break
        claim = tq.claim(pending_name, wid)
        if claim is None:
            continue
        state["claims"] += 1
        if crash_after and state["claims"] >= crash_after:
            # Simulated machine death: lease and heartbeat stay behind
            # exactly as a real mid-fold crash would leave them.
            os._exit(CRASH_EXIT_CODE)
        if stall_after and state["claims"] >= stall_after:
            # Simulated stuck worker: the claim is held and heartbeats
            # keep renewing, but the fold below never starts.
            stalled.add(claim.name)
        say(
            f"info: worker {wid}: claimed task {claim.index} "
            f"(attempt {claim.attempt})"
        )
        claims.append(claim)
    if not claims:
        return 0
    # Renew every held lease on one timer, not per unit of work: the
    # heartbeat answers "is this worker alive?", so it must keep ticking
    # however long one shard's fold runs (a batch-granularity heartbeat
    # would let a single slow shard outlive the lease and get requeued
    # under a healthy worker).  Fold *progress* rides the same blob but
    # is republished eagerly (at most every ``tick``) so the coordinator
    # sees the fold position advance long before the liveness floor.
    lease = float(run.get("lease_timeout") or 30.0)
    interval = max(min(lease / 4.0, 5.0), 0.02)
    tick = min(interval, 0.25)
    stop = threading.Event()

    def renew() -> None:
        published = {claim.name: claim.progress for claim in claims}
        last_full = time.monotonic()
        while not stop.wait(tick):
            refresh = time.monotonic() - last_full >= interval
            for claim in claims:
                if refresh or claim.progress != published[claim.name]:
                    try:
                        tq.heartbeat(claim)
                    except OSError:
                        return  # queue unreachable; the leases expire naturally
                    published[claim.name] = claim.progress
            if refresh:
                last_full = time.monotonic()

    renewer = threading.Thread(target=renew, daemon=True)
    renewer.start()
    completed: list[tuple[ClaimedTask, bytes]] = []
    try:
        for claim in claims:
            if claim.name in stalled:
                say(f"info: worker {wid}: stalling on task {claim.index} (test hook)")
                while True:  # heartbeats continue; progress never moves
                    time.sleep(0.5)
            try:
                store, _ = open_store_cached(run["store_spec"], state["stores"])
                task = claim.task
                partition = StreamPartition(
                    store, task.lo, task.hi, task.data_op_offset, task.num_events
                )

                def tick_progress(events: int, claim: ClaimedTask = claim) -> None:
                    claim.progress += events

                payload = encode_carries(
                    _fold_partition(
                        run["pass_specs"], partition, on_batch=tick_progress
                    )
                )
            except Exception as exc:  # noqa: BLE001 — report, release, move on
                say(f"error: worker {wid}: task {claim.index} failed: {exc}")
                tq.publish_error(claim, f"{type(exc).__name__}: {exc}")
                tq.release(claim)
                continue
            completed.append((claim, payload))
        if completed:
            state["batches"] += 1
            tq.publish_result_batch(
                wid, state["batches"], [(c.index, p) for c, p in completed]
            )
            # Only release after the batch is durably published: a crash
            # between fold and publish must leave the leases to expire.
            for claim, _ in completed:
                tq.release(claim)
    finally:
        stop.set()
        renewer.join(timeout=5.0)
    for claim, _ in completed:
        say(f"info: worker {wid}: published result for task {claim.index}")
    return len(completed)


# --------------------------------------------------------------------- #
# Incremental carry merging
# --------------------------------------------------------------------- #
class CarryFolder:
    """Merge per-task carry chains into per-pass running carries as they land.

    The per-detector ``merge`` contract is strictly ordered — a carry may
    only absorb the carry of the *immediately following* partition range —
    so out-of-order arrival cannot merge everything into one accumulator
    directly.  Instead the folder keeps **contiguous runs** of already
    merged partitions: a landing chain for task ``i`` opens a run
    ``[i, i]``, then eagerly coalesces with the run ending at ``i - 1``
    (that run absorbs it) and the run starting at ``i + 1`` (it absorbs
    that run).  Peak held state is therefore ``runs × passes`` carries —
    exactly ``passes`` (one run) for in-order or reversed arrival, and
    bounded by the arrival order's gap count in the worst case — never
    one carry per task.

    Duplicate task indices (a zombie worker's re-published result) are
    rejected at the door: folds are deterministic, so the duplicate is
    bit-identical to what was already merged and dropping it preserves
    the sequential fold's output.

    ``peak_chains`` records the maximum number of runs ever held — the
    observable the O(passes) coordinator-memory test asserts on.
    """

    def __init__(self, num_tasks: int) -> None:
        if num_tasks < 1:
            raise ValueError("num_tasks must be at least 1")
        self.num_tasks = num_tasks
        self._hi_chain_by_lo: dict[int, tuple[int, list]] = {}
        self._lo_by_hi: dict[int, int] = {}
        self._seen: set[int] = set()
        self.duplicates = 0
        self.peak_chains = 0

    @property
    def merged_count(self) -> int:
        """How many distinct task results have been folded in."""
        return len(self._seen)

    @property
    def chains_held(self) -> int:
        """Contiguous runs currently held (1 when fully merged)."""
        return len(self._hi_chain_by_lo)

    @property
    def complete(self) -> bool:
        return len(self._seen) == self.num_tasks

    def add(self, index: int, chain: list) -> bool:
        """Fold one task's carry chain in; ``False`` for a duplicate.

        ``chain`` is consumed (merged into or mutated by neighbouring
        runs) when accepted.
        """
        if not 0 <= index < self.num_tasks:
            raise ValueError(
                f"task index {index} out of range for {self.num_tasks} task(s)"
            )
        if index in self._seen:
            self.duplicates += 1
            return False
        self._seen.add(index)
        lo = hi = index
        left_lo = self._lo_by_hi.pop(index - 1, None)
        if left_lo is not None:
            # The run ending just below absorbs this chain (it precedes
            # this range chronologically, so it is the merge target).
            _, left_chain = self._hi_chain_by_lo.pop(left_lo)
            for target, source in zip(left_chain, chain):
                target.merge(source)
            chain = left_chain
            lo = left_lo
        right = self._hi_chain_by_lo.pop(index + 1, None)
        if right is not None:
            # This chain absorbs the run starting just above.
            right_hi, right_chain = right
            self._lo_by_hi.pop(right_hi, None)
            for target, source in zip(chain, right_chain):
                target.merge(source)
            hi = right_hi
        self._hi_chain_by_lo[lo] = (hi, chain)
        self._lo_by_hi[hi] = lo
        self.peak_chains = max(self.peak_chains, len(self._hi_chain_by_lo))
        return True

    def result(self) -> list:
        """The fully merged chain; only valid once :attr:`complete`."""
        if not self.complete:
            raise RuntimeError(
                f"carry folder holds {len(self._seen)} of "
                f"{self.num_tasks} task result(s)"
            )
        (_, chain), = self._hi_chain_by_lo.values()
        return chain


# --------------------------------------------------------------------- #
# Coordinator
# --------------------------------------------------------------------- #
def _beat_progress(beat: Optional[bytes]) -> Optional[bytes]:
    """The fold-position half of a beat payload (``None`` pre-v2 shape)."""
    if not beat:
        return None
    _, sep, tail = beat.partition(b":")
    return tail if sep else None


class _WorkerHandle:
    """One coordinator-spawned worker: a subprocess or a thread."""

    def __init__(self, proc=None, thread=None) -> None:
        self.proc = proc
        self.thread = thread

    def alive(self) -> bool:
        if self.proc is not None:
            return self.proc.poll() is None
        return self.thread.is_alive()

    def stop(self, timeout: float = 10.0) -> None:
        if self.proc is not None:
            try:
                self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.proc.terminate()
                try:
                    self.proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    self.proc.kill()
                    self.proc.wait()
        else:
            self.thread.join(timeout=timeout)


class DistributedEngine:
    """Partitioned folds on queue-fed workers: task blobs in, carries out.

    Two deployment shapes behind one engine:

    * **self-hosted** (``queue=None``, what ``resolve_engine`` builds):
      the coordinator stages the queue in a scratch directory
      and spawns ``workers`` loopback worker processes (default:
      ``jobs``), so ``--engine distributed`` works on one machine with no
      setup — the distributed twin of the process engine, and the fifth
      leg of the differential suite.
    * **attach** (``queue=<path or transport>``, ``workers=0``): the
      coordinator publishes into an existing queue location and real
      workers — started anywhere with ``ompdataperf worker --queue`` —
      lease the tasks.  The queue location must be empty (one queue is
      one run); workers may be waiting before it exists.

    ``worker_mode="thread"`` runs spawned workers as in-process threads
    over the same blob protocol — cheap enough for property tests to spin
    up a full coordinator/worker round per Hypothesis example.

    Failure handling: a task whose queue state freezes longer than
    ``lease_timeout`` (dead worker) or that reports a worker-side error
    is requeued under the next attempt tag; after ``max_attempts``
    attempts the run aborts with :class:`DistributedExecutionError`.
    A claimed task whose *fold position* stalls relative to the fleet
    (``speculate=True``) is speculatively re-published early — see the
    module docstring for the lifecycle.  Spawned workers that die are
    replaced while the respawn budget lasts.  ``run_timeout`` bounds the
    whole run when set.  :attr:`stats` records the last run's task,
    requeue, respawn, speculation, debris and peak-unmerged counts plus
    the final autoscaling ``hints`` snapshot (a stable contract; see
    :func:`~repro.core.engine.resolve_engine`).
    """

    name = "distributed"

    #: Options addressable from an ``EngineConfig`` spec string, e.g.
    #: ``"distributed:claim_batch=4,lease_timeout=10,speculate=on"``.
    config_options = {
        "queue": _opt_str,
        "workers": _opt_int,
        "worker_mode": _opt_str,
        "lease_timeout": _opt_float,
        "poll_interval": _opt_float,
        "max_attempts": _opt_int,
        "run_timeout": _opt_float,
        "claim_batch": _opt_int,
        "speculate": _opt_bool,
        "speculation_factor": _opt_float,
        "min_stall": _opt_float,
        "hints_interval": _opt_float,
    }

    def __init__(
        self,
        queue=None,
        *,
        workers: Optional[int] = None,
        worker_mode: str = "process",
        lease_timeout: float = 30.0,
        poll_interval: float = 0.2,
        max_attempts: int = 3,
        run_timeout: Optional[float] = None,
        worker_env: Optional[dict] = None,
        claim_batch: int = 1,
        speculate: bool = True,
        speculation_factor: float = 4.0,
        min_stall: Optional[float] = None,
        hints_interval: float = 1.0,
    ) -> None:
        if worker_mode not in ("process", "thread"):
            raise ValueError(f"unknown worker mode {worker_mode!r}")
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if claim_batch < 1:
            raise ValueError("claim_batch must be at least 1")
        if speculation_factor <= 0:
            raise ValueError("speculation_factor must be positive")
        if min_stall is not None and min_stall <= 0:
            raise ValueError("min_stall must be positive")
        if hints_interval <= 0:
            raise ValueError("hints_interval must be positive")
        self.queue = queue
        self.workers = workers
        self.worker_mode = worker_mode
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        self.max_attempts = max_attempts
        self.run_timeout = run_timeout
        self.worker_env = dict(worker_env) if worker_env else None
        self.claim_batch = claim_batch
        self.speculate = speculate
        self.speculation_factor = speculation_factor
        #: Floor of the stall threshold; defaults to the lesser of 2s and
        #: a quarter of the lease, so fast fleets speculate promptly while
        #: noisy medians cannot trigger sub-second duplicates.
        self.min_stall = (
            min_stall if min_stall is not None else min(2.0, lease_timeout / 4.0)
        )
        self.hints_interval = hints_interval
        #: Observability for the last completed/failed run.
        self.stats: dict = {}

    # ------------------------------------------------------------------ #
    def run(self, specs, stream, *, jobs: int = 1) -> list:
        _check_jobs(jobs)
        from repro.events.store import ShardedTraceStore

        if not isinstance(stream, ShardedTraceStore):
            raise TypeError(
                "the distributed engine publishes transport specs to its "
                "workers and requires a ShardedTraceStore; shard the trace "
                "first (shard_trace / `ompdataperf trace shard`) or use "
                "the serial or thread engine"
            )
        tasks = partition_tasks(stream, jobs)
        if not tasks:
            if self.queue is not None:
                # Attach mode: external workers are watching this queue
                # location, so even a degenerate (single-partition) run
                # must create it and terminate them — otherwise they poll
                # forever for a run that will never appear.
                TaskQueue(self._open_queue()).mark_done()
            return SerialEngine().run(specs, stream, jobs=jobs)

        scratch_dir: Optional[str] = None
        if self.queue is None:
            scratch_dir = tempfile.mkdtemp(prefix="ompdataperf-queue-")
            transport = open_transport(Path(scratch_dir) / "queue", create=True)
            if transport.list_blobs():  # pragma: no cover - fresh tempdir
                raise ValueError(f"{transport.describe()}: scratch queue not empty")
        else:
            transport = self._open_queue()
        num_workers = self.workers if self.workers is not None else jobs
        if (
            num_workers > 0
            and self.worker_mode == "process"
            and getattr(transport, "path", None) is None
        ):
            raise ValueError(
                "process-mode workers are launched with a queue path and "
                f"{transport.describe()} has none; pass worker_mode='thread' "
                "or a path-backed queue"
            )

        queue = TaskQueue(transport)
        specs = tuple(specs)
        queue.publish_run(
            {
                "version": QUEUE_FORMAT_VERSION,
                "store_spec": stream.transport.spec(),
                "pass_specs": specs,
                "lease_timeout": self.lease_timeout,
                "claim_batch": self.claim_batch,
            }
        )
        for task in tasks:
            queue.publish_task(task)

        self.stats = {
            "tasks": len(tasks),
            "workers": num_workers,
            "requeued": 0,
            "respawned": 0,
            "speculative_launches": 0,
            "debris_blobs": 0,
            "duplicate_results": 0,
            "peak_unmerged_chains": 0,
        }
        handles = [
            self._spawn_worker(transport) for _ in range(num_workers)
        ]
        respawn_budget = num_workers
        try:
            # _coordinate folds result batches into running carries as
            # they land, so the merged chain is in hand before the done
            # marker releases the workers and the scratch queue is torn
            # down.
            merged = self._coordinate(
                queue, tasks, handles, respawn_budget, transport
            )
            queue.mark_done()
        except BaseException:
            # Whatever tore the run down (including KeyboardInterrupt in
            # the coordinator), external workers must not wait forever.
            if queue.abort_reason() is None and not queue.is_done():
                try:
                    queue.mark_abort("coordinator terminated")
                except TransportError:
                    pass
            raise
        finally:
            for handle in handles:
                handle.stop()
            if scratch_dir is not None:
                shutil.rmtree(scratch_dir, ignore_errors=True)

        # The five finalizes each rescan shards; a coordinator-owned shard
        # cache makes them decode each shard once between them.  A store
        # whose shards are all directly mappable flat payloads needs no
        # cache at all — every rescan is an O(1) map of the store file.
        if all(
            direct_map_preferred(stream.transport, shard.format)
            for shard in stream.shards
        ):
            return _finalize_all(merged, stream, jobs)
        cache = SharedShardCache()
        stream.attach_shard_cache(cache)
        try:
            return _finalize_all(merged, stream, jobs)
        finally:
            stream.attach_shard_cache(None)
            cache.cleanup(stream.num_shards)

    # ------------------------------------------------------------------ #
    def _open_queue(self) -> ShardTransport:
        """Open (creating if needed) the attach-mode queue location."""
        transport = open_transport(self.queue, create=True)
        _check_queue_transport(transport)
        if transport.list_blobs():
            raise ValueError(
                f"{transport.describe()}: refusing to coordinate over a "
                f"non-empty queue location (one queue is one run)"
            )
        return transport

    def _spawn_worker(self, transport: ShardTransport) -> _WorkerHandle:
        if self.worker_mode == "thread":
            thread = threading.Thread(
                target=run_worker,
                kwargs={
                    "queue": transport,
                    "poll_interval": min(self.poll_interval, 0.1),
                },
                daemon=True,
            )
            thread.start()
            return _WorkerHandle(thread=thread)
        env = dict(os.environ)
        # The spawned interpreter must find this package even when it is
        # used from a source tree rather than an installed distribution.
        package_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
        if self.worker_env:
            env.update(self.worker_env)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "worker",
                "--queue",
                str(transport.path),
                "--poll-interval",
                str(max(min(self.poll_interval, 0.2), 0.01)),
                "-q",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        return _WorkerHandle(proc=proc)

    def _coordinate(
        self,
        queue: TaskQueue,
        tasks: Sequence[PartitionTask],
        handles: list[_WorkerHandle],
        respawn_budget: int,
        transport: ShardTransport,
    ) -> list:
        """Poll until every task's carry is merged; requeue/speculate leases.

        Result batches are drained incrementally (each blob read exactly
        once) and folded straight into a :class:`CarryFolder`, so the
        coordinator never holds more than the current contiguous runs —
        O(passes) carries for in-order-ish arrival — and returns the
        fully merged chain.
        """
        started = time.monotonic()
        current_attempt = {task.index: 0 for task in tasks}
        # index -> (state token, monotonic time the token last changed)
        observed: dict[int, tuple[tuple, float]] = {}
        task_by_index = {task.index: task for task in tasks}
        folder = CarryFolder(len(tasks))
        seen_batches: set[str] = set()
        # Speculation state: per-task fold-position marks, the fleet-wide
        # recent progress intervals, and which (index, attempt) pairs were
        # published when (claim latency for the hints blob).
        progress_marks: dict[int, tuple[tuple, float]] = {}
        liveness_marks: dict[int, tuple[tuple, float]] = {}
        progress_intervals: deque = deque(maxlen=64)
        claim_latencies: deque = deque(maxlen=64)
        publish_times = {(task.index, 0): started for task in tasks}
        claims_observed: set[tuple[int, int]] = set()
        speculated: set[int] = set()
        hints_seq = 0
        last_hints = started - self.hints_interval  # publish on first poll

        def fail_task(index: int, reason: str) -> None:
            attempt = current_attempt[index]
            stem = _task_stem(index, attempt)
            # Clear the dead generation's lease debris so the attempt tag
            # alone distinguishes live state.
            for name in list_blobs_under(transport, CLAIM_PREFIX + stem):
                transport.delete_blob(name)
            for name in list_blobs_under(transport, BEAT_PREFIX + stem):
                transport.delete_blob(name)
            next_attempt = attempt + 1
            if next_attempt >= self.max_attempts:
                message = (
                    f"task {index} failed {next_attempt} attempt(s), last: "
                    f"{reason} (max_attempts={self.max_attempts})"
                )
                queue.mark_abort(message)
                raise DistributedExecutionError(message)
            current_attempt[index] = next_attempt
            observed.pop(index, None)
            progress_marks.pop(index, None)
            liveness_marks.pop(index, None)
            self.stats["requeued"] += 1
            queue.publish_task(task_by_index[index], attempt=next_attempt)
            publish_times[(index, next_attempt)] = time.monotonic()

        def speculate_task(index: int, now: float) -> None:
            """Re-publish a stalled claim under the next attempt tag.

            The frozen claim is deliberately left in place: if its worker
            is merely slow it will still publish a (bit-identical) result,
            and whichever attempt lands first wins.
            """
            attempt = current_attempt[index]
            next_attempt = attempt + 1
            speculated.add(index)
            current_attempt[index] = next_attempt
            observed.pop(index, None)
            progress_marks.pop(index, None)
            liveness_marks.pop(index, None)
            self.stats["speculative_launches"] += 1
            queue.publish_task(task_by_index[index], attempt=next_attempt)
            publish_times[(index, next_attempt)] = now

        def note_debris() -> None:
            self.stats["debris_blobs"] += 1
            if self.stats["debris_blobs"] == 1:
                warnings.warn(
                    "distributed run: dropped undecodable result debris "
                    "from the queue (counted in stats['debris_blobs']); "
                    "the affected tasks will requeue",
                    RuntimeWarning,
                    stacklevel=3,
                )

        def publish_hints(
            now: float, pending_count: int, active_claims: dict,
            force: bool = False,
        ) -> None:
            nonlocal hints_seq, last_hints
            if not force and now - last_hints < self.hints_interval:
                return
            last_hints = now
            hints_seq += 1
            claim_wids = {
                name.rsplit(".", 1)[1] for name in active_claims.values()
            }
            live_spawned = sum(1 for handle in handles if handle.alive())
            workers_seen = max(live_spawned, len(claim_wids))
            idle = max(0, workers_seen - len(active_claims))
            if pending_count > idle:
                delta = pending_count - idle
            elif pending_count == 0 and idle > 0:
                delta = -idle
            else:
                delta = 0
            hints = {
                "version": HINTS_VERSION,
                "seq": hints_seq,
                "tasks": len(tasks),
                "pending": pending_count,
                "claimed": len(active_claims),
                "completed": folder.merged_count,
                "requeued": self.stats["requeued"],
                "speculative_launches": self.stats["speculative_launches"],
                "debris_blobs": self.stats["debris_blobs"],
                "workers_observed": workers_seen,
                "claim_latency_seconds": (
                    round(statistics.median(claim_latencies), 6)
                    if claim_latencies else None
                ),
                "median_fold_interval_seconds": (
                    round(statistics.median(progress_intervals), 6)
                    if progress_intervals else None
                ),
                "suggested_worker_delta": delta,
            }
            self.stats["hints"] = hints
            # Best effort: a failed publish costs one stale interval.
            try_write_blob(
                transport, HINTS_BLOB, json.dumps(hints, sort_keys=True).encode()
            )

        while True:
            now = time.monotonic()
            names = transport.list_blobs()
            pending = set()
            claims: dict[tuple[int, int], str] = {}
            errors: dict[tuple[int, int], str] = {}
            batch_names: list[str] = []
            for name in names:
                if name.startswith(RESULT_PREFIX):
                    if name[len(RESULT_PREFIX):].startswith("rb-"):
                        batch_names.append(name)
                elif name.startswith(TASK_PREFIX):
                    parsed = _parse_pending_name(name)
                    if parsed:
                        pending.add(parsed)
                elif name.startswith(CLAIM_PREFIX):
                    parsed = _parse_leased_name(name)
                    if parsed:
                        claims[parsed] = name
                elif name.startswith(ERROR_PREFIX):
                    parsed = _parse_leased_name(name)
                    if parsed:
                        errors[parsed] = name

            for name in batch_names:
                if name in seen_batches:
                    continue
                seen_batches.add(name)
                data = try_read_blob(transport, name)
                if data is None:
                    continue
                try:
                    entries = _decode_result_batch(data)
                except (CarryCodecError, struct.error):
                    # Undecodable batch blob: the tasks inside requeue,
                    # but the drop itself must leave a trace.
                    note_debris()
                    continue
                for index, payload in entries:
                    if index not in task_by_index:
                        note_debris()
                        continue
                    try:
                        chain = decode_carries(payload)
                    except (CarryCodecError, struct.error):
                        note_debris()
                        continue
                    # Fold into the running carries immediately; a
                    # zombie's bit-identical duplicate is dropped by
                    # task index.
                    if folder.add(index, chain):
                        # Every landing feeds the fleet-median window: the
                        # interval since the claim's last observed progress
                        # when we saw one, else since the task was
                        # published (its whole wall time) — so the median
                        # exists even when folds finish between polls.
                        mark = progress_marks.pop(index, None)
                        if mark is not None:
                            progress_intervals.append(now - mark[1])
                        else:
                            published = publish_times.get(
                                (index, current_attempt.get(index, 0))
                            )
                            if published is not None:
                                progress_intervals.append(now - published)
                    else:
                        self.stats["duplicate_results"] += 1
            self.stats["peak_unmerged_chains"] = folder.peak_chains

            if folder.complete:
                publish_hints(now, 0, {}, force=True)
                return folder.result()

            for task in tasks:
                index = task.index
                if index in folder._seen:
                    continue
                attempt = current_attempt[index]
                key = (index, attempt)
                if key in errors:
                    message = try_read_blob(transport, errors[key])
                    reason = (
                        message.decode("utf-8", errors="replace")
                        if message
                        else "worker reported an error"
                    )
                    fail_task(index, reason)
                    continue
                if key in pending:
                    token: tuple = ("pending", attempt)
                    frozen_means_dead = False
                else:
                    claim_name = claims.get(key)
                    if claim_name is not None:
                        beat_name = BEAT_PREFIX + claim_name[len(CLAIM_PREFIX):]
                        beat = try_read_blob(transport, beat_name)
                        token = ("claim", claim_name, beat)
                        if key not in claims_observed:
                            claims_observed.add(key)
                            published = publish_times.get(key)
                            if published is not None:
                                claim_latencies.append(now - published)
                        self._track_progress(
                            index, attempt, claim_name, beat, now,
                            progress_marks, liveness_marks,
                            progress_intervals, speculated, speculate_task,
                        )
                    else:
                        # Neither pending nor claimed nor resulted: a torn
                        # claim rename, or a listing racing the worker.
                        token = ("missing", attempt)
                    frozen_means_dead = True
                last = observed.get(index)
                if last is None or last[0] != token:
                    observed[index] = (token, now)
                elif frozen_means_dead and now - last[1] > self.lease_timeout:
                    what = "lease expired" if token[0] == "claim" else "task blob lost"
                    fail_task(index, f"{what} after {self.lease_timeout:g}s")

            publish_hints(
                now,
                sum(
                    1 for key in pending
                    if current_attempt.get(key[0]) == key[1]
                    and key[0] not in folder._seen
                ),
                {
                    key: name for key, name in claims.items()
                    if current_attempt.get(key[0]) == key[1]
                },
            )

            # Keep the spawned fleet alive while the budget lasts; a fleet
            # that died entirely can never finish the run, so fail fast.
            if handles:
                for i, handle in enumerate(handles):
                    if not handle.alive():
                        if respawn_budget > 0:
                            respawn_budget -= 1
                            self.stats["respawned"] += 1
                            handles[i] = self._spawn_worker(transport)
                if not any(handle.alive() for handle in handles):
                    message = (
                        f"all {len(handles)} spawned worker(s) exited before "
                        f"the run completed (respawn budget exhausted)"
                    )
                    queue.mark_abort(message)
                    raise DistributedExecutionError(message)

            if (
                self.run_timeout is not None
                and time.monotonic() - started > self.run_timeout
            ):
                message = f"run did not complete within {self.run_timeout:g}s"
                queue.mark_abort(message)
                raise DistributedExecutionError(message)
            time.sleep(self.poll_interval)

    def _track_progress(
        self,
        index: int,
        attempt: int,
        claim_name: str,
        beat: Optional[bytes],
        now: float,
        progress_marks: dict,
        liveness_marks: dict,
        progress_intervals: deque,
        speculated: set,
        speculate_task,
    ) -> None:
        """Record fold-position movement; speculate when it stalls.

        A claimed task's progress token is the fold-position half of its
        beat blob; its liveness token is the full beat bytes (counter
        included).  Every fold-position change feeds the fleet-wide
        interval window.  A task whose fold position freezes for longer
        than ``speculation_factor`` times the fleet median (floored at
        ``min_stall``) **while its liveness counter keeps ticking** is a
        straggler — alive but stuck — and is re-published under the next
        attempt tag.  A frozen liveness counter means a dead worker, and
        that is the lease-expiry path's job (which also clears the dead
        lease's debris; speculation leaves the old claim in place).
        """
        ptoken = (attempt, claim_name, _beat_progress(beat))
        ltoken = (attempt, claim_name, beat)
        lmark = liveness_marks.get(index)
        if lmark is None or lmark[0] != ltoken:
            liveness_marks[index] = (ltoken, now)
        mark = progress_marks.get(index)
        if mark is None or mark[0] != ptoken:
            if mark is not None and mark[0][:2] == ptoken[:2]:
                # Same claim, fold position advanced: one fleet interval.
                progress_intervals.append(now - mark[1])
            progress_marks[index] = (ptoken, now)
            return
        if (
            not self.speculate
            or index in speculated
            or attempt + 1 >= self.max_attempts
            or not progress_intervals
        ):
            return
        # Alive means the liveness token moved after progress froze.
        if liveness_marks[index][1] <= mark[1]:
            return
        stalled_for = now - mark[1]
        threshold = max(
            self.speculation_factor * statistics.median(progress_intervals),
            self.min_stall,
        )
        if stalled_for > threshold and stalled_for <= self.lease_timeout:
            speculate_task(index, now)


ENGINES[DistributedEngine.name] = DistributedEngine
