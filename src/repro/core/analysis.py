"""Run every detector over a trace (or event stream) and aggregate findings."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from time import perf_counter
from typing import Iterator, Optional

from repro.core.detectors.duplicates import (
    DuplicateTransferPass,
    count_redundant_transfers,
    find_duplicate_transfers,
    find_duplicate_transfers_columnar,
)
from repro.core.detectors.findings import (
    DuplicateTransferGroup,
    RepeatedAllocationGroup,
    RoundTripGroup,
    UnusedAllocation,
    UnusedTransfer,
)
from repro.core.detectors.repeated_allocs import (
    RepeatedAllocationPass,
    count_redundant_allocations,
    find_repeated_allocations,
    find_repeated_allocations_columnar,
)
from repro.core.detectors.roundtrips import (
    RoundTripPass,
    count_round_trips,
    find_round_trips,
    find_round_trips_columnar,
)
from repro.core.detectors.unused_allocs import (
    UnusedAllocationPass,
    find_unused_allocations,
    find_unused_allocations_columnar,
)
from repro.core.detectors.unused_transfers import (
    UnusedTransferPass,
    find_unused_transfers,
    find_unused_transfers_columnar,
)
from repro.core.engine import PassSpec, resolve_engine
from repro.core.potential import OptimizationPotential, estimate_potential
from repro.dwarf.debuginfo import DebugInfoRegistry
from repro.events.columnar import ColumnarTrace
from repro.events.protocol import EventStream, TraceLike
from repro.events.stream import trace_like_view
from repro.events.trace import Trace


@dataclass(frozen=True)
class IssueCounts:
    """The per-category issue counts reported in Table 1.

    Abbreviations follow Section 7.5: DD (duplicate data transfers), RT
    (round-trip data transfers), RA (repeated device memory allocations),
    UA (unused device memory allocations), UT (unused data transfers).
    """

    duplicate_transfers: int = 0
    round_trips: int = 0
    repeated_allocations: int = 0
    unused_allocations: int = 0
    unused_transfers: int = 0

    @property
    def total(self) -> int:
        return (
            self.duplicate_transfers
            + self.round_trips
            + self.repeated_allocations
            + self.unused_allocations
            + self.unused_transfers
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "DD": self.duplicate_transfers,
            "RT": self.round_trips,
            "RA": self.repeated_allocations,
            "UA": self.unused_allocations,
            "UT": self.unused_transfers,
        }

    def issue_classes(self) -> list[str]:
        """The non-empty issue classes, in Table 2's abbreviation form."""
        return [name for name, count in self.as_dict().items() if count > 0]


@dataclass
class AnalysisReport:
    """Aggregated result of running all five detectors on one trace."""

    trace: TraceLike
    counts: IssueCounts
    duplicate_groups: list[DuplicateTransferGroup]
    round_trip_groups: list[RoundTripGroup]
    repeated_alloc_groups: list[RepeatedAllocationGroup]
    unused_allocations: list[UnusedAllocation]
    unused_transfers: list[UnusedTransfer]
    potential: OptimizationPotential
    debug_info: Optional[DebugInfoRegistry] = None

    @property
    def has_issues(self) -> bool:
        return self.counts.total > 0

    def render(self) -> str:
        """Human-readable report (see :mod:`repro.core.report`)."""
        from repro.core.report import render_report

        return render_report(self)

    def summary(self) -> dict:
        return {
            "program_name": self.trace.program_name,
            "counts": self.counts.as_dict(),
            "potential": self.potential.as_dict(),
        }


@dataclass
class StreamAnalysisReport(AnalysisReport):
    """An :class:`AnalysisReport` that also carries how the run executed.

    :func:`analyze_stream` returns this so callers stop reaching into
    ``engine.stats`` by side channel: the engine's name, its final
    ``stats`` block (the stable contract documented on
    :func:`repro.core.engine.resolve_engine`), and coarse wall/overhead
    timings travel with the findings.

    ``findings_by_pass`` exposes the per-pass findings as a mapping keyed
    by detector name.  The report also still unpacks like the historic
    five-element findings list (``dup, rt, ra, ua, ut = report``) for one
    deprecation cycle; sequence access warns once per process.
    """

    #: Registry name of the engine that ran the folds (e.g. "distributed").
    engine_name: str = "serial"
    #: Snapshot of ``engine.stats`` after the run ({} for engines
    #: that report none).
    engine_stats: dict = field(default_factory=dict)
    #: Coarse timings: ``wall_seconds`` (whole analysis),
    #: ``engine_seconds`` (fold/finalize inside ``engine.run``), and
    #: ``overhead_seconds`` (assembly outside the engine).
    timings: dict = field(default_factory=dict)

    @property
    def findings_by_pass(self) -> dict[str, list]:
        """Per-pass findings keyed by detector name, in pass order."""
        return {
            "duplicate_transfers": self.duplicate_groups,
            "round_trips": self.round_trip_groups,
            "repeated_allocations": self.repeated_alloc_groups,
            "unused_allocations": self.unused_allocations,
            "unused_transfers": self.unused_transfers,
        }

    # -- deprecated sequence shim (one cycle) -------------------------- #
    def _findings_list(self) -> list[list]:
        from repro.core.engine import _warn_deprecated_once

        _warn_deprecated_once(
            "stream-report-sequence",
            "treating the analyze_stream result as a findings list is "
            "deprecated; use report.findings_by_pass (or the named "
            "report attributes) instead",
        )
        return list(self.findings_by_pass.values())

    def __len__(self) -> int:
        return len(self._findings_list())

    def __iter__(self) -> Iterator[list]:
        return iter(self._findings_list())

    def __getitem__(self, key):
        return self._findings_list()[key]

    def __bool__(self) -> bool:
        # Defined so truthiness does not route through the deprecated
        # sequence shim's __len__.
        return True


def analyze_trace(
    trace: Trace | ColumnarTrace,
    *,
    debug_info: Optional[DebugInfoRegistry] = None,
) -> AnalysisReport:
    """Run Algorithms 1–5 over a trace and estimate the optimization potential.

    Both trace representations are accepted: a columnar trace is analysed
    through the vectorised detector fast paths, an object trace through the
    reference implementations.  The findings are identical either way (the
    differential property test holds the two paths to bit-identical output).
    """
    num_devices = max(trace.num_devices, 1)

    if isinstance(trace, ColumnarTrace):
        duplicate_groups = find_duplicate_transfers_columnar(trace)
        round_trip_groups = find_round_trips_columnar(trace)
        repeated_alloc_groups = find_repeated_allocations_columnar(trace)
        unused_allocs = find_unused_allocations_columnar(trace, num_devices)
        unused_txs = find_unused_transfers_columnar(trace, num_devices)
    else:
        data_ops = trace.data_op_events
        targets = trace.target_events
        duplicate_groups = find_duplicate_transfers(data_ops)
        round_trip_groups = find_round_trips(data_ops)
        repeated_alloc_groups = find_repeated_allocations(data_ops)
        unused_allocs = find_unused_allocations(targets, data_ops, num_devices)
        unused_txs = find_unused_transfers(targets, data_ops, num_devices)

    return _assemble_report(
        trace,
        duplicate_groups,
        round_trip_groups,
        repeated_alloc_groups,
        unused_allocs,
        unused_txs,
        debug_info,
    )


def analyze_stream(
    stream: EventStream,
    *,
    debug_info: Optional[DebugInfoRegistry] = None,
    jobs: int = 1,
    engine: str = "serial",
) -> StreamAnalysisReport:
    """Run Algorithms 1–5 incrementally over an event stream.

    Each detector is one fold/finalize pass in O(carry) memory, so a trace
    never has to fit in memory; findings are bit-identical to
    :func:`analyze_trace` over the merged trace (the differential property
    tests enforce this).  ``engine`` picks how the folds execute (see
    :mod:`repro.core.engine`):

    * ``"serial"`` (default) — ONE sequential scan; every shard is loaded
      once and handed to all five folds.  With ``jobs > 1`` a prefetch
      thread decodes the next shard while the folds consume the current
      one, and the five finalizes run concurrently — the gain materialises
      when shard decode dominates (compressed stores, cold storage), but
      the folds themselves stay on the calling thread.
    * ``"thread"`` — ``jobs`` worker threads each fold a contiguous,
      event-balanced partition of the stream; the partition carries merge
      left to right.  Decode parallelises, folds stay GIL-bound.
    * ``"process"`` — the same partitioned shape with process workers that
      re-open the store from its picklable transport spec and return only
      their carries (folds *and* finalizes run on the worker pool), which
      is what lets the GIL-bound work scale across cores (requires a
      :class:`~repro.events.store.ShardedTraceStore`, over any transport).
    * ``"distributed"`` — the same shape again with workers fed from a
      transport-backed task queue (:mod:`repro.core.distributed`), which
      is what lets the fold work leave the machine entirely: by default
      the coordinator spawns ``jobs`` loopback worker processes over a
      scratch queue, or it attaches to an existing queue whose workers
      were started anywhere with ``ompdataperf worker --queue`` (requires
      a :class:`~repro.events.store.ShardedTraceStore`).

    ``engine`` may also be an engine spec string with options
    (``"distributed:claim_batch=4,speculate=on"``), an
    :class:`~repro.core.engine.EngineConfig`, or an
    :class:`~repro.core.engine.ExecutionEngine` instance (what the CLI
    passes after resolving with degradation, or a configured
    :class:`~repro.core.distributed.DistributedEngine`).
    Output is identical for every engine and every ``jobs`` value.

    Returns a :class:`StreamAnalysisReport`: the findings plus the
    engine's name, its final ``stats`` block, and wall/overhead timings.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    started = perf_counter()
    eng = resolve_engine(engine)
    num_devices = max(stream.num_devices, 1)

    specs = (
        PassSpec(DuplicateTransferPass),
        PassSpec(RoundTripPass),
        PassSpec(RepeatedAllocationPass),
        PassSpec(UnusedAllocationPass, {"num_devices": num_devices}),
        PassSpec(UnusedTransferPass, {"num_devices": num_devices}),
    )
    run_started = perf_counter()
    results = eng.run(specs, stream, jobs=jobs)
    engine_seconds = perf_counter() - run_started
    duplicate_groups, round_trip_groups, repeated_alloc_groups, unused_allocs, unused_txs = results

    report = _assemble_report(
        trace_like_view(stream),
        duplicate_groups,
        round_trip_groups,
        repeated_alloc_groups,
        unused_allocs,
        unused_txs,
        debug_info,
    )
    wall = perf_counter() - started
    from repro.core.engine import engine_registry_name

    return StreamAnalysisReport(
        **{f.name: getattr(report, f.name) for f in fields(AnalysisReport)},
        engine_name=engine_registry_name(eng),
        engine_stats=dict(getattr(eng, "stats", {}) or {}),
        timings={
            "wall_seconds": wall,
            "engine_seconds": engine_seconds,
            "overhead_seconds": max(0.0, wall - engine_seconds),
        },
    )


def _assemble_report(
    trace: TraceLike,
    duplicate_groups,
    round_trip_groups,
    repeated_alloc_groups,
    unused_allocs,
    unused_txs,
    debug_info: Optional[DebugInfoRegistry],
) -> AnalysisReport:
    counts = IssueCounts(
        duplicate_transfers=count_redundant_transfers(duplicate_groups),
        round_trips=count_round_trips(round_trip_groups),
        repeated_allocations=count_redundant_allocations(repeated_alloc_groups),
        unused_allocations=len(unused_allocs),
        unused_transfers=len(unused_txs),
    )
    potential = estimate_potential(
        trace,
        duplicate_groups=duplicate_groups,
        round_trip_groups=round_trip_groups,
        repeated_alloc_groups=repeated_alloc_groups,
        unused_allocations=unused_allocs,
        unused_transfers=unused_txs,
    )
    return AnalysisReport(
        trace=trace,
        counts=counts,
        duplicate_groups=duplicate_groups,
        round_trip_groups=round_trip_groups,
        repeated_alloc_groups=repeated_alloc_groups,
        unused_allocations=unused_allocs,
        unused_transfers=unused_txs,
        potential=potential,
        debug_info=debug_info,
    )
