"""Compact binary codec for detector carry state.

The parallel engines ship partition carries between processes twice per
task: once over the worker result pipe and once (distributed runs) as
``results/`` blobs on the queue transport.  Pickle handles both today but
pays per-object overhead on every NumPy buffer and drags the full pickle
machinery onto the hot path.  This module replaces it with a versioned
tagged binary format specialised to the closed set of types that actually
appear in carries:

* scalars — ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``,
  NumPy scalars and ``np.dtype`` instances,
* containers — ``list``, ``tuple`` and insertion-ordered ``dict``
  (composite keys such as ``(device, address)`` tuples included),
* NumPy arrays — dtype string + shape + raw contiguous buffer,
* the registered carry-bearing classes (grow arrays, column buffers,
  kernel cursors, composite-key counters, alloc pairers, per-device
  transfer state and the five detector passes), serialised as their
  ``__dict__`` and restored without running ``__init__``.

The format is deterministic (``encode(decode(encode(x))) == encode(x)``)
and the decoded carries are bit-identical inputs to ``merge``/``finalize``:
the differential oracle must not be able to tell the codec from pickle.

Wire format::

    b"ODPC"  u16 version  u32 count  value*

where every value is ``tag:u8`` followed by a tag-specific payload (all
integers little-endian).
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Sequence, Tuple, Type

import numpy as np

MAGIC = b"ODPC"
CODEC_VERSION = 1

# Value tags.  Never renumber — bump CODEC_VERSION for incompatible changes.
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03        # fits in a signed 64-bit integer
_T_BIGINT = 0x04     # decimal string (arbitrary precision fallback)
_T_FLOAT = 0x05      # IEEE-754 binary64 bit pattern (inf/nan preserved)
_T_STR = 0x06
_T_BYTES = 0x07
_T_LIST = 0x08
_T_TUPLE = 0x09
_T_DICT = 0x0A       # ordered (key, value) pairs
_T_NDARRAY = 0x0B    # dtype.str, ndim, dims, contiguous buffer
_T_NPSCALAR = 0x0C   # dtype.str, raw item bytes
_T_DTYPE = 0x0D      # dtype.str
_T_OBJECT = 0x0E     # registered class name + encoded state


class CarryCodecError(ValueError):
    """Raised for malformed or unsupported carry payloads."""


# --------------------------------------------------------------------- #
# Registered classes
# --------------------------------------------------------------------- #
def _default_state(obj: Any) -> dict:
    return dict(vars(obj))


def _make_default_restore(cls: Type) -> Callable[[Any], Any]:
    def restore(state: Any) -> Any:
        if not isinstance(state, dict):
            raise CarryCodecError(
                f"carry state for {cls.__name__} must be a dict, "
                f"got {type(state).__name__}"
            )
        obj = cls.__new__(cls)
        obj.__dict__.update(state)
        return obj

    return restore


def _growarray_state(grow: Any) -> dict:
    # Never serialise the raw backing buffer: restoring an empty `_arr`
    # would break extend()'s doubling loop, and the slack tail is noise.
    return {
        "dtype": grow._dtype.str,
        "data": np.ascontiguousarray(grow._arr[: grow.size]),
    }


def _registry() -> Dict[str, Tuple[Type, Callable, Callable]]:
    # Imported lazily to dodge the circular import (detector modules may
    # themselves be imported while this module loads).
    from repro.core.detectors import _streaming as streaming
    from repro.core.detectors.duplicates import DuplicateTransferPass
    from repro.core.detectors.repeated_allocs import RepeatedAllocationPass
    from repro.core.detectors.roundtrips import RoundTripPass
    from repro.core.detectors.unused_allocs import UnusedAllocationPass
    from repro.core.detectors.unused_transfers import (
        UnusedTransferPass,
        _DeviceTransferState,
    )

    def growarray_restore(state: Any) -> Any:
        grow = streaming.GrowArray(np.dtype(state["dtype"]))
        grow.extend(state["data"])
        return grow

    table: Dict[str, Tuple[Type, Callable, Callable]] = {
        "GrowArray": (streaming.GrowArray, _growarray_state, growarray_restore),
    }
    for name, cls in (
        ("ColumnBuffer", streaming.ColumnBuffer),
        ("DeviceKernels", streaming.DeviceKernels),
        ("CompositeKeyCounter", streaming.CompositeKeyCounter),
        ("StreamingAllocPairer", streaming.StreamingAllocPairer),
        ("DeviceTransferState", _DeviceTransferState),
        ("DuplicateTransferPass", DuplicateTransferPass),
        ("RoundTripPass", RoundTripPass),
        ("RepeatedAllocationPass", RepeatedAllocationPass),
        ("UnusedAllocationPass", UnusedAllocationPass),
        ("UnusedTransferPass", UnusedTransferPass),
    ):
        table[name] = (cls, _default_state, _make_default_restore(cls))
    return table


_TABLE: Dict[str, Tuple[Type, Callable, Callable]] = {}
_BY_CLASS: Dict[Type, str] = {}


def _ensure_registry() -> None:
    if not _TABLE:
        _TABLE.update(_registry())
        _BY_CLASS.update({cls: name for name, (cls, _, _) in _TABLE.items()})


# --------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------- #
def _pack_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    out += struct.pack("<I", len(raw))
    out += raw


def _encode_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
    elif isinstance(value, np.generic):
        # Before bool/int/float: NumPy scalars must round-trip with their
        # exact dtype so merged carries stay bit-identical to pickle's.
        out.append(_T_NPSCALAR)
        _pack_str(out, value.dtype.str)
        raw = value.tobytes()
        out += struct.pack("<I", len(raw))
        out += raw
    elif isinstance(value, bool):
        out.append(_T_TRUE if value else _T_FALSE)
    elif isinstance(value, int):
        try:
            packed = struct.pack("<q", value)
        except struct.error:
            out.append(_T_BIGINT)
            _pack_str(out, str(value))
        else:
            out.append(_T_INT)
            out += packed
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += struct.pack("<d", value)
    elif isinstance(value, str):
        out.append(_T_STR)
        _pack_str(out, value)
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        out += struct.pack("<Q", len(value))
        out += value
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        out.append(_T_NDARRAY)
        _pack_str(out, arr.dtype.str)
        out.append(arr.ndim)
        out += struct.pack(f"<{arr.ndim}Q", *arr.shape)
        raw = arr.tobytes()
        out += struct.pack("<Q", len(raw))
        out += raw
    elif isinstance(value, np.dtype):
        out.append(_T_DTYPE)
        _pack_str(out, value.str)
    elif isinstance(value, list):
        out.append(_T_LIST)
        out += struct.pack("<I", len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        out += struct.pack("<I", len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out += struct.pack("<I", len(value))
        for key, item in value.items():
            _encode_value(out, key)
            _encode_value(out, item)
    else:
        _ensure_registry()
        name = _BY_CLASS.get(type(value))
        if name is None:
            raise CarryCodecError(
                f"cannot encode carry value of type {type(value).__name__}"
            )
        out.append(_T_OBJECT)
        _pack_str(out, name)
        _, state_fn, _ = _TABLE[name]
        _encode_value(out, state_fn(value))


# --------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------- #
class _Reader:
    __slots__ = ("data", "off")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.off = 0

    def take(self, n: int) -> bytes:
        end = self.off + n
        if end > len(self.data):
            raise CarryCodecError("truncated carry payload")
        chunk = self.data[self.off : end]
        self.off = end
        return chunk

    def unpack(self, fmt: str) -> tuple:
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))

    def read_str(self) -> str:
        (length,) = self.unpack("<I")
        return self.take(length).decode("utf-8")


def _decode_value(reader: _Reader) -> Any:
    tag = reader.take(1)[0]
    if tag == _T_NONE:
        return None
    if tag == _T_FALSE:
        return False
    if tag == _T_TRUE:
        return True
    if tag == _T_INT:
        return reader.unpack("<q")[0]
    if tag == _T_BIGINT:
        return int(reader.read_str())
    if tag == _T_FLOAT:
        return reader.unpack("<d")[0]
    if tag == _T_STR:
        return reader.read_str()
    if tag == _T_BYTES:
        (length,) = reader.unpack("<Q")
        return reader.take(length)
    if tag == _T_LIST:
        (count,) = reader.unpack("<I")
        return [_decode_value(reader) for _ in range(count)]
    if tag == _T_TUPLE:
        (count,) = reader.unpack("<I")
        return tuple(_decode_value(reader) for _ in range(count))
    if tag == _T_DICT:
        (count,) = reader.unpack("<I")
        result = {}
        for _ in range(count):
            key = _decode_value(reader)
            result[key] = _decode_value(reader)
        return result
    if tag == _T_NDARRAY:
        dtype = np.dtype(reader.read_str())
        ndim = reader.take(1)[0]
        shape = reader.unpack(f"<{ndim}Q") if ndim else ()
        (nbytes,) = reader.unpack("<Q")
        raw = reader.take(nbytes)
        # .copy(): frombuffer views are read-only, and carries mutate.
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    if tag == _T_NPSCALAR:
        dtype = np.dtype(reader.read_str())
        (nbytes,) = reader.unpack("<I")
        raw = reader.take(nbytes)
        return np.frombuffer(raw, dtype=dtype)[0]
    if tag == _T_DTYPE:
        return np.dtype(reader.read_str())
    if tag == _T_OBJECT:
        _ensure_registry()
        name = reader.read_str()
        entry = _TABLE.get(name)
        if entry is None:
            raise CarryCodecError(f"unknown carry class {name!r}")
        state = _decode_value(reader)
        return entry[2](state)
    raise CarryCodecError(f"unknown carry tag 0x{tag:02x}")


# --------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------- #
def encode_value(value: Any) -> bytes:
    """Encode one carry value (exposed for tests and tooling)."""
    out = bytearray()
    _encode_value(out, value)
    return bytes(out)


def decode_value(data: bytes) -> Any:
    reader = _Reader(bytes(data))
    value = _decode_value(reader)
    if reader.off != len(reader.data):
        raise CarryCodecError("trailing bytes after carry value")
    return value


def encode_carries(passes: Sequence[Any]) -> bytes:
    """Serialise one partition's list of folded detector passes."""
    out = bytearray()
    out += MAGIC
    out += struct.pack("<HI", CODEC_VERSION, len(passes))
    for pass_ in passes:
        _encode_value(out, pass_)
    return bytes(out)


def decode_carries(data: bytes) -> List[Any]:
    """Restore the list of passes produced by :func:`encode_carries`."""
    reader = _Reader(bytes(data))
    if reader.take(4) != MAGIC:
        raise CarryCodecError("not a carry payload (bad magic)")
    version, count = reader.unpack("<HI")
    if version != CODEC_VERSION:
        raise CarryCodecError(
            f"carry payload version {version} is not supported "
            f"(expected {CODEC_VERSION})"
        )
    passes = [_decode_value(reader) for _ in range(count)]
    if reader.off != len(reader.data):
        raise CarryCodecError("trailing bytes after carry payload")
    return passes
