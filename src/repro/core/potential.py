"""Optimization-potential estimation (Section 7.6).

The key differentiator of OMPDataPerf over coarse-grained profilers is the
quantified assessment of how much can be gained by fixing the reported
issues.  The estimate is computed exactly as the paper describes: the
predicted runtime is the measured runtime minus the combined duration of the
transfer and allocation operations that would disappear if every identified
inefficiency were eliminated, and the predicted speedup is the ratio of the
two.

Events implicated by several patterns at once (a redundant transfer that is
simultaneously the return leg of a round trip, say) are only counted once:
the estimator unions the removable events by sequence number before summing
durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.detectors.findings import (
    DuplicateTransferGroup,
    RepeatedAllocationGroup,
    RoundTripGroup,
    UnusedAllocation,
    UnusedTransfer,
)
from repro.events.protocol import TraceLike
from repro.events.records import DataOpEvent


@dataclass(frozen=True)
class OptimizationPotential:
    """Predicted benefit of eliminating every detected inefficiency."""

    #: measured (traced) program runtime in seconds
    measured_runtime: float
    #: combined duration of all removable data operations
    predicted_time_saved: float
    #: bytes of transfer volume that would be eliminated
    predicted_bytes_saved: int
    #: number of data operations that would be eliminated
    predicted_ops_saved: int
    #: sequence numbers of the removable events (useful for attribution)
    removable_event_seqs: frozenset[int]

    @property
    def predicted_runtime(self) -> float:
        return max(self.measured_runtime - self.predicted_time_saved, 0.0)

    @property
    def predicted_speedup(self) -> float:
        """Predicted speedup = measured / predicted runtime (>= 1.0)."""
        remaining = self.measured_runtime - self.predicted_time_saved
        if remaining <= 0.0:
            return float("inf")
        return self.measured_runtime / remaining

    @property
    def predicted_saved_fraction(self) -> float:
        """Fraction of the measured runtime attributed to removable operations."""
        if self.measured_runtime <= 0.0:
            return 0.0
        return self.predicted_time_saved / self.measured_runtime

    def as_dict(self) -> dict:
        return {
            "measured_runtime": self.measured_runtime,
            "predicted_time_saved": self.predicted_time_saved,
            "predicted_bytes_saved": self.predicted_bytes_saved,
            "predicted_ops_saved": self.predicted_ops_saved,
            "predicted_runtime": self.predicted_runtime,
            "predicted_speedup": self.predicted_speedup,
            "predicted_saved_fraction": self.predicted_saved_fraction,
        }


def _collect_removable(
    duplicate_groups: Sequence[DuplicateTransferGroup],
    round_trip_groups: Sequence[RoundTripGroup],
    repeated_alloc_groups: Sequence[RepeatedAllocationGroup],
    unused_allocations: Sequence[UnusedAllocation],
    unused_transfers: Sequence[UnusedTransfer],
) -> dict[int, DataOpEvent]:
    removable: dict[int, DataOpEvent] = {}

    def add(events: Iterable[DataOpEvent]) -> None:
        for event in events:
            removable.setdefault(event.seq, event)

    for group in duplicate_groups:
        add(group.removable_events())
    for group in round_trip_groups:
        add(group.removable_events())
    for group in repeated_alloc_groups:
        add(group.removable_events())
    for finding in unused_allocations:
        add(finding.removable_events())
    for finding in unused_transfers:
        add(finding.removable_events())
    return removable


def estimate_potential(
    trace: TraceLike,
    *,
    duplicate_groups: Sequence[DuplicateTransferGroup] = (),
    round_trip_groups: Sequence[RoundTripGroup] = (),
    repeated_alloc_groups: Sequence[RepeatedAllocationGroup] = (),
    unused_allocations: Sequence[UnusedAllocation] = (),
    unused_transfers: Sequence[UnusedTransfer] = (),
) -> OptimizationPotential:
    """Estimate the optimization potential of a trace given its findings."""
    removable = _collect_removable(
        duplicate_groups,
        round_trip_groups,
        repeated_alloc_groups,
        unused_allocations,
        unused_transfers,
    )
    time_saved = sum(e.duration for e in removable.values())
    bytes_saved = sum(e.nbytes for e in removable.values() if e.is_transfer)
    return OptimizationPotential(
        measured_runtime=trace.runtime,
        predicted_time_saved=time_saved,
        predicted_bytes_saved=bytes_saved,
        predicted_ops_saved=len(removable),
        removable_event_seqs=frozenset(removable),
    )
