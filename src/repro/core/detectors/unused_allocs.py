"""Algorithm 4: identify unused device memory allocations.

A data mapping is unused when the device never reads the copied data nor
uses the allocated region during the mapping's lifetime (Definition 4.4).
Without memory-access instrumentation only a subset is provable: an
allocation whose lifetime does not intersect the execution of *any* kernel
on its device cannot possibly have been used.  Algorithm 4 finds exactly
those, per device, with a linear merge of the chronologically sorted kernel
and allocation lists.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.detectors._columns import alloc_delete_pair_rows, first_index_reaching
from repro.core.detectors.findings import UnusedAllocation
from repro.events.columnar import ColumnarTrace
from repro.events.records import (
    AllocationPair,
    DataOpEvent,
    TargetEvent,
    get_alloc_delete_pairs,
)


def find_unused_allocations(
    target_events: Sequence[TargetEvent],
    data_op_events: Sequence[DataOpEvent],
    num_devices: int,
    *,
    trace_end: Optional[float] = None,
) -> list[UnusedAllocation]:
    """Find unused device memory allocations (Algorithm 4).

    Parameters
    ----------
    target_events:
        Target events in chronological order; only kernel-executing events
        participate (enter/exit data and update regions do not use mappings).
    data_op_events:
        Data-operation events in chronological order.
    num_devices:
        Number of target devices in the trace.
    trace_end:
        Lifetime end used for allocations never deleted; defaults to the
        latest event end time.
    """
    if num_devices < 1:
        raise ValueError("num_devices must be at least 1")

    alloc_pairs = get_alloc_delete_pairs(data_op_events)
    if trace_end is None:
        trace_end = 0.0
        for ev in data_op_events:
            trace_end = max(trace_end, ev.end_time)
        for ev in target_events:
            trace_end = max(trace_end, ev.end_time)

    # Sort events by device (chronological order is preserved inside buckets).
    device_kernels: list[list[TargetEvent]] = [[] for _ in range(num_devices)]
    for ev in target_events:
        if ev.executes_kernel and 0 <= ev.device_num < num_devices:
            device_kernels[ev.device_num].append(ev)

    device_allocs: list[list[AllocationPair]] = [[] for _ in range(num_devices)]
    for pair in alloc_pairs:
        if 0 <= pair.device_num < num_devices:
            device_allocs[pair.device_num].append(pair)

    unused: list[UnusedAllocation] = []
    for dev_idx in range(num_devices):
        kernels = device_kernels[dev_idx]
        allocs = device_allocs[dev_idx]
        tgt_idx = 0
        for pair in allocs:
            life_start, life_end = pair.lifetime(trace_end)
            # Skip kernels that finished before this allocation began.  The
            # allocation list is chronological by allocation start, so the
            # cursor never needs to move backwards.
            while tgt_idx < len(kernels) and kernels[tgt_idx].end_time < life_start:
                tgt_idx += 1
            if tgt_idx == len(kernels) or kernels[tgt_idx].start_time > life_end:
                unused.append(UnusedAllocation(pair=pair))
    return unused


def find_unused_allocations_columnar(
    trace: ColumnarTrace,
    num_devices: Optional[int] = None,
    *,
    trace_end: Optional[float] = None,
) -> list[UnusedAllocation]:
    """Vectorised Algorithm 4 over a columnar trace.

    Findings are identical to :func:`find_unused_allocations` over the
    object events (the reference oracle).  The object algorithm's cursor —
    "advance while the kernel ends before the lifetime starts" — resolves,
    for the non-decreasing lifetime starts of a chronological allocation
    list, to a ``searchsorted`` over the running maximum of kernel end
    times; the lifetime-overlap test is then a single vectorised compare.
    """
    if num_devices is None:
        num_devices = trace.num_devices
    if num_devices < 1:
        raise ValueError("num_devices must be at least 1")

    alloc_rows, delete_rows = alloc_delete_pair_rows(trace)
    if alloc_rows.size == 0:
        return []

    if trace_end is None:
        trace_end = 0.0
        if trace.num_data_op_events:
            trace_end = max(trace_end, float(trace.do_end_time.max()))
        if trace.num_target_events:
            trace_end = max(trace_end, float(trace.tgt_end_time.max()))

    life_start = trace.do_start_time[alloc_rows]
    life_end = np.where(
        delete_rows >= 0,
        trace.do_end_time[np.maximum(delete_rows, 0)],
        trace_end,
    )
    device = trace.do_dest_device_num[alloc_rows]

    kmask = trace.kernel_mask()
    kernel_device = trace.tgt_device_num[kmask]
    kernel_start = trace.tgt_start_time[kmask]
    kernel_end = trace.tgt_end_time[kmask]

    unused: list[UnusedAllocation] = []
    for dev_idx in range(num_devices):
        on_device = np.flatnonzero(device == dev_idx)
        if on_device.size == 0:
            continue
        k_sel = kernel_device == dev_idx
        k_start = kernel_start[k_sel]
        k_end = kernel_end[k_sel]
        if k_start.size == 0:
            unused_mask = np.ones(on_device.size, dtype=bool)
        else:
            cursor = first_index_reaching(
                np.maximum.accumulate(k_end), life_start[on_device]
            )
            clamped = np.minimum(cursor, k_start.size - 1)
            unused_mask = (cursor == k_start.size) | (
                k_start[clamped] > life_end[on_device]
            )
        hits = on_device[np.flatnonzero(unused_mask)]
        alloc_events = trace.data_op_events_at(alloc_rows[hits])
        deleted = delete_rows[hits]
        delete_events = trace.data_op_events_at(deleted[deleted >= 0])
        delete_iter = iter(delete_events)
        for k in range(hits.size):
            pair = AllocationPair(
                alloc_event=alloc_events[k],
                delete_event=next(delete_iter) if deleted[k] >= 0 else None,
            )
            unused.append(UnusedAllocation(pair=pair))
    return unused


def count_unused_allocations(findings: Sequence[UnusedAllocation]) -> int:
    """The "UA" count of Table 1."""
    return len(findings)
