"""Algorithm 4: identify unused device memory allocations.

A data mapping is unused when the device never reads the copied data nor
uses the allocated region during the mapping's lifetime (Definition 4.4).
Without memory-access instrumentation only a subset is provable: an
allocation whose lifetime does not intersect the execution of *any* kernel
on its device cannot possibly have been used.  Algorithm 4 finds exactly
those, per device, with a linear merge of the chronologically sorted kernel
and allocation lists.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.detectors.findings import UnusedAllocation
from repro.events.records import (
    AllocationPair,
    DataOpEvent,
    TargetEvent,
    get_alloc_delete_pairs,
)


def find_unused_allocations(
    target_events: Sequence[TargetEvent],
    data_op_events: Sequence[DataOpEvent],
    num_devices: int,
    *,
    trace_end: Optional[float] = None,
) -> list[UnusedAllocation]:
    """Find unused device memory allocations (Algorithm 4).

    Parameters
    ----------
    target_events:
        Target events in chronological order; only kernel-executing events
        participate (enter/exit data and update regions do not use mappings).
    data_op_events:
        Data-operation events in chronological order.
    num_devices:
        Number of target devices in the trace.
    trace_end:
        Lifetime end used for allocations never deleted; defaults to the
        latest event end time.
    """
    if num_devices < 1:
        raise ValueError("num_devices must be at least 1")

    alloc_pairs = get_alloc_delete_pairs(data_op_events)
    if trace_end is None:
        trace_end = 0.0
        for ev in data_op_events:
            trace_end = max(trace_end, ev.end_time)
        for ev in target_events:
            trace_end = max(trace_end, ev.end_time)

    # Sort events by device (chronological order is preserved inside buckets).
    device_kernels: list[list[TargetEvent]] = [[] for _ in range(num_devices)]
    for ev in target_events:
        if ev.executes_kernel and 0 <= ev.device_num < num_devices:
            device_kernels[ev.device_num].append(ev)

    device_allocs: list[list[AllocationPair]] = [[] for _ in range(num_devices)]
    for pair in alloc_pairs:
        if 0 <= pair.device_num < num_devices:
            device_allocs[pair.device_num].append(pair)

    unused: list[UnusedAllocation] = []
    for dev_idx in range(num_devices):
        kernels = device_kernels[dev_idx]
        allocs = device_allocs[dev_idx]
        tgt_idx = 0
        for pair in allocs:
            life_start, life_end = pair.lifetime(trace_end)
            # Skip kernels that finished before this allocation began.  The
            # allocation list is chronological by allocation start, so the
            # cursor never needs to move backwards.
            while tgt_idx < len(kernels) and kernels[tgt_idx].end_time < life_start:
                tgt_idx += 1
            if tgt_idx == len(kernels) or kernels[tgt_idx].start_time > life_end:
                unused.append(UnusedAllocation(pair=pair))
    return unused


def count_unused_allocations(findings: Sequence[UnusedAllocation]) -> int:
    """The "UA" count of Table 1."""
    return len(findings)
