"""Algorithm 4: identify unused device memory allocations.

A data mapping is unused when the device never reads the copied data nor
uses the allocated region during the mapping's lifetime (Definition 4.4).
Without memory-access instrumentation only a subset is provable: an
allocation whose lifetime does not intersect the execution of *any* kernel
on its device cannot possibly have been used.  Algorithm 4 finds exactly
those, per device, with a linear merge of the chronologically sorted kernel
and allocation lists.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.detectors._columns import alloc_delete_pair_rows, first_index_reaching
from repro.core.detectors._streaming import (
    ColumnBuffer,
    DeviceKernels,
    StreamingAllocPairer,
    StreamingPass,
    run_streaming_pass,
)
from repro.core.detectors.findings import UnusedAllocation
from repro.events.columnar import ColumnarTrace
from repro.events.protocol import EventStream
from repro.events.records import (
    AllocationPair,
    DataOpEvent,
    TargetEvent,
    get_alloc_delete_pairs,
)
from repro.events.stream import materialize_data_op_events


def find_unused_allocations(
    target_events: Sequence[TargetEvent],
    data_op_events: Sequence[DataOpEvent],
    num_devices: int,
    *,
    trace_end: Optional[float] = None,
) -> list[UnusedAllocation]:
    """Find unused device memory allocations (Algorithm 4).

    Parameters
    ----------
    target_events:
        Target events in chronological order; only kernel-executing events
        participate (enter/exit data and update regions do not use mappings).
    data_op_events:
        Data-operation events in chronological order.
    num_devices:
        Number of target devices in the trace.
    trace_end:
        Lifetime end used for allocations never deleted; defaults to the
        latest event end time.
    """
    if num_devices < 1:
        raise ValueError("num_devices must be at least 1")

    alloc_pairs = get_alloc_delete_pairs(data_op_events)
    if trace_end is None:
        trace_end = 0.0
        for ev in data_op_events:
            trace_end = max(trace_end, ev.end_time)
        for ev in target_events:
            trace_end = max(trace_end, ev.end_time)

    # Sort events by device (chronological order is preserved inside buckets).
    device_kernels: list[list[TargetEvent]] = [[] for _ in range(num_devices)]
    for ev in target_events:
        if ev.executes_kernel and 0 <= ev.device_num < num_devices:
            device_kernels[ev.device_num].append(ev)

    device_allocs: list[list[AllocationPair]] = [[] for _ in range(num_devices)]
    for pair in alloc_pairs:
        if 0 <= pair.device_num < num_devices:
            device_allocs[pair.device_num].append(pair)

    unused: list[UnusedAllocation] = []
    for dev_idx in range(num_devices):
        kernels = device_kernels[dev_idx]
        allocs = device_allocs[dev_idx]
        tgt_idx = 0
        for pair in allocs:
            life_start, life_end = pair.lifetime(trace_end)
            # Skip kernels that finished before this allocation began.  The
            # allocation list is chronological by allocation start, so the
            # cursor never needs to move backwards.
            while tgt_idx < len(kernels) and kernels[tgt_idx].end_time < life_start:
                tgt_idx += 1
            if tgt_idx == len(kernels) or kernels[tgt_idx].start_time > life_end:
                unused.append(UnusedAllocation(pair=pair))
    return unused


def find_unused_allocations_columnar(
    trace: ColumnarTrace,
    num_devices: Optional[int] = None,
    *,
    trace_end: Optional[float] = None,
) -> list[UnusedAllocation]:
    """Vectorised Algorithm 4 over a columnar trace.

    Findings are identical to :func:`find_unused_allocations` over the
    object events (the reference oracle).  The object algorithm's cursor —
    "advance while the kernel ends before the lifetime starts" — resolves,
    for the non-decreasing lifetime starts of a chronological allocation
    list, to a ``searchsorted`` over the running maximum of kernel end
    times; the lifetime-overlap test is then a single vectorised compare.
    """
    if num_devices is None:
        num_devices = trace.num_devices
    if num_devices < 1:
        raise ValueError("num_devices must be at least 1")

    alloc_rows, delete_rows = alloc_delete_pair_rows(trace)
    if alloc_rows.size == 0:
        return []

    if trace_end is None:
        trace_end = 0.0
        if trace.num_data_op_events:
            trace_end = max(trace_end, float(trace.do_end_time.max()))
        if trace.num_target_events:
            trace_end = max(trace_end, float(trace.tgt_end_time.max()))

    life_start = trace.do_start_time[alloc_rows]
    life_end = np.where(
        delete_rows >= 0,
        trace.do_end_time[np.maximum(delete_rows, 0)],
        trace_end,
    )
    device = trace.do_dest_device_num[alloc_rows]

    kmask = trace.kernel_mask()
    kernel_device = trace.tgt_device_num[kmask]
    kernel_start = trace.tgt_start_time[kmask]
    kernel_end = trace.tgt_end_time[kmask]

    unused: list[UnusedAllocation] = []
    for dev_idx in range(num_devices):
        on_device = np.flatnonzero(device == dev_idx)
        if on_device.size == 0:
            continue
        k_sel = kernel_device == dev_idx
        k_start = kernel_start[k_sel]
        k_end = kernel_end[k_sel]
        if k_start.size == 0:
            unused_mask = np.ones(on_device.size, dtype=bool)
        else:
            cursor = first_index_reaching(
                np.maximum.accumulate(k_end), life_start[on_device]
            )
            clamped = np.minimum(cursor, k_start.size - 1)
            unused_mask = (cursor == k_start.size) | (
                k_start[clamped] > life_end[on_device]
            )
        hits = on_device[np.flatnonzero(unused_mask)]
        alloc_events = trace.data_op_events_at(alloc_rows[hits])
        deleted = delete_rows[hits]
        delete_events = trace.data_op_events_at(deleted[deleted >= 0])
        delete_iter = iter(delete_events)
        for k in range(hits.size):
            pair = AllocationPair(
                alloc_event=alloc_events[k],
                delete_event=next(delete_iter) if deleted[k] >= 0 else None,
            )
            unused.append(UnusedAllocation(pair=pair))
    return unused


class UnusedAllocationPass(StreamingPass):
    """Incremental Algorithm 4: fold pairs and kernels, decide eagerly.

    Carry state per device: the kernel start times with the running maximum
    of kernel end times (the ``searchsorted`` cursor base), plus the pairs
    whose verdict still depends on the future.  A completed pair is decided
    as soon as some kernel's running-max end reaches its lifetime start —
    the cursor is final from that point on — and discarded unless unused;
    pairs deleted but never reached stay pending, and allocations never
    deleted live in the pairer's open set until finalize, where the trace
    end closes their lifetimes exactly as the batch oracles do.

    Eager decisions are only final when every *earlier* kernel has been
    folded: a partition that does not start at the stream head could
    wrongly call a pair unused whose lifetime an earlier long-running
    kernel overlaps.  With ``eager=False`` the pass therefore defers — all
    completed pairs stay pending — and the deferred verdicts resolve at
    finalize, once :meth:`merge` has rebased the kernel cursor base and
    joined the pendings of every partition.
    """

    def __init__(
        self, num_devices: int, *, trace_end: Optional[float] = None
    ) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be at least 1")
        self.num_devices = num_devices
        self.trace_end = trace_end
        self._pairer = StreamingAllocPairer(
            alloc_cols=("dest_device_num", "start_time"), delete_cols=("end_time",)
        )
        self._kernels = [DeviceKernels() for _ in range(num_devices)]
        # pending per device: (alloc_gpos, delete_gpos, life_start, life_end)
        self._pending = [
            (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.float64),
            )
            for _ in range(num_devices)
        ]
        self._found_alloc = [ColumnBuffer() for _ in range(num_devices)]
        self._found_delete = [ColumnBuffer() for _ in range(num_devices)]
        self._folded_end = 0.0

    def _decide(self, dev: int, final: bool) -> None:
        p_alloc, p_delete, p_start, p_end = self._pending[dev]
        if p_alloc.size == 0:
            return
        dk = self._kernels[dev]
        cursor = np.searchsorted(dk.runmax.view(), p_start, side="left")
        resolved = cursor < dk.count
        if dk.count:
            clamped = np.minimum(cursor, dk.count - 1)
            starts_after = resolved & (dk.start.view()[clamped] > p_end)
        else:
            starts_after = np.zeros(p_alloc.size, dtype=bool)
        if final:
            unused = ~resolved | starts_after
            keep = np.zeros(p_alloc.size, dtype=bool)
        else:
            unused = starts_after
            keep = ~resolved
        if unused.any():
            self._found_alloc[dev].append(p_alloc[unused])
            self._found_delete[dev].append(p_delete[unused])
        self._pending[dev] = (
            p_alloc[keep], p_delete[keep], p_start[keep], p_end[keep]
        )

    def _enqueue(self, dev, alloc_gpos, delete_gpos, life_start, life_end) -> None:
        old = self._pending[dev]
        self._pending[dev] = (
            np.concatenate([old[0], alloc_gpos]),
            np.concatenate([old[1], delete_gpos]),
            np.concatenate([old[2], life_start]),
            np.concatenate([old[3], life_end]),
        )

    def fold(self, batch, offset: int) -> None:
        num_devices = self.num_devices
        self._folded_end = max(self._folded_end, batch.end_time)
        pairs = self._pairer.fold(batch, offset)

        kmask = batch.kernel_mask()
        k_dev = batch.tgt_device_num[kmask]
        k_start = batch.tgt_start_time[kmask]
        k_end = batch.tgt_end_time[kmask]

        touched = set()
        if pairs.size:
            p_dev = pairs.alloc["dest_device_num"]
            for dev in np.unique(p_dev).tolist():
                if not 0 <= dev < num_devices:
                    continue
                on_dev = p_dev == dev
                self._enqueue(
                    dev,
                    pairs.alloc_gpos[on_dev],
                    pairs.delete_gpos[on_dev],
                    pairs.alloc["start_time"][on_dev],
                    pairs.delete["end_time"][on_dev],
                )
                touched.add(dev)
        if k_dev.size:
            for dev in np.unique(k_dev).tolist():
                if not 0 <= dev < num_devices:
                    continue
                on_dev = k_dev == dev
                self._kernels[dev].extend(k_start[on_dev], k_end[on_dev])
                touched.add(dev)
        if self.eager:
            for dev in touched:
                self._decide(dev, final=False)

    def merge(self, other: "UnusedAllocationPass") -> None:
        """Absorb a pass folded over the immediately following row range.

        ``other`` must have folded with ``eager=False`` (nothing decided
        against its incomplete kernel prefix).  Open allocations stitch to
        ``other``'s pending deletes, the per-device kernel cursor bases are
        rebased and appended, and the pendings join; everything newly
        joined is (re)decided eagerly when this side is itself eager.
        """
        if other.eager:
            raise ValueError(
                "the absorbed pass must fold with eager=False: its verdicts "
                "would be based on an incomplete kernel prefix"
            )
        self._folded_end = max(self._folded_end, other._folded_end)
        stitched = self._pairer.merge(other._pairer)
        for dev in range(self.num_devices):
            self._kernels[dev].merge(other._kernels[dev])
            mine, theirs = self._pending[dev], other._pending[dev]
            self._pending[dev] = tuple(
                np.concatenate([a, b]) for a, b in zip(mine, theirs)
            )
            self._found_alloc[dev].absorb(other._found_alloc[dev])
            self._found_delete[dev].absorb(other._found_delete[dev])
        if stitched.size:
            s_dev = stitched.alloc["dest_device_num"]
            for dev in np.unique(s_dev).tolist():
                if not 0 <= dev < self.num_devices:
                    continue
                on_dev = s_dev == dev
                self._enqueue(
                    dev,
                    stitched.alloc_gpos[on_dev],
                    stitched.delete_gpos[on_dev],
                    stitched.alloc["start_time"][on_dev],
                    stitched.delete["end_time"][on_dev],
                )
        if self.eager:
            for dev in range(self.num_devices):
                self._decide(dev, final=False)

    def finalize(self, stream) -> list[UnusedAllocation]:
        num_devices = self.num_devices
        trace_end = self.trace_end if self.trace_end is not None else self._folded_end
        open_pairs = self._pairer.finalize()
        if open_pairs.size:
            o_dev = open_pairs.alloc["dest_device_num"]
            for dev in np.unique(o_dev).tolist():
                if not 0 <= dev < num_devices:
                    continue
                on_dev = o_dev == dev
                n_open = int(on_dev.sum())
                self._enqueue(
                    dev,
                    open_pairs.alloc_gpos[on_dev],
                    np.full(n_open, -1, dtype=np.int64),
                    open_pairs.alloc["start_time"][on_dev],
                    np.full(n_open, trace_end, dtype=np.float64),
                )
        for dev in range(num_devices):
            self._decide(dev, final=True)

        per_device: list[tuple[np.ndarray, np.ndarray]] = []
        needed: list[np.ndarray] = []
        for dev in range(num_devices):
            alloc_gpos = self._found_alloc[dev].concat()
            delete_gpos = self._found_delete[dev].concat()
            order = np.argsort(alloc_gpos, kind="stable")
            alloc_gpos, delete_gpos = alloc_gpos[order], delete_gpos[order]
            per_device.append((alloc_gpos, delete_gpos))
            needed.append(alloc_gpos)
            needed.append(delete_gpos[delete_gpos >= 0])
        events = materialize_data_op_events(stream, np.concatenate(needed))

        unused: list[UnusedAllocation] = []
        for alloc_gpos, delete_gpos in per_device:
            for k in range(alloc_gpos.size):
                pair = AllocationPair(
                    alloc_event=events[int(alloc_gpos[k])],
                    delete_event=(
                        events[int(delete_gpos[k])] if delete_gpos[k] >= 0 else None
                    ),
                )
                unused.append(UnusedAllocation(pair=pair))
        return unused


def find_unused_allocations_streaming(
    stream: EventStream,
    num_devices: Optional[int] = None,
    *,
    trace_end: Optional[float] = None,
) -> list[UnusedAllocation]:
    """Incremental Algorithm 4 over an event stream."""
    if num_devices is None:
        num_devices = stream.num_devices
    return run_streaming_pass(
        UnusedAllocationPass(num_devices, trace_end=trace_end), stream
    )


def count_unused_allocations(findings: Sequence[UnusedAllocation]) -> int:
    """The "UA" count of Table 1."""
    return len(findings)
