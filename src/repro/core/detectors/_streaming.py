"""Shared plumbing for the incremental (streaming) detector variants.

The ``find_*_streaming`` detectors fold one columnar batch at a time into
small carry state and never hold a whole trace.  The carries they share:

* :class:`GrowArray` / :class:`ColumnBuffer` — append-only NumPy storage
  (amortised doubling / chunk list) for per-device cursors and compact
  column captures.
* :class:`CompositeKeyCounter` — the streaming twin of
  :func:`repro.core.detectors._columns.group_rows_by_key`: a lexsorted
  key table tracking, per distinct composite key, the cumulative member
  count, the smallest global position observed and that row's payload.
  Folding a batch reports which rows belong to keys that have reached the
  group threshold, which is all the duplicate/repeated-allocation
  detectors need to collect group members as positions (events are only
  materialised for findings, in one targeted pass at the end).
* :class:`StreamingAllocPairer` — the streaming twin of
  :func:`repro.events.records.get_alloc_delete_pairs`: carries the open
  allocations across batch boundaries and emits completed
  (alloc, delete) position pairs as the deletes arrive.  The common case
  (no live device address re-allocated, which ``validate_trace`` enforces)
  is fully vectorised; nested allocations fall back to the exact
  stack-matching loop, permanently for the rest of the stream.

Positions are "gpos": the row index an event would have in the
concatenation of every batch's data-op columns (see
:mod:`repro.events.stream`).

Every carry here is additionally *partition-mergeable*: two instances
folded over adjacent gpos ranges combine losslessly into the instance a
single sequential fold would have produced (``CompositeKeyCounter.merge``
unions key tables and reports threshold promotions,
``StreamingAllocPairer.merge`` stitches open allocations to the pending
deletes of the later partition, ``DeviceKernels.merge`` rebases the later
partition's running-max cursor base).  The :class:`StreamingPass` subclasses
build their own ``merge`` on these, which is what lets the execution
engines (:mod:`repro.core.engine`) fold disjoint shard ranges on
independent workers and combine only small carry states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.events.columnar import CODE_ALLOC, CODE_DELETE, ColumnarTrace


class GrowArray:
    """A 1-D append-only NumPy array with amortised-doubling growth."""

    def __init__(self, dtype) -> None:
        self._dtype = np.dtype(dtype)
        self._arr = np.empty(16, dtype=self._dtype)
        self.size = 0

    def extend(self, values: np.ndarray) -> None:
        n = len(values)
        if n == 0:
            return
        needed = self.size + n
        if needed > self._arr.size:
            capacity = self._arr.size
            while capacity < needed:
                capacity *= 2
            fresh = np.empty(capacity, dtype=self._dtype)
            fresh[: self.size] = self._arr[: self.size]
            self._arr = fresh
        self._arr[self.size : needed] = values
        self.size = needed

    def view(self) -> np.ndarray:
        return self._arr[: self.size]


class DeviceKernels:
    """Per-device kernel cursor base: start times and running-max end times.

    Shared by the unused-allocation and unused-transfer passes: both decide
    "first kernel whose running-max end reaches t" with a ``searchsorted``
    over ``runmax`` and then compare against ``start``.
    """

    def __init__(self) -> None:
        self.start = GrowArray(np.float64)
        self.runmax = GrowArray(np.float64)
        self.last = -np.inf

    def extend(self, starts: np.ndarray, ends: np.ndarray) -> None:
        if len(starts) == 0:
            return
        run = np.maximum.accumulate(ends)
        np.maximum(run, self.last, out=run)
        self.last = float(run[-1])
        self.start.extend(starts)
        self.runmax.extend(run)

    def merge(self, other: "DeviceKernels") -> None:
        """Append ``other``'s kernels (a later contiguous time range).

        ``other`` folded its running maximum from scratch, so its cursor
        base is rebased onto this carry: every ``runmax`` entry is lifted
        to at least this partition's final running maximum, exactly what a
        sequential fold over both ranges would have produced.
        """
        if other.count == 0:
            return
        rebased = np.maximum(other.runmax.view(), self.last)
        self.start.extend(other.start.view())
        self.runmax.extend(rebased)
        self.last = float(rebased[-1])

    @property
    def count(self) -> int:
        return self.start.size


class ColumnBuffer:
    """Append-only column storage as a chunk list (concatenated on demand)."""

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self.size = 0

    def append(self, values: np.ndarray) -> None:
        if len(values):
            self._chunks.append(values)
            self.size += len(values)

    def absorb(self, other: "ColumnBuffer") -> None:
        """Append every chunk of ``other`` (which must not be reused)."""
        self._chunks.extend(other._chunks)
        self.size += other.size

    def concat(self, dtype=None) -> np.ndarray:
        if not self._chunks:
            return np.empty(0, dtype=dtype if dtype is not None else np.int64)
        return np.concatenate(self._chunks)


# --------------------------------------------------------------------- #
# Composite-key counting
# --------------------------------------------------------------------- #
@dataclass
class KeyFold:
    """Result of folding one batch of keyed rows (arrays per *shard* key)."""

    #: row index -> index into the per-batch unique-key arrays below
    inverse: np.ndarray
    #: members of each key seen before this batch
    prior_count: np.ndarray
    #: members of each key including this batch
    total_count: np.ndarray
    #: smallest gpos ever observed for the key (after this batch)
    first_gpos: np.ndarray
    #: payload of the row at ``first_gpos``
    first_payload: np.ndarray
    #: stable identifier assigned when the key was first seen (never changes
    #: across folds, unlike ``first_gpos`` when rows arrive out of gpos
    #: order — group membership must key on this)
    key_uid: np.ndarray
    #: ``first_gpos`` as it stood BEFORE this batch (the retained member a
    #: caller must recover when ``prior_count == 1``; meaningless where
    #: ``prior_count == 0``)
    prior_first_gpos: np.ndarray
    #: payload of the row at ``prior_first_gpos``
    prior_payload: np.ndarray


@dataclass
class KeyMerge:
    """Result of merging two counters (:meth:`CompositeKeyCounter.merge`).

    Merging reassigns dense uids; the two maps translate each side's old
    uids (indexed by old uid, ``-1`` where unassigned) so member buffers
    keyed on uids can be remapped with one vectorised lookup.  The
    ``promoted_*`` arrays are the *retained singletons that crossed the
    group threshold because of the merge*: a key counted once on a side
    records no members (its single member lives in the table as
    ``first``/``payload``); when the union reaches two members, those
    retained rows must join the member set, exactly like the ``crossed``
    recovery inside :meth:`CompositeKeyCounter.fold`.
    """

    uid_map_self: np.ndarray
    uid_map_other: np.ndarray
    promoted_gpos: np.ndarray
    promoted_payload: np.ndarray
    promoted_uid: np.ndarray
    #: key columns of the promoted rows (``()`` when nothing promoted)
    promoted_keys: tuple[np.ndarray, ...]


class CompositeKeyCounter:
    """Incremental composite-key statistics with a lexsorted NumPy table.

    Carry is O(distinct keys) at a few dozen bytes each — the same
    asymptotics as the object detectors' hash maps, but with no per-key
    Python objects.  The payload column (one int64 per key, e.g. a partner
    position) is only carried when a caller ever supplies one.
    """

    def __init__(self) -> None:
        self._keys: Optional[tuple[np.ndarray, ...]] = None
        self._count = np.empty(0, dtype=np.int64)
        self._first = np.empty(0, dtype=np.int64)
        self._uid = np.empty(0, dtype=np.int64)
        self._next_uid = 0
        self._payload: Optional[np.ndarray] = None

    @property
    def num_keys(self) -> int:
        return self._count.size

    @staticmethod
    def _group_boundaries(cols: Sequence[np.ndarray], order: np.ndarray) -> np.ndarray:
        boundary = np.ones(order.size, dtype=bool)
        if order.size > 1:
            same = np.ones(order.size - 1, dtype=bool)
            for col in cols:
                sorted_col = col[order]
                same &= sorted_col[1:] == sorted_col[:-1]
            boundary[1:] = ~same
        return boundary

    def fold(
        self,
        cols: Sequence[np.ndarray],
        gpos: np.ndarray,
        payload: Optional[np.ndarray] = None,
    ) -> KeyFold:
        """Fold one batch of rows; ``cols`` are the composite key columns."""
        n = len(gpos)
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return KeyFold(empty, empty, empty, empty, empty, empty, empty, empty)
        if payload is not None and self._payload is None:
            self._payload = np.zeros(self._count.size, dtype=np.int64)
        track_payload = self._payload is not None
        if track_payload and payload is None:
            payload = np.zeros(n, dtype=np.int64)

        # Batch-local uniques: sort by key columns, gpos as tiebreak, so the
        # first row of each run carries the batch-minimal gpos.
        order = np.lexsort((gpos, *reversed(cols)))
        boundary = self._group_boundaries(cols, order)
        starts = np.flatnonzero(boundary)
        group_id = np.cumsum(boundary) - 1
        inverse = np.empty(n, dtype=np.int64)
        inverse[order] = group_id

        u_cols = tuple(col[order][starts] for col in cols)
        u_count = np.diff(np.append(starts, n)).astype(np.int64)
        u_first = gpos[order][starts].astype(np.int64)
        u_payload = (
            payload[order][starts].astype(np.int64)
            if track_payload
            else np.zeros(len(starts), dtype=np.int64)
        )

        if self._keys is None:
            self._keys = u_cols
            self._count = u_count
            self._first = u_first
            self._uid = np.arange(len(starts), dtype=np.int64)
            self._next_uid = len(starts)
            if track_payload:
                self._payload = u_payload
            prior = np.zeros(len(starts), dtype=np.int64)
            return KeyFold(
                inverse, prior, u_count.copy(), u_first.copy(), u_payload,
                self._uid.copy(), u_first.copy(), u_payload.copy(),
            )

        # Merge the batch uniques into the table (both sides key-sorted; a
        # lexsort of the concatenation keeps the code simple, and the table
        # being nearly sorted keeps it cheap).
        m_cols = tuple(np.concatenate([t, u]) for t, u in zip(self._keys, u_cols))
        tag = np.concatenate([
            np.zeros(self._count.size, dtype=np.int8),
            np.ones(len(starts), dtype=np.int8),
        ])
        m_count = np.concatenate([self._count, u_count])
        m_first = np.concatenate([self._first, u_first])
        fresh_uids = self._next_uid + np.arange(len(starts), dtype=np.int64)
        self._next_uid += len(starts)
        m_uid = np.concatenate([self._uid, fresh_uids])

        morder = np.lexsort((tag, *reversed(m_cols)))
        mboundary = self._group_boundaries(m_cols, morder)
        run_starts = np.flatnonzero(mboundary)
        run_id = np.cumsum(mboundary) - 1
        m = morder.size

        count_sorted = m_count[morder]
        first_sorted = m_first[morder]
        uid_sorted = m_uid[morder]
        new_count = np.add.reduceat(count_sorted, run_starts)
        new_first = np.minimum.reduceat(first_sorted, run_starts)
        # Table entries sort before batch entries (the tag), so the run
        # head is the pre-existing key when there is one: its uid, first
        # and payload are the key's stable identity and prior state.
        new_uid = uid_sorted[run_starts]
        prior_first = first_sorted[run_starts]
        del count_sorted

        # Runs have at most two entries (table + batch); the payload follows
        # whichever entry holds the smaller first-gpos.
        run_len = np.diff(np.append(run_starts, m))
        second = run_starts + 1
        two = run_len == 2
        pick = run_starts.copy()
        pick[two] = np.where(
            first_sorted[np.minimum(second, m - 1)][two] < first_sorted[run_starts][two],
            second[two],
            run_starts[two],
        )
        del first_sorted
        if track_payload:
            payload_sorted = np.concatenate([self._payload, u_payload])[morder]
            new_payload = payload_sorted[pick]
            prior_payload = payload_sorted[run_starts]
        else:
            new_payload = np.zeros(run_starts.size, dtype=np.int64)
            prior_payload = new_payload

        self._keys = tuple(col[morder][run_starts] for col in m_cols)
        del m_cols
        self._count = new_count.astype(np.int64)
        self._first = new_first
        self._uid = new_uid
        if track_payload:
            self._payload = new_payload

        # Map each batch key to its merged run; batch entries appear in the
        # merged order in the same sorted order as the batch's own uniques.
        batch_runs = run_id[np.flatnonzero(tag[morder] == 1)]
        total_count = new_count[batch_runs]
        prior_count = total_count - u_count
        return KeyFold(
            inverse,
            prior_count.astype(np.int64),
            total_count.astype(np.int64),
            new_first[batch_runs],
            new_payload[batch_runs],
            new_uid[batch_runs],
            prior_first[batch_runs],
            prior_payload[batch_runs],
        )

    def _empty_merge(self, num_other_uids: int) -> KeyMerge:
        empty = np.empty(0, dtype=np.int64)
        return KeyMerge(
            uid_map_self=np.arange(self._next_uid, dtype=np.int64),
            uid_map_other=np.arange(num_other_uids, dtype=np.int64),
            promoted_gpos=empty,
            promoted_payload=empty,
            promoted_uid=empty,
            promoted_keys=(),
        )

    def merge(self, other: "CompositeKeyCounter") -> KeyMerge:
        """Union ``other``'s key table into this one (both keep gpos global).

        The two counters must have folded *disjoint* row sets; which side
        folded the earlier range does not matter — counts add, first
        positions take the minimum, and the payload follows the entry with
        the smaller first, so the merged table equals the sequential fold
        of both row sets in any order.  Returns the uid translation maps
        and the threshold promotions (see :class:`KeyMerge`).
        """
        if other._keys is None:
            return self._empty_merge(other._next_uid)
        if self._keys is None:
            self._keys = other._keys
            self._count = other._count
            self._first = other._first
            self._uid = other._uid
            self._next_uid = other._next_uid
            self._payload = other._payload
            return self._empty_merge(other._next_uid)

        track = self._payload is not None or other._payload is not None
        n_s, n_o = self._count.size, other._count.size
        m_cols = tuple(np.concatenate([a, b]) for a, b in zip(self._keys, other._keys))
        tag = np.concatenate([
            np.zeros(n_s, dtype=np.int8), np.ones(n_o, dtype=np.int8),
        ])
        m_count = np.concatenate([self._count, other._count])
        m_first = np.concatenate([self._first, other._first])
        s_payload = (
            self._payload if self._payload is not None
            else np.zeros(n_s, dtype=np.int64)
        )
        o_payload = (
            other._payload if other._payload is not None
            else np.zeros(n_o, dtype=np.int64)
        )
        m_payload = np.concatenate([s_payload, o_payload])
        m_uid = np.concatenate([self._uid, other._uid])

        morder = np.lexsort((tag, *reversed(m_cols)))
        boundary = self._group_boundaries(m_cols, morder)
        run_starts = np.flatnonzero(boundary)
        run_id = np.cumsum(boundary) - 1
        m = morder.size

        count_sorted = m_count[morder]
        first_sorted = m_first[morder]
        payload_sorted = m_payload[morder]
        new_count = np.add.reduceat(count_sorted, run_starts).astype(np.int64)
        new_first = np.minimum.reduceat(first_sorted, run_starts)

        # Runs have at most two entries (one per side); the payload follows
        # whichever entry holds the smaller first-gpos, as in fold().
        run_len = np.diff(np.append(run_starts, m))
        second = run_starts + 1
        two = run_len == 2
        pick = run_starts.copy()
        pick[two] = np.where(
            first_sorted[np.minimum(second, m - 1)][two] < first_sorted[run_starts][two],
            second[two],
            run_starts[two],
        )
        new_payload = payload_sorted[pick]

        # Dense fresh uids (the run ids); translate each side's old uids.
        uid_sorted = m_uid[morder]
        tag_sorted = tag[morder]
        uid_map_self = np.full(self._next_uid, -1, dtype=np.int64)
        uid_map_other = np.full(other._next_uid, -1, dtype=np.int64)
        from_self = tag_sorted == 0
        uid_map_self[uid_sorted[from_self]] = run_id[from_self]
        uid_map_other[uid_sorted[~from_self]] = run_id[~from_self]

        # Retained singletons whose run now has two or more members.
        promote = (count_sorted == 1) & (new_count[run_id] >= 2)
        promoted_keys = (
            tuple(col[morder][promote] for col in m_cols) if promote.any() else ()
        )
        promoted = KeyMerge(
            uid_map_self=uid_map_self,
            uid_map_other=uid_map_other,
            promoted_gpos=first_sorted[promote],
            promoted_payload=payload_sorted[promote],
            promoted_uid=run_id[promote],
            promoted_keys=promoted_keys,
        )

        self._keys = tuple(col[morder][run_starts] for col in m_cols)
        self._count = new_count
        self._first = new_first
        self._uid = np.arange(run_starts.size, dtype=np.int64)
        self._next_uid = run_starts.size
        self._payload = new_payload if track else None
        return promoted


def merge_uid_buffers(
    km: KeyMerge, mine: ColumnBuffer, theirs: ColumnBuffer
) -> ColumnBuffer:
    """Combine two member-uid buffers through a merge's translation maps.

    Used by the counter-based passes: members recorded on each side
    reference that side's old uids, which the :class:`KeyMerge` maps to the
    merged table's dense uids; the promoted retained singletons join with
    their (already merged) uids.
    """
    out = ColumnBuffer()
    own = mine.concat()
    if own.size:
        out.append(km.uid_map_self[own])
    other = theirs.concat()
    if other.size:
        out.append(km.uid_map_other[other])
    out.append(km.promoted_uid)
    return out


# --------------------------------------------------------------------- #
# Streaming alloc/delete pairing
# --------------------------------------------------------------------- #
@dataclass
class PairBatch:
    """Completed (or, at finalize, still-open) allocation pairs."""

    alloc_gpos: np.ndarray
    #: aligned delete positions; -1 when the allocation was never deleted
    delete_gpos: np.ndarray
    #: captured alloc-side columns, keyed by column name
    alloc: dict[str, np.ndarray] = field(default_factory=dict)
    #: captured delete-side columns (empty arrays where delete_gpos == -1)
    delete: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return self.alloc_gpos.size


class StreamingAllocPairer:
    """Pairs ALLOC/DELETE events across batches with O(open allocs) carry.

    Deletes that match no open allocation are retained as *pending deletes*
    (gpos, key and captured delete columns, in chronological order).  A
    pairer folding from the start of the trace never completes them — the
    sequential oracle drops such deletes — but a pairer folding a later
    partition sees one for every allocation opened before its range, and
    :meth:`merge` stitches them to the earlier partition's open stack.
    """

    def __init__(
        self,
        alloc_cols: Sequence[str] = (),
        delete_cols: Sequence[str] = (),
    ) -> None:
        self.alloc_cols = tuple(alloc_cols)
        self.delete_cols = tuple(delete_cols)
        #: (device, address) -> stack of (gpos, {col: value}) for open allocs
        self._open: dict[tuple[int, int], list[tuple[int, dict]]] = {}
        #: chronological (gpos, key, {col: value}) of unmatched deletes
        self._pending_deletes: list[tuple[int, tuple[int, int], dict]] = []
        self._vectorized = True
        self._dtypes: dict[str, np.dtype] = {}

    @property
    def num_open(self) -> int:
        return sum(len(stack) for stack in self._open.values())

    @property
    def num_pending_deletes(self) -> int:
        return len(self._pending_deletes)

    def _empty_batch(self) -> PairBatch:
        return PairBatch(
            alloc_gpos=np.empty(0, dtype=np.int64),
            delete_gpos=np.empty(0, dtype=np.int64),
            alloc={c: np.empty(0, dtype=self._dtypes.get(c)) for c in self.alloc_cols},
            delete={c: np.empty(0, dtype=self._dtypes.get(c)) for c in self.delete_cols},
        )

    def fold(self, batch: ColumnarTrace, offset: int) -> PairBatch:
        """Feed one batch; returns the pairs whose DELETE landed in it."""
        kind = batch.do_kind
        sel = np.flatnonzero((kind == CODE_ALLOC) | (kind == CODE_DELETE))
        for col in self.alloc_cols + self.delete_cols:
            self._dtypes.setdefault(col, batch.do_column(col).dtype)
        if sel.size == 0:
            return self._empty_batch()

        is_alloc = kind[sel] == CODE_ALLOC
        dev = batch.do_dest_device_num[sel]
        addr = batch.do_dest_addr[sel]
        gpos = offset + sel

        if self._vectorized:
            result = self._fold_vectorized(batch, sel, is_alloc, dev, addr, gpos)
            if result is not None:
                return result
            self._vectorized = False  # nesting detected: exact stacks from now on
        return self._fold_stacks(batch, sel, is_alloc, dev, addr, gpos)

    # -- vectorised path (alternation holds per (device, address) key) --- #
    def _fold_vectorized(self, batch, sel, is_alloc, dev, addr, gpos):
        if any(len(stack) > 1 for stack in self._open.values()):
            return None
        carry_items = [
            (key, stack[0]) for key, stack in self._open.items() if stack
        ]
        k = len(carry_items)
        n = sel.size
        c_dev = np.concatenate([
            np.array([key[0] for key, _ in carry_items], dtype=dev.dtype),
            dev,
        ])
        c_addr = np.concatenate([
            np.array([key[1] for key, _ in carry_items], dtype=addr.dtype),
            addr,
        ])
        c_alloc = np.concatenate([np.ones(k, dtype=bool), is_alloc])
        c_pos = np.concatenate([
            np.arange(-k, 0, dtype=np.int64),
            np.arange(n, dtype=np.int64),
        ])
        c_gpos = np.concatenate([
            np.array([entry[0] for _, entry in carry_items], dtype=np.int64),
            gpos,
        ])

        order = np.lexsort((c_pos, c_addr, c_dev))
        dev_s, addr_s = c_dev[order], c_addr[order]
        alloc_s = c_alloc[order]
        same_key = np.empty(order.size, dtype=bool)
        same_key[0] = False
        same_key[1:] = (dev_s[1:] == dev_s[:-1]) & (addr_s[1:] == addr_s[:-1])
        if np.any(same_key[1:] & alloc_s[1:] & alloc_s[:-1]):
            return None  # nested allocation: exact stack semantics needed

        pair_at = np.flatnonzero(same_key[1:] & alloc_s[:-1] & ~alloc_s[1:])
        alloc_side = order[pair_at]
        delete_side = order[pair_at + 1]

        # Capture the alloc-side columns, mixing carried values and batch rows.
        alloc_values: dict[str, np.ndarray] = {}
        for col in self.alloc_cols:
            batch_col = batch.do_column(col)[sel]
            carried = np.array(
                [entry[1][col] for _, entry in carry_items], dtype=batch_col.dtype
            )
            alloc_values[col] = np.concatenate([carried, batch_col])
        delete_local = c_pos[delete_side]  # always >= 0: deletes are batch rows

        delete_batch_cols = {
            col: batch.do_column(col)[sel] for col in self.delete_cols
        }
        result = PairBatch(
            alloc_gpos=c_gpos[alloc_side],
            delete_gpos=gpos[delete_local],
            alloc={col: alloc_values[col][alloc_side] for col in self.alloc_cols},
            delete={
                col: delete_batch_cols[col][delete_local]
                for col in self.delete_cols
            },
        )

        # Rebuild the open-alloc carry: every alloc entry not paired above.
        paired = np.zeros(order.size, dtype=bool)
        paired[alloc_side] = True
        open_entries = np.flatnonzero(c_alloc & ~paired)
        self._open = {}
        for entry_index in open_entries.tolist():
            key = (int(c_dev[entry_index]), int(c_addr[entry_index]))
            values = {
                col: alloc_values[col][entry_index] for col in self.alloc_cols
            }
            self._open[key] = [(int(c_gpos[entry_index]), values)]

        # Deletes that matched nothing stay pending for a possible merge
        # with an earlier partition (flatnonzero ascends in entry index,
        # and batch entries are gpos-ordered, so order stays chronological).
        paired[delete_side] = True
        for entry_index in np.flatnonzero(~c_alloc & ~paired).tolist():
            local = int(c_pos[entry_index])
            key = (int(c_dev[entry_index]), int(c_addr[entry_index]))
            values = {
                col: delete_batch_cols[col][local] for col in self.delete_cols
            }
            self._pending_deletes.append((int(c_gpos[entry_index]), key, values))
        return result

    # -- exact stack semantics (nested allocations) ---------------------- #
    def _fold_stacks(self, batch, sel, is_alloc, dev, addr, gpos):
        alloc_cols = {c: batch.do_column(c)[sel] for c in self.alloc_cols}
        delete_cols = {c: batch.do_column(c)[sel] for c in self.delete_cols}
        out_alloc_gpos: list[int] = []
        out_delete_gpos: list[int] = []
        out_alloc_vals: dict[str, list] = {c: [] for c in self.alloc_cols}
        out_delete_vals: dict[str, list] = {c: [] for c in self.delete_cols}
        dev_l, addr_l = dev.tolist(), addr.tolist()
        alloc_l, gpos_l = is_alloc.tolist(), gpos.tolist()
        for i in range(sel.size):
            key = (dev_l[i], addr_l[i])
            if alloc_l[i]:
                values = {c: alloc_cols[c][i] for c in self.alloc_cols}
                self._open.setdefault(key, []).append((gpos_l[i], values))
            else:
                stack = self._open.get(key)
                if not stack:
                    self._pending_deletes.append((
                        gpos_l[i],
                        key,
                        {c: delete_cols[c][i] for c in self.delete_cols},
                    ))
                    continue
                a_gpos, values = stack.pop()
                out_alloc_gpos.append(a_gpos)
                out_delete_gpos.append(gpos_l[i])
                for c in self.alloc_cols:
                    out_alloc_vals[c].append(values[c])
                for c in self.delete_cols:
                    out_delete_vals[c].append(delete_cols[c][i])
        return PairBatch(
            alloc_gpos=np.array(out_alloc_gpos, dtype=np.int64),
            delete_gpos=np.array(out_delete_gpos, dtype=np.int64),
            alloc={
                c: np.array(out_alloc_vals[c], dtype=self._dtypes[c])
                for c in self.alloc_cols
            },
            delete={
                c: np.array(out_delete_vals[c], dtype=self._dtypes[c])
                for c in self.delete_cols
            },
        )

    def merge(self, other: "StreamingAllocPairer") -> PairBatch:
        """Stitch ``other`` (folded over a strictly later gpos range) in.

        ``other``'s pending deletes are matched, chronologically, against
        this carry's open stacks (LIFO, exactly the sequential pop order);
        the completed pairs are returned so the caller can count them.
        What remains open or pending in either side carries over —
        ``other``'s opens are pushed *on top* of this side's stacks, since
        they are more recent.  ``other`` must not be reused afterwards.
        """
        self._dtypes.update(other._dtypes)
        out_alloc_gpos: list[int] = []
        out_delete_gpos: list[int] = []
        out_alloc_vals: dict[str, list] = {c: [] for c in self.alloc_cols}
        out_delete_vals: dict[str, list] = {c: [] for c in self.delete_cols}
        still_pending: list[tuple[int, tuple[int, int], dict]] = []
        for d_gpos, key, d_values in other._pending_deletes:
            stack = self._open.get(key)
            if not stack:
                still_pending.append((d_gpos, key, d_values))
                continue
            a_gpos, a_values = stack.pop()
            out_alloc_gpos.append(a_gpos)
            out_delete_gpos.append(d_gpos)
            for c in self.alloc_cols:
                out_alloc_vals[c].append(a_values[c])
            for c in self.delete_cols:
                out_delete_vals[c].append(d_values[c])
        for key, stack in other._open.items():
            if stack:
                self._open.setdefault(key, []).extend(stack)
        self._pending_deletes.extend(still_pending)
        self._vectorized = (
            self._vectorized
            and other._vectorized
            and all(len(stack) <= 1 for stack in self._open.values())
        )
        return PairBatch(
            alloc_gpos=np.array(out_alloc_gpos, dtype=np.int64),
            delete_gpos=np.array(out_delete_gpos, dtype=np.int64),
            alloc={
                c: np.array(out_alloc_vals[c], dtype=self._dtypes.get(c))
                for c in self.alloc_cols
            },
            delete={
                c: np.array(out_delete_vals[c], dtype=self._dtypes.get(c))
                for c in self.delete_cols
            },
        )

    def finalize(self) -> PairBatch:
        """The allocations still open at end of stream (delete_gpos == -1)."""
        entries: list[tuple[int, dict]] = []
        for stack in self._open.values():
            entries.extend(stack)
        entries.sort(key=lambda e: e[0])
        out = PairBatch(
            alloc_gpos=np.array([e[0] for e in entries], dtype=np.int64),
            delete_gpos=np.full(len(entries), -1, dtype=np.int64),
            alloc={
                c: np.array([e[1][c] for e in entries], dtype=self._dtypes.get(c))
                for c in self.alloc_cols
            },
            delete={
                c: np.empty(0, dtype=self._dtypes.get(c)) for c in self.delete_cols
            },
        )
        return out


class StreamingPass:
    """One detector's incremental half: fold batches, merge, finalize.

    ``fold`` consumes one columnar batch (with the global data-op row
    offset of its first row) and updates the carry; ``finalize`` closes the
    carry and materialises findings — it may re-scan the stream, but only
    the shards that contain finding rows.  A pass instance is single-use.

    Passes are *partition-mergeable*: ``a.merge(b)``, where ``a`` folded an
    earlier contiguous batch range and ``b`` the immediately following one,
    leaves ``a`` holding the carry a single sequential fold over both
    ranges would have produced (``b`` must not be reused).  The execution
    engines fold disjoint shard ranges on independent workers and merge
    the carries left to right.

    ``eager`` controls whether a pass may *classify* events against carry
    state that is only correct from the start of the stream (the
    kernel-cursor verdicts of the two unused-pattern passes).  The default
    ``True`` is right for a sequential fold over the whole stream; a pass
    folding a partition that does not start at the stream head MUST run
    with ``eager=False`` — it defers classification by buffering, and the
    deferred work happens when the carry is merged into an earlier one (or
    at finalize).  Order-insensitive passes ignore the flag.
    """

    #: classify eagerly during folds (only valid from the stream head)
    eager: bool = True

    def fold(self, batch: ColumnarTrace, offset: int) -> None:
        raise NotImplementedError

    def merge(self, other: "StreamingPass") -> None:
        raise NotImplementedError

    def finalize(self, stream):
        raise NotImplementedError


def run_streaming_pass(pass_: StreamingPass, stream) -> list:
    """Drive one pass over a stream: the ``find_*_streaming`` entry point."""
    offset = 0
    for batch in stream.batches():
        pass_.fold(batch, offset)
        offset += batch.num_data_op_events
    return pass_.finalize(stream)


def run_streaming_passes(passes: Sequence[StreamingPass], stream, *, jobs: int = 1) -> list:
    """Drive several passes over ONE scan of the stream.

    Each shard is loaded once and handed to every pass — the single-pass,
    multi-fold shape of the streaming pipeline.  With ``jobs > 1`` the scan
    becomes a two-stage pipeline: a prefetch thread decodes the next shard
    while the folds consume the current one (decode releases the GIL), and
    the finalizes — whose targeted materialisation scans are independent —
    run concurrently on a thread pool.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    offset = 0
    if jobs == 1:
        for batch in stream.batches():
            for pass_ in passes:
                pass_.fold(batch, offset)
            offset += batch.num_data_op_events
        return [pass_.finalize(stream) for pass_ in passes]

    from concurrent.futures import ThreadPoolExecutor

    from repro.events.stream import prefetch_batches

    for batch in prefetch_batches(stream, depth=min(jobs, 4)):
        for pass_ in passes:
            pass_.fold(batch, offset)
        offset += batch.num_data_op_events
    with ThreadPoolExecutor(max_workers=min(jobs, len(passes))) as pool:
        futures = [pool.submit(pass_.finalize, stream) for pass_ in passes]
        return [future.result() for future in futures]


def first_missing_hash_seq(batch: ColumnarTrace, idx: np.ndarray) -> Optional[int]:
    """Sequence number of the first selected transfer without a hash, if any."""
    missing = ~batch.do_has_content_hash[idx]
    if missing.any():
        return int(batch.do_seq[idx[np.flatnonzero(missing)[0]]])
    return None
