"""Shared plumbing for the incremental (streaming) detector variants.

The ``find_*_streaming`` detectors fold one columnar batch at a time into
small carry state and never hold a whole trace.  The carries they share:

* :class:`GrowArray` / :class:`ColumnBuffer` — append-only NumPy storage
  (amortised doubling / chunk list) for per-device cursors and compact
  column captures.
* :class:`CompositeKeyCounter` — the streaming twin of
  :func:`repro.core.detectors._columns.group_rows_by_key`: a lexsorted
  key table tracking, per distinct composite key, the cumulative member
  count, the smallest global position observed and that row's payload.
  Folding a batch reports which rows belong to keys that have reached the
  group threshold, which is all the duplicate/repeated-allocation
  detectors need to collect group members as positions (events are only
  materialised for findings, in one targeted pass at the end).
* :class:`StreamingAllocPairer` — the streaming twin of
  :func:`repro.events.records.get_alloc_delete_pairs`: carries the open
  allocations across batch boundaries and emits completed
  (alloc, delete) position pairs as the deletes arrive.  The common case
  (no live device address re-allocated, which ``validate_trace`` enforces)
  is fully vectorised; nested allocations fall back to the exact
  stack-matching loop, permanently for the rest of the stream.

Positions are "gpos": the row index an event would have in the
concatenation of every batch's data-op columns (see
:mod:`repro.events.stream`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.events.columnar import CODE_ALLOC, CODE_DELETE, ColumnarTrace


class GrowArray:
    """A 1-D append-only NumPy array with amortised-doubling growth."""

    def __init__(self, dtype) -> None:
        self._dtype = np.dtype(dtype)
        self._arr = np.empty(16, dtype=self._dtype)
        self.size = 0

    def extend(self, values: np.ndarray) -> None:
        n = len(values)
        if n == 0:
            return
        needed = self.size + n
        if needed > self._arr.size:
            capacity = self._arr.size
            while capacity < needed:
                capacity *= 2
            fresh = np.empty(capacity, dtype=self._dtype)
            fresh[: self.size] = self._arr[: self.size]
            self._arr = fresh
        self._arr[self.size : needed] = values
        self.size = needed

    def view(self) -> np.ndarray:
        return self._arr[: self.size]


class DeviceKernels:
    """Per-device kernel cursor base: start times and running-max end times.

    Shared by the unused-allocation and unused-transfer passes: both decide
    "first kernel whose running-max end reaches t" with a ``searchsorted``
    over ``runmax`` and then compare against ``start``.
    """

    def __init__(self) -> None:
        self.start = GrowArray(np.float64)
        self.runmax = GrowArray(np.float64)
        self.last = -np.inf

    def extend(self, starts: np.ndarray, ends: np.ndarray) -> None:
        if len(starts) == 0:
            return
        run = np.maximum.accumulate(ends)
        np.maximum(run, self.last, out=run)
        self.last = float(run[-1])
        self.start.extend(starts)
        self.runmax.extend(run)

    @property
    def count(self) -> int:
        return self.start.size


class ColumnBuffer:
    """Append-only column storage as a chunk list (concatenated on demand)."""

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self.size = 0

    def append(self, values: np.ndarray) -> None:
        if len(values):
            self._chunks.append(values)
            self.size += len(values)

    def concat(self, dtype=None) -> np.ndarray:
        if not self._chunks:
            return np.empty(0, dtype=dtype if dtype is not None else np.int64)
        return np.concatenate(self._chunks)


# --------------------------------------------------------------------- #
# Composite-key counting
# --------------------------------------------------------------------- #
@dataclass
class KeyFold:
    """Result of folding one batch of keyed rows (arrays per *shard* key)."""

    #: row index -> index into the per-batch unique-key arrays below
    inverse: np.ndarray
    #: members of each key seen before this batch
    prior_count: np.ndarray
    #: members of each key including this batch
    total_count: np.ndarray
    #: smallest gpos ever observed for the key (after this batch)
    first_gpos: np.ndarray
    #: payload of the row at ``first_gpos``
    first_payload: np.ndarray
    #: stable identifier assigned when the key was first seen (never changes
    #: across folds, unlike ``first_gpos`` when rows arrive out of gpos
    #: order — group membership must key on this)
    key_uid: np.ndarray
    #: ``first_gpos`` as it stood BEFORE this batch (the retained member a
    #: caller must recover when ``prior_count == 1``; meaningless where
    #: ``prior_count == 0``)
    prior_first_gpos: np.ndarray
    #: payload of the row at ``prior_first_gpos``
    prior_payload: np.ndarray


class CompositeKeyCounter:
    """Incremental composite-key statistics with a lexsorted NumPy table.

    Carry is O(distinct keys) at a few dozen bytes each — the same
    asymptotics as the object detectors' hash maps, but with no per-key
    Python objects.  The payload column (one int64 per key, e.g. a partner
    position) is only carried when a caller ever supplies one.
    """

    def __init__(self) -> None:
        self._keys: Optional[tuple[np.ndarray, ...]] = None
        self._count = np.empty(0, dtype=np.int64)
        self._first = np.empty(0, dtype=np.int64)
        self._uid = np.empty(0, dtype=np.int64)
        self._next_uid = 0
        self._payload: Optional[np.ndarray] = None

    @property
    def num_keys(self) -> int:
        return self._count.size

    @staticmethod
    def _group_boundaries(cols: Sequence[np.ndarray], order: np.ndarray) -> np.ndarray:
        boundary = np.ones(order.size, dtype=bool)
        if order.size > 1:
            same = np.ones(order.size - 1, dtype=bool)
            for col in cols:
                sorted_col = col[order]
                same &= sorted_col[1:] == sorted_col[:-1]
            boundary[1:] = ~same
        return boundary

    def fold(
        self,
        cols: Sequence[np.ndarray],
        gpos: np.ndarray,
        payload: Optional[np.ndarray] = None,
    ) -> KeyFold:
        """Fold one batch of rows; ``cols`` are the composite key columns."""
        n = len(gpos)
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return KeyFold(empty, empty, empty, empty, empty, empty, empty, empty)
        if payload is not None and self._payload is None:
            self._payload = np.zeros(self._count.size, dtype=np.int64)
        track_payload = self._payload is not None
        if track_payload and payload is None:
            payload = np.zeros(n, dtype=np.int64)

        # Batch-local uniques: sort by key columns, gpos as tiebreak, so the
        # first row of each run carries the batch-minimal gpos.
        order = np.lexsort((gpos, *reversed(cols)))
        boundary = self._group_boundaries(cols, order)
        starts = np.flatnonzero(boundary)
        group_id = np.cumsum(boundary) - 1
        inverse = np.empty(n, dtype=np.int64)
        inverse[order] = group_id

        u_cols = tuple(col[order][starts] for col in cols)
        u_count = np.diff(np.append(starts, n)).astype(np.int64)
        u_first = gpos[order][starts].astype(np.int64)
        u_payload = (
            payload[order][starts].astype(np.int64)
            if track_payload
            else np.zeros(len(starts), dtype=np.int64)
        )

        if self._keys is None:
            self._keys = u_cols
            self._count = u_count
            self._first = u_first
            self._uid = np.arange(len(starts), dtype=np.int64)
            self._next_uid = len(starts)
            if track_payload:
                self._payload = u_payload
            prior = np.zeros(len(starts), dtype=np.int64)
            return KeyFold(
                inverse, prior, u_count.copy(), u_first.copy(), u_payload,
                self._uid.copy(), u_first.copy(), u_payload.copy(),
            )

        # Merge the batch uniques into the table (both sides key-sorted; a
        # lexsort of the concatenation keeps the code simple, and the table
        # being nearly sorted keeps it cheap).
        m_cols = tuple(np.concatenate([t, u]) for t, u in zip(self._keys, u_cols))
        tag = np.concatenate([
            np.zeros(self._count.size, dtype=np.int8),
            np.ones(len(starts), dtype=np.int8),
        ])
        m_count = np.concatenate([self._count, u_count])
        m_first = np.concatenate([self._first, u_first])
        fresh_uids = self._next_uid + np.arange(len(starts), dtype=np.int64)
        self._next_uid += len(starts)
        m_uid = np.concatenate([self._uid, fresh_uids])

        morder = np.lexsort((tag, *reversed(m_cols)))
        mboundary = self._group_boundaries(m_cols, morder)
        run_starts = np.flatnonzero(mboundary)
        run_id = np.cumsum(mboundary) - 1
        m = morder.size

        count_sorted = m_count[morder]
        first_sorted = m_first[morder]
        uid_sorted = m_uid[morder]
        new_count = np.add.reduceat(count_sorted, run_starts)
        new_first = np.minimum.reduceat(first_sorted, run_starts)
        # Table entries sort before batch entries (the tag), so the run
        # head is the pre-existing key when there is one: its uid, first
        # and payload are the key's stable identity and prior state.
        new_uid = uid_sorted[run_starts]
        prior_first = first_sorted[run_starts]
        del count_sorted

        # Runs have at most two entries (table + batch); the payload follows
        # whichever entry holds the smaller first-gpos.
        run_len = np.diff(np.append(run_starts, m))
        second = run_starts + 1
        two = run_len == 2
        pick = run_starts.copy()
        pick[two] = np.where(
            first_sorted[np.minimum(second, m - 1)][two] < first_sorted[run_starts][two],
            second[two],
            run_starts[two],
        )
        del first_sorted
        if track_payload:
            payload_sorted = np.concatenate([self._payload, u_payload])[morder]
            new_payload = payload_sorted[pick]
            prior_payload = payload_sorted[run_starts]
        else:
            new_payload = np.zeros(run_starts.size, dtype=np.int64)
            prior_payload = new_payload

        self._keys = tuple(col[morder][run_starts] for col in m_cols)
        del m_cols
        self._count = new_count.astype(np.int64)
        self._first = new_first
        self._uid = new_uid
        if track_payload:
            self._payload = new_payload

        # Map each batch key to its merged run; batch entries appear in the
        # merged order in the same sorted order as the batch's own uniques.
        batch_runs = run_id[np.flatnonzero(tag[morder] == 1)]
        total_count = new_count[batch_runs]
        prior_count = total_count - u_count
        return KeyFold(
            inverse,
            prior_count.astype(np.int64),
            total_count.astype(np.int64),
            new_first[batch_runs],
            new_payload[batch_runs],
            new_uid[batch_runs],
            prior_first[batch_runs],
            prior_payload[batch_runs],
        )


# --------------------------------------------------------------------- #
# Streaming alloc/delete pairing
# --------------------------------------------------------------------- #
@dataclass
class PairBatch:
    """Completed (or, at finalize, still-open) allocation pairs."""

    alloc_gpos: np.ndarray
    #: aligned delete positions; -1 when the allocation was never deleted
    delete_gpos: np.ndarray
    #: captured alloc-side columns, keyed by column name
    alloc: dict[str, np.ndarray] = field(default_factory=dict)
    #: captured delete-side columns (empty arrays where delete_gpos == -1)
    delete: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return self.alloc_gpos.size


class StreamingAllocPairer:
    """Pairs ALLOC/DELETE events across batches with O(open allocs) carry."""

    def __init__(
        self,
        alloc_cols: Sequence[str] = (),
        delete_cols: Sequence[str] = (),
    ) -> None:
        self.alloc_cols = tuple(alloc_cols)
        self.delete_cols = tuple(delete_cols)
        #: (device, address) -> stack of (gpos, {col: value}) for open allocs
        self._open: dict[tuple[int, int], list[tuple[int, dict]]] = {}
        self._vectorized = True
        self._dtypes: dict[str, np.dtype] = {}

    @property
    def num_open(self) -> int:
        return sum(len(stack) for stack in self._open.values())

    def _empty_batch(self) -> PairBatch:
        return PairBatch(
            alloc_gpos=np.empty(0, dtype=np.int64),
            delete_gpos=np.empty(0, dtype=np.int64),
            alloc={c: np.empty(0, dtype=self._dtypes.get(c)) for c in self.alloc_cols},
            delete={c: np.empty(0, dtype=self._dtypes.get(c)) for c in self.delete_cols},
        )

    def fold(self, batch: ColumnarTrace, offset: int) -> PairBatch:
        """Feed one batch; returns the pairs whose DELETE landed in it."""
        kind = batch.do_kind
        sel = np.flatnonzero((kind == CODE_ALLOC) | (kind == CODE_DELETE))
        for col in self.alloc_cols + self.delete_cols:
            self._dtypes.setdefault(col, batch.do_column(col).dtype)
        if sel.size == 0:
            return self._empty_batch()

        is_alloc = kind[sel] == CODE_ALLOC
        dev = batch.do_dest_device_num[sel]
        addr = batch.do_dest_addr[sel]
        gpos = offset + sel

        if self._vectorized:
            result = self._fold_vectorized(batch, sel, is_alloc, dev, addr, gpos)
            if result is not None:
                return result
            self._vectorized = False  # nesting detected: exact stacks from now on
        return self._fold_stacks(batch, sel, is_alloc, dev, addr, gpos)

    # -- vectorised path (alternation holds per (device, address) key) --- #
    def _fold_vectorized(self, batch, sel, is_alloc, dev, addr, gpos):
        if any(len(stack) > 1 for stack in self._open.values()):
            return None
        carry_items = [
            (key, stack[0]) for key, stack in self._open.items() if stack
        ]
        k = len(carry_items)
        n = sel.size
        c_dev = np.concatenate([
            np.array([key[0] for key, _ in carry_items], dtype=dev.dtype),
            dev,
        ])
        c_addr = np.concatenate([
            np.array([key[1] for key, _ in carry_items], dtype=addr.dtype),
            addr,
        ])
        c_alloc = np.concatenate([np.ones(k, dtype=bool), is_alloc])
        c_pos = np.concatenate([
            np.arange(-k, 0, dtype=np.int64),
            np.arange(n, dtype=np.int64),
        ])
        c_gpos = np.concatenate([
            np.array([entry[0] for _, entry in carry_items], dtype=np.int64),
            gpos,
        ])

        order = np.lexsort((c_pos, c_addr, c_dev))
        dev_s, addr_s = c_dev[order], c_addr[order]
        alloc_s = c_alloc[order]
        same_key = np.empty(order.size, dtype=bool)
        same_key[0] = False
        same_key[1:] = (dev_s[1:] == dev_s[:-1]) & (addr_s[1:] == addr_s[:-1])
        if np.any(same_key[1:] & alloc_s[1:] & alloc_s[:-1]):
            return None  # nested allocation: exact stack semantics needed

        pair_at = np.flatnonzero(same_key[1:] & alloc_s[:-1] & ~alloc_s[1:])
        alloc_side = order[pair_at]
        delete_side = order[pair_at + 1]

        # Capture the alloc-side columns, mixing carried values and batch rows.
        alloc_values: dict[str, np.ndarray] = {}
        for col in self.alloc_cols:
            batch_col = batch.do_column(col)[sel]
            carried = np.array(
                [entry[1][col] for _, entry in carry_items], dtype=batch_col.dtype
            )
            alloc_values[col] = np.concatenate([carried, batch_col])
        delete_local = c_pos[delete_side]  # always >= 0: deletes are batch rows

        result = PairBatch(
            alloc_gpos=c_gpos[alloc_side],
            delete_gpos=gpos[delete_local],
            alloc={col: alloc_values[col][alloc_side] for col in self.alloc_cols},
            delete={
                col: batch.do_column(col)[sel][delete_local]
                for col in self.delete_cols
            },
        )

        # Rebuild the open-alloc carry: every alloc entry not paired above.
        paired = np.zeros(order.size, dtype=bool)
        paired[alloc_side] = True
        open_entries = np.flatnonzero(c_alloc & ~paired)
        self._open = {}
        for entry_index in open_entries.tolist():
            key = (int(c_dev[entry_index]), int(c_addr[entry_index]))
            values = {
                col: alloc_values[col][entry_index] for col in self.alloc_cols
            }
            self._open[key] = [(int(c_gpos[entry_index]), values)]
        return result

    # -- exact stack semantics (nested allocations) ---------------------- #
    def _fold_stacks(self, batch, sel, is_alloc, dev, addr, gpos):
        alloc_cols = {c: batch.do_column(c)[sel] for c in self.alloc_cols}
        delete_cols = {c: batch.do_column(c)[sel] for c in self.delete_cols}
        out_alloc_gpos: list[int] = []
        out_delete_gpos: list[int] = []
        out_alloc_vals: dict[str, list] = {c: [] for c in self.alloc_cols}
        out_delete_vals: dict[str, list] = {c: [] for c in self.delete_cols}
        dev_l, addr_l = dev.tolist(), addr.tolist()
        alloc_l, gpos_l = is_alloc.tolist(), gpos.tolist()
        for i in range(sel.size):
            key = (dev_l[i], addr_l[i])
            if alloc_l[i]:
                values = {c: alloc_cols[c][i] for c in self.alloc_cols}
                self._open.setdefault(key, []).append((gpos_l[i], values))
            else:
                stack = self._open.get(key)
                if not stack:
                    continue
                a_gpos, values = stack.pop()
                out_alloc_gpos.append(a_gpos)
                out_delete_gpos.append(gpos_l[i])
                for c in self.alloc_cols:
                    out_alloc_vals[c].append(values[c])
                for c in self.delete_cols:
                    out_delete_vals[c].append(delete_cols[c][i])
        return PairBatch(
            alloc_gpos=np.array(out_alloc_gpos, dtype=np.int64),
            delete_gpos=np.array(out_delete_gpos, dtype=np.int64),
            alloc={
                c: np.array(out_alloc_vals[c], dtype=self._dtypes[c])
                for c in self.alloc_cols
            },
            delete={
                c: np.array(out_delete_vals[c], dtype=self._dtypes[c])
                for c in self.delete_cols
            },
        )

    def finalize(self) -> PairBatch:
        """The allocations still open at end of stream (delete_gpos == -1)."""
        entries: list[tuple[int, dict]] = []
        for stack in self._open.values():
            entries.extend(stack)
        entries.sort(key=lambda e: e[0])
        out = PairBatch(
            alloc_gpos=np.array([e[0] for e in entries], dtype=np.int64),
            delete_gpos=np.full(len(entries), -1, dtype=np.int64),
            alloc={
                c: np.array([e[1][c] for e in entries], dtype=self._dtypes.get(c))
                for c in self.alloc_cols
            },
            delete={
                c: np.empty(0, dtype=self._dtypes.get(c)) for c in self.delete_cols
            },
        )
        return out


class StreamingPass:
    """One detector's incremental half: fold batches, then finalize.

    ``fold`` consumes one columnar batch (with the global data-op row
    offset of its first row) and updates the carry; ``finalize`` closes the
    carry and materialises findings — it may re-scan the stream, but only
    the shards that contain finding rows.  A pass instance is single-use.
    """

    def fold(self, batch: ColumnarTrace, offset: int) -> None:
        raise NotImplementedError

    def finalize(self, stream):
        raise NotImplementedError


def run_streaming_pass(pass_: StreamingPass, stream) -> list:
    """Drive one pass over a stream: the ``find_*_streaming`` entry point."""
    offset = 0
    for batch in stream.batches():
        pass_.fold(batch, offset)
        offset += batch.num_data_op_events
    return pass_.finalize(stream)


def _iter_prefetched(stream, depth: int = 2):
    """Iterate a stream's batches with a background prefetch thread.

    While the consumer folds batch *k*, the loader thread is already
    reading and decoding batch *k+1* — shard decode (zip read, zlib for
    compressed stores) releases the GIL, so load and fold genuinely
    overlap.  ``depth`` bounds the number of decoded batches in flight,
    keeping memory O(depth × shard).
    """
    import queue
    import threading

    q: "queue.Queue" = queue.Queue(maxsize=depth)
    stop = threading.Event()
    _DONE = object()

    def _put(item) -> None:
        # Bounded put that gives up when the consumer has gone away, so an
        # aborted scan never leaves the loader blocked (pinning a decoded
        # shard) for the life of the process.
        while not stop.is_set():
            try:
                q.put(item, timeout=0.1)
                return
            except queue.Full:
                continue

    def _loader() -> None:
        try:
            for batch in stream.batches():
                _put(batch)
                if stop.is_set():
                    return
            _put(_DONE)
        except BaseException as exc:  # propagate into the consumer
            _put(exc)

    thread = threading.Thread(target=_loader, name="shard-prefetch", daemon=True)
    thread.start()
    try:
        while True:
            item = q.get()
            if item is _DONE:
                break
            if isinstance(item, BaseException):
                raise item
            yield item
    finally:
        stop.set()
        while thread.is_alive():
            try:
                q.get_nowait()
            except queue.Empty:
                pass
            thread.join(timeout=0.05)


def run_streaming_passes(passes: Sequence[StreamingPass], stream, *, jobs: int = 1) -> list:
    """Drive several passes over ONE scan of the stream.

    Each shard is loaded once and handed to every pass — the single-pass,
    multi-fold shape of the streaming pipeline.  With ``jobs > 1`` the scan
    becomes a two-stage pipeline: a prefetch thread decodes the next shard
    while the folds consume the current one (decode releases the GIL), and
    the finalizes — whose targeted materialisation scans are independent —
    run concurrently on a thread pool.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    offset = 0
    if jobs == 1:
        for batch in stream.batches():
            for pass_ in passes:
                pass_.fold(batch, offset)
            offset += batch.num_data_op_events
        return [pass_.finalize(stream) for pass_ in passes]

    from concurrent.futures import ThreadPoolExecutor

    for batch in _iter_prefetched(stream, depth=min(jobs, 4)):
        for pass_ in passes:
            pass_.fold(batch, offset)
        offset += batch.num_data_op_events
    with ThreadPoolExecutor(max_workers=min(jobs, len(passes))) as pool:
        futures = [pool.submit(pass_.finalize, stream) for pass_ in passes]
        return [future.result() for future in futures]


def first_missing_hash_seq(batch: ColumnarTrace, idx: np.ndarray) -> Optional[int]:
    """Sequence number of the first selected transfer without a hash, if any."""
    missing = ~batch.do_has_content_hash[idx]
    if missing.any():
        return int(batch.do_seq[idx[np.flatnonzero(missing)[0]]])
    return None
