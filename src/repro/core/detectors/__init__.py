"""Detection algorithms (Section 5 of the paper).

Each submodule implements one algorithm over the post-mortem event trace:

* :mod:`repro.core.detectors.duplicates` — Algorithm 1, duplicate data transfers.
* :mod:`repro.core.detectors.roundtrips` — Algorithm 2, round-trip data transfers.
* :mod:`repro.core.detectors.repeated_allocs` — Algorithm 3, repeated device memory allocations.
* :mod:`repro.core.detectors.unused_allocs` — Algorithm 4, unused device memory allocations.
* :mod:`repro.core.detectors.unused_transfers` — Algorithm 5, unused data transfers.

The detectors deliberately consume only information available through the
OMPT EMI callbacks (timestamps, device numbers, addresses, sizes, content
hashes); none of them require memory-access instrumentation.

Every algorithm ships in three equivalent implementations: the object-based
reference oracle (``find_*``), the vectorised columnar fast path
(``find_*_columnar``) and the incremental streaming variant
(``find_*_streaming``) that folds an event stream shard by shard in
O(carry) memory.  The streaming passes are additionally
partition-mergeable — independent workers fold disjoint shard ranges and
the carries combine losslessly (see :mod:`repro.core.engine`).  The
four-way differential property test holds every path, on every execution
engine, to bit-identical findings.
"""

from repro.core.detectors.findings import (
    DuplicateTransferGroup,
    RepeatedAllocationGroup,
    RoundTripGroup,
    RoundTripPair,
    UnusedAllocation,
    UnusedTransfer,
)
from repro.core.detectors.duplicates import (
    find_duplicate_transfers,
    find_duplicate_transfers_columnar,
    find_duplicate_transfers_streaming,
)
from repro.core.detectors.roundtrips import (
    find_round_trips,
    find_round_trips_columnar,
    find_round_trips_streaming,
)
from repro.core.detectors.repeated_allocs import (
    find_repeated_allocations,
    find_repeated_allocations_columnar,
    find_repeated_allocations_streaming,
)
from repro.core.detectors.unused_allocs import (
    find_unused_allocations,
    find_unused_allocations_columnar,
    find_unused_allocations_streaming,
)
from repro.core.detectors.unused_transfers import (
    find_unused_transfers,
    find_unused_transfers_columnar,
    find_unused_transfers_streaming,
)

__all__ = [
    "DuplicateTransferGroup",
    "RepeatedAllocationGroup",
    "RoundTripGroup",
    "RoundTripPair",
    "UnusedAllocation",
    "UnusedTransfer",
    "find_duplicate_transfers",
    "find_duplicate_transfers_columnar",
    "find_duplicate_transfers_streaming",
    "find_round_trips",
    "find_round_trips_columnar",
    "find_round_trips_streaming",
    "find_repeated_allocations",
    "find_repeated_allocations_columnar",
    "find_repeated_allocations_streaming",
    "find_unused_allocations",
    "find_unused_allocations_columnar",
    "find_unused_allocations_streaming",
    "find_unused_transfers",
    "find_unused_transfers_columnar",
    "find_unused_transfers_streaming",
]
