"""Algorithm 1: identify duplicate data transfers.

A duplicate data transfer occurs when a device (or the host) receives data
it had previously received (Definition 4.1).  Detection is content based:
transfers are grouped by ``(content hash, destination device)`` and any group
with two or more members is a duplicate group.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.core.detectors._columns import group_rows_by_key
from repro.core.detectors._streaming import (
    ColumnBuffer,
    CompositeKeyCounter,
    StreamingPass,
    first_missing_hash_seq,
    merge_uid_buffers,
    run_streaming_pass,
)
from repro.core.detectors.findings import DuplicateTransferGroup
from repro.events.columnar import ColumnarTrace
from repro.events.protocol import EventStream
from repro.events.records import DataOpEvent
from repro.events.stream import materialize_data_op_events


def find_duplicate_transfers(
    data_op_events: Sequence[DataOpEvent],
    *,
    min_bytes: int = 0,
) -> list[DuplicateTransferGroup]:
    """Find duplicate data transfers (Algorithm 1).

    Parameters
    ----------
    data_op_events:
        Data-operation events in chronological order (non-transfer events
        are ignored).
    min_bytes:
        Ignore transfers smaller than this many bytes.  The paper's tool
        reports everything; the threshold exists so callers can filter the
        scalar-sized noise when exploring large traces interactively.

    Returns
    -------
    One :class:`DuplicateTransferGroup` per ``(hash, destination device)``
    pair that received the same payload at least twice, ordered by the first
    receipt.
    """
    if min_bytes < 0:
        raise ValueError("min_bytes cannot be negative")

    received: dict[tuple[int, int], list[DataOpEvent]] = defaultdict(list)
    first_seen_order: list[tuple[int, int]] = []

    for event in data_op_events:
        if not event.is_transfer or event.nbytes < min_bytes:
            continue
        if event.content_hash is None:
            raise ValueError(f"transfer event seq={event.seq} is missing its content hash")
        key = (event.content_hash, event.dest_device_num)
        if key not in received:
            first_seen_order.append(key)
        received[key].append(event)

    groups: list[DuplicateTransferGroup] = []
    for key in first_seen_order:
        events = received[key]
        if len(events) < 2:
            continue
        content_hash, dest_device_num = key
        groups.append(
            DuplicateTransferGroup(
                content_hash=content_hash,
                dest_device_num=dest_device_num,
                events=tuple(events),
            )
        )
    return groups


def find_duplicate_transfers_columnar(
    trace: ColumnarTrace,
    *,
    min_bytes: int = 0,
) -> list[DuplicateTransferGroup]:
    """Vectorised Algorithm 1 over a columnar trace.

    Produces findings identical to :func:`find_duplicate_transfers` run over
    the object events (the object implementation is the reference oracle):
    the grouping is a masked select plus one ``np.unique`` pass, and object
    events are materialised only for the rows that appear in findings.
    """
    if min_bytes < 0:
        raise ValueError("min_bytes cannot be negative")

    mask = trace.transfer_mask()
    if min_bytes:
        mask &= trace.do_nbytes >= min_bytes
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return []

    missing = ~trace.do_has_content_hash[idx]
    if missing.any():
        seq = int(trace.do_seq[idx[np.flatnonzero(missing)[0]]])
        raise ValueError(f"transfer event seq={seq} is missing its content hash")

    hashes = trace.do_content_hash[idx]
    dests = trace.do_dest_device_num[idx]
    member_lists = list(group_rows_by_key(hashes, dests, min_size=2))
    if not member_lists:
        return []
    # One bulk materialisation for every event implicated in any group.
    flat_rows = idx[np.concatenate(member_lists)]
    events = trace.data_op_events_at(flat_rows)
    groups: list[DuplicateTransferGroup] = []
    offset = 0
    for members in member_lists:
        group_events = tuple(events[offset : offset + members.size])
        offset += members.size
        groups.append(
            DuplicateTransferGroup(
                content_hash=int(hashes[members[0]]),
                dest_device_num=int(dests[members[0]]),
                events=group_events,
            )
        )
    return groups


class DuplicateTransferPass(StreamingPass):
    """Incremental Algorithm 1: fold shards, finalize to groups.

    Findings are identical to the batch implementations.  Carry state is a
    :class:`CompositeKeyCounter` over ``(hash, destination device)`` —
    count and first position per distinct key, the streaming analogue of
    the native tool's hash map — plus the positions of members of keys
    that reached the group threshold (O(findings)).  When a key crosses
    from one member to two, its retained first position is pulled into the
    member set, so no rescan is needed for counting; events are
    materialised once at finalize, only for the rows in findings.
    """

    def __init__(self, *, min_bytes: int = 0) -> None:
        if min_bytes < 0:
            raise ValueError("min_bytes cannot be negative")
        self.min_bytes = min_bytes
        self._counter = CompositeKeyCounter()
        self._gpos = ColumnBuffer()
        self._group = ColumnBuffer()  # stable uid of the member's key
        self._hash = ColumnBuffer()
        self._dest = ColumnBuffer()

    def fold(self, batch, offset: int) -> None:
        mask = batch.transfer_mask()
        if self.min_bytes:
            mask &= batch.do_nbytes >= self.min_bytes
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            return
        bad_seq = first_missing_hash_seq(batch, idx)
        if bad_seq is not None:
            raise ValueError(
                f"transfer event seq={bad_seq} is missing its content hash"
            )
        hashes = batch.do_content_hash[idx]
        dests = batch.do_dest_device_num[idx]
        gpos = offset + idx
        fold = self._counter.fold((hashes, dests), gpos)

        qualified = fold.total_count[fold.inverse] >= 2
        if qualified.any():
            self._gpos.append(gpos[qualified])
            self._group.append(fold.key_uid[fold.inverse][qualified])
            self._hash.append(hashes[qualified])
            self._dest.append(dests[qualified])
        crossed = (fold.prior_count == 1) & (fold.total_count >= 2)
        if crossed.any():
            # The key's single retained member (counted while the key was
            # still a singleton) joins the group now.
            self._gpos.append(fold.prior_first_gpos[crossed])
            self._group.append(fold.key_uid[crossed])
            # recover the key columns from any batch member of the key
            _, first_row_of_key = np.unique(fold.inverse, return_index=True)
            representative = first_row_of_key[np.flatnonzero(crossed)]
            self._hash.append(hashes[representative])
            self._dest.append(dests[representative])

    def merge(self, other: "DuplicateTransferPass") -> None:
        """Absorb a pass folded over a disjoint row range.

        The key tables union (counts add, first positions take the
        minimum); members recorded on either side are kept with their uids
        remapped into the merged table, and keys whose two sides were both
        below the group threshold contribute their retained singletons as
        promoted members — the cross-partition analogue of the ``crossed``
        recovery in :meth:`fold`.  The carry is order-insensitive, so no
        ``eager`` distinction exists for this pass.
        """
        km = self._counter.merge(other._counter)
        self._group = merge_uid_buffers(km, self._group, other._group)
        self._gpos.absorb(other._gpos)
        self._hash.absorb(other._hash)
        self._dest.absorb(other._dest)
        if km.promoted_gpos.size:
            self._gpos.append(km.promoted_gpos)
            self._hash.append(km.promoted_keys[0])
            self._dest.append(km.promoted_keys[1])

    def finalize(self, stream) -> list[DuplicateTransferGroup]:
        all_gpos = self._gpos.concat()
        if all_gpos.size == 0:
            return []
        all_group = self._group.concat()
        all_hash = self._hash.concat()
        all_dest = self._dest.concat()

        order = np.lexsort((all_gpos, all_group))
        events = materialize_data_op_events(stream, all_gpos)

        # Members grouped by stable key uid, chronological inside each
        # group; groups emitted in order of their first (earliest) member,
        # matching the oracle's first-occurrence ordering.
        keyed: list[tuple[int, DuplicateTransferGroup]] = []
        sorted_group = all_group[order]
        boundaries = np.flatnonzero(sorted_group[1:] != sorted_group[:-1]) + 1
        for member_rows in np.split(order, boundaries):
            group_events = tuple(events[int(all_gpos[i])] for i in member_rows)
            keyed.append((
                int(all_gpos[member_rows[0]]),
                DuplicateTransferGroup(
                    content_hash=int(all_hash[member_rows[0]]),
                    dest_device_num=int(all_dest[member_rows[0]]),
                    events=group_events,
                ),
            ))
        keyed.sort(key=lambda pair: pair[0])
        return [group for _, group in keyed]


def find_duplicate_transfers_streaming(
    stream: EventStream,
    *,
    min_bytes: int = 0,
) -> list[DuplicateTransferGroup]:
    """Incremental Algorithm 1 over an event stream (one shard at a time)."""
    return run_streaming_pass(DuplicateTransferPass(min_bytes=min_bytes), stream)


def count_redundant_transfers(groups: Sequence[DuplicateTransferGroup]) -> int:
    """Total number of redundant transfer events across all duplicate groups.

    This is the "DD" count reported in Table 1: every receipt beyond the
    first in each group.
    """
    return sum(g.num_redundant for g in groups)
