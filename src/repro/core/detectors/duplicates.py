"""Algorithm 1: identify duplicate data transfers.

A duplicate data transfer occurs when a device (or the host) receives data
it had previously received (Definition 4.1).  Detection is content based:
transfers are grouped by ``(content hash, destination device)`` and any group
with two or more members is a duplicate group.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.core.detectors.findings import DuplicateTransferGroup
from repro.events.records import DataOpEvent


def find_duplicate_transfers(
    data_op_events: Sequence[DataOpEvent],
    *,
    min_bytes: int = 0,
) -> list[DuplicateTransferGroup]:
    """Find duplicate data transfers (Algorithm 1).

    Parameters
    ----------
    data_op_events:
        Data-operation events in chronological order (non-transfer events
        are ignored).
    min_bytes:
        Ignore transfers smaller than this many bytes.  The paper's tool
        reports everything; the threshold exists so callers can filter the
        scalar-sized noise when exploring large traces interactively.

    Returns
    -------
    One :class:`DuplicateTransferGroup` per ``(hash, destination device)``
    pair that received the same payload at least twice, ordered by the first
    receipt.
    """
    if min_bytes < 0:
        raise ValueError("min_bytes cannot be negative")

    received: dict[tuple[int, int], list[DataOpEvent]] = defaultdict(list)
    first_seen_order: list[tuple[int, int]] = []

    for event in data_op_events:
        if not event.is_transfer or event.nbytes < min_bytes:
            continue
        if event.content_hash is None:
            raise ValueError(f"transfer event seq={event.seq} is missing its content hash")
        key = (event.content_hash, event.dest_device_num)
        if key not in received:
            first_seen_order.append(key)
        received[key].append(event)

    groups: list[DuplicateTransferGroup] = []
    for key in first_seen_order:
        events = received[key]
        if len(events) < 2:
            continue
        content_hash, dest_device_num = key
        groups.append(
            DuplicateTransferGroup(
                content_hash=content_hash,
                dest_device_num=dest_device_num,
                events=tuple(events),
            )
        )
    return groups


def count_redundant_transfers(groups: Sequence[DuplicateTransferGroup]) -> int:
    """Total number of redundant transfer events across all duplicate groups.

    This is the "DD" count reported in Table 1: every receipt beyond the
    first in each group.
    """
    return sum(g.num_redundant for g in groups)
