"""Algorithm 1: identify duplicate data transfers.

A duplicate data transfer occurs when a device (or the host) receives data
it had previously received (Definition 4.1).  Detection is content based:
transfers are grouped by ``(content hash, destination device)`` and any group
with two or more members is a duplicate group.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.core.detectors._columns import group_rows_by_key
from repro.core.detectors.findings import DuplicateTransferGroup
from repro.events.columnar import ColumnarTrace
from repro.events.records import DataOpEvent


def find_duplicate_transfers(
    data_op_events: Sequence[DataOpEvent],
    *,
    min_bytes: int = 0,
) -> list[DuplicateTransferGroup]:
    """Find duplicate data transfers (Algorithm 1).

    Parameters
    ----------
    data_op_events:
        Data-operation events in chronological order (non-transfer events
        are ignored).
    min_bytes:
        Ignore transfers smaller than this many bytes.  The paper's tool
        reports everything; the threshold exists so callers can filter the
        scalar-sized noise when exploring large traces interactively.

    Returns
    -------
    One :class:`DuplicateTransferGroup` per ``(hash, destination device)``
    pair that received the same payload at least twice, ordered by the first
    receipt.
    """
    if min_bytes < 0:
        raise ValueError("min_bytes cannot be negative")

    received: dict[tuple[int, int], list[DataOpEvent]] = defaultdict(list)
    first_seen_order: list[tuple[int, int]] = []

    for event in data_op_events:
        if not event.is_transfer or event.nbytes < min_bytes:
            continue
        if event.content_hash is None:
            raise ValueError(f"transfer event seq={event.seq} is missing its content hash")
        key = (event.content_hash, event.dest_device_num)
        if key not in received:
            first_seen_order.append(key)
        received[key].append(event)

    groups: list[DuplicateTransferGroup] = []
    for key in first_seen_order:
        events = received[key]
        if len(events) < 2:
            continue
        content_hash, dest_device_num = key
        groups.append(
            DuplicateTransferGroup(
                content_hash=content_hash,
                dest_device_num=dest_device_num,
                events=tuple(events),
            )
        )
    return groups


def find_duplicate_transfers_columnar(
    trace: ColumnarTrace,
    *,
    min_bytes: int = 0,
) -> list[DuplicateTransferGroup]:
    """Vectorised Algorithm 1 over a columnar trace.

    Produces findings identical to :func:`find_duplicate_transfers` run over
    the object events (the object implementation is the reference oracle):
    the grouping is a masked select plus one ``np.unique`` pass, and object
    events are materialised only for the rows that appear in findings.
    """
    if min_bytes < 0:
        raise ValueError("min_bytes cannot be negative")

    mask = trace.transfer_mask()
    if min_bytes:
        mask &= trace.do_nbytes >= min_bytes
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return []

    missing = ~trace.do_has_content_hash[idx]
    if missing.any():
        seq = int(trace.do_seq[idx[np.flatnonzero(missing)[0]]])
        raise ValueError(f"transfer event seq={seq} is missing its content hash")

    hashes = trace.do_content_hash[idx]
    dests = trace.do_dest_device_num[idx]
    member_lists = list(group_rows_by_key(hashes, dests, min_size=2))
    if not member_lists:
        return []
    # One bulk materialisation for every event implicated in any group.
    flat_rows = idx[np.concatenate(member_lists)]
    events = trace.data_op_events_at(flat_rows)
    groups: list[DuplicateTransferGroup] = []
    offset = 0
    for members in member_lists:
        group_events = tuple(events[offset : offset + members.size])
        offset += members.size
        groups.append(
            DuplicateTransferGroup(
                content_hash=int(hashes[members[0]]),
                dest_device_num=int(dests[members[0]]),
                events=group_events,
            )
        )
    return groups


def count_redundant_transfers(groups: Sequence[DuplicateTransferGroup]) -> int:
    """Total number of redundant transfer events across all duplicate groups.

    This is the "DD" count reported in Table 1: every receipt beyond the
    first in each group.
    """
    return sum(g.num_redundant for g in groups)
