"""Algorithm 5: identify unused data transfers.

A transfer to a device is provably unused when either (a) it occurs after
the last kernel execution on that device, or (b) its payload is overwritten
by a later transfer from the same host address before any kernel on that
device could have read it.  The algorithm keeps, per device, a *candidates*
map from host source address to the most recent transfer that wrote there;
the map is cleared whenever a kernel execution is passed (the kernel may
have consumed the candidates) or when a transfer overlaps a running kernel.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.detectors.findings import UnusedTransfer
from repro.events.records import DataOpEvent, TargetEvent


def find_unused_transfers(
    target_events: Sequence[TargetEvent],
    data_op_events: Sequence[DataOpEvent],
    num_devices: int,
) -> list[UnusedTransfer]:
    """Find unused data transfers (Algorithm 5).

    Only transfers *to target devices* are considered: the pattern describes
    data staged on a device that no kernel ever had a chance to read.
    """
    if num_devices < 1:
        raise ValueError("num_devices must be at least 1")

    device_kernels: list[list[TargetEvent]] = [[] for _ in range(num_devices)]
    for ev in target_events:
        if ev.executes_kernel and 0 <= ev.device_num < num_devices:
            device_kernels[ev.device_num].append(ev)

    device_transfers: list[list[DataOpEvent]] = [[] for _ in range(num_devices)]
    for ev in data_op_events:
        if ev.is_transfer and 0 <= ev.dest_device_num < num_devices:
            device_transfers[ev.dest_device_num].append(ev)

    unused: list[UnusedTransfer] = []
    for dev_idx in range(num_devices):
        kernels = device_kernels[dev_idx]
        transfers = device_transfers[dev_idx]
        tgt_idx = 0
        candidates: dict[int, DataOpEvent] = {}

        for tx in transfers:
            # Advance past kernels that ended before this transfer started;
            # each passed kernel may have consumed the staged candidates.
            while tgt_idx < len(kernels) and kernels[tgt_idx].end_time < tx.start_time:
                tgt_idx += 1
                candidates.clear()

            if tgt_idx == len(kernels):
                # No kernel will ever run on this device again.
                unused.append(UnusedTransfer(event=tx, reason="after_last_kernel"))
            elif kernels[tgt_idx].start_time > tx.start_time:
                # The transfer does not overlap a running kernel: it is a
                # candidate for being overwritten before use.
                previous = candidates.get(tx.src_addr)
                if previous is not None:
                    unused.append(UnusedTransfer(event=previous, reason="overwritten"))
                candidates[tx.src_addr] = tx
            else:
                # The transfer overlaps an active kernel; anything staged so
                # far may have been read concurrently, so drop all candidates.
                candidates.clear()
    return unused


def count_unused_transfers(findings: Sequence[UnusedTransfer]) -> int:
    """The "UT" count of Table 1."""
    return len(findings)
