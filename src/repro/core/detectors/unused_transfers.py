"""Algorithm 5: identify unused data transfers.

A transfer to a device is provably unused when either (a) it occurs after
the last kernel execution on that device, or (b) its payload is overwritten
by a later transfer from the same host address before any kernel on that
device could have read it.  The algorithm keeps, per device, a *candidates*
map from host source address to the most recent transfer that wrote there;
the map is cleared whenever a kernel execution is passed (the kernel may
have consumed the candidates) or when a transfer overlaps a running kernel.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.detectors._columns import first_index_reaching
from repro.core.detectors._streaming import (
    ColumnBuffer,
    DeviceKernels,
    StreamingPass,
    run_streaming_pass,
)
from repro.core.detectors.findings import UnusedTransfer
from repro.events.columnar import ColumnarTrace
from repro.events.protocol import EventStream
from repro.events.records import DataOpEvent, TargetEvent
from repro.events.stream import materialize_data_op_events


def find_unused_transfers(
    target_events: Sequence[TargetEvent],
    data_op_events: Sequence[DataOpEvent],
    num_devices: int,
) -> list[UnusedTransfer]:
    """Find unused data transfers (Algorithm 5).

    Only transfers *to target devices* are considered: the pattern describes
    data staged on a device that no kernel ever had a chance to read.
    """
    if num_devices < 1:
        raise ValueError("num_devices must be at least 1")

    device_kernels: list[list[TargetEvent]] = [[] for _ in range(num_devices)]
    for ev in target_events:
        if ev.executes_kernel and 0 <= ev.device_num < num_devices:
            device_kernels[ev.device_num].append(ev)

    device_transfers: list[list[DataOpEvent]] = [[] for _ in range(num_devices)]
    for ev in data_op_events:
        if ev.is_transfer and 0 <= ev.dest_device_num < num_devices:
            device_transfers[ev.dest_device_num].append(ev)

    unused: list[UnusedTransfer] = []
    for dev_idx in range(num_devices):
        kernels = device_kernels[dev_idx]
        transfers = device_transfers[dev_idx]
        tgt_idx = 0
        candidates: dict[int, DataOpEvent] = {}

        for tx in transfers:
            # Advance past kernels that ended before this transfer started;
            # each passed kernel may have consumed the staged candidates.
            while tgt_idx < len(kernels) and kernels[tgt_idx].end_time < tx.start_time:
                tgt_idx += 1
                candidates.clear()

            if tgt_idx == len(kernels):
                # No kernel will ever run on this device again.
                unused.append(UnusedTransfer(event=tx, reason="after_last_kernel"))
            elif kernels[tgt_idx].start_time > tx.start_time:
                # The transfer does not overlap a running kernel: it is a
                # candidate for being overwritten before use.
                previous = candidates.get(tx.src_addr)
                if previous is not None:
                    unused.append(UnusedTransfer(event=previous, reason="overwritten"))
                candidates[tx.src_addr] = tx
            else:
                # The transfer overlaps an active kernel; anything staged so
                # far may have been read concurrently, so drop all candidates.
                candidates.clear()
    return unused


def find_unused_transfers_columnar(
    trace: ColumnarTrace,
    num_devices: Optional[int] = None,
) -> list[UnusedTransfer]:
    """Vectorised Algorithm 5 over a columnar trace.

    Findings are identical to :func:`find_unused_transfers` over the object
    events (the reference oracle).  The sequential candidate map decomposes
    into array passes: the kernel cursor of each transfer is a
    ``searchsorted`` over the running maximum of kernel end times; the
    candidate map is cleared exactly when the cursor advances or a transfer
    overlaps a running kernel, so those clearing points cut the transfer
    sequence into *epochs*; and within an epoch a candidate is overwritten
    iff a later candidate in the same epoch shares its source address —
    which one ``lexsort`` by ``(epoch, address, position)`` exposes as
    adjacent rows.  A finding is reported at the position of the transfer
    that triggered it (the overwriting transfer, or the transfer itself for
    the after-last-kernel case), matching the oracle's output order.
    """
    if num_devices is None:
        num_devices = trace.num_devices
    if num_devices < 1:
        raise ValueError("num_devices must be at least 1")

    tmask = trace.transfer_mask()
    dest = trace.do_dest_device_num
    kmask = trace.kernel_mask()
    kernel_device = trace.tgt_device_num[kmask]
    kernel_start = trace.tgt_start_time[kmask]
    kernel_end = trace.tgt_end_time[kmask]

    unused: list[UnusedTransfer] = []
    for dev_idx in range(num_devices):
        tr = np.flatnonzero(tmask & (dest == dev_idx))
        if tr.size == 0:
            continue
        tx_start = trace.do_start_time[tr]
        tx_addr = trace.do_src_addr[tr]

        k_sel = kernel_device == dev_idx
        k_start = kernel_start[k_sel]
        k_end = kernel_end[k_sel]
        num_kernels = k_start.size

        if num_kernels == 0:
            cursor = np.zeros(tr.size, dtype=np.int64)
        else:
            cursor = first_index_reaching(np.maximum.accumulate(k_end), tx_start)
        after_last = cursor == num_kernels
        if num_kernels:
            clamped = np.minimum(cursor, num_kernels - 1)
            is_candidate = ~after_last & (k_start[clamped] > tx_start)
        else:
            is_candidate = np.zeros(tr.size, dtype=bool)
        overlaps_kernel = ~after_last & ~is_candidate

        # Epochs: the candidate map survives between consecutive transfers
        # unless the kernel cursor advanced or the previous transfer
        # overlapped a running kernel (both clear it).
        boundary = np.empty(tr.size, dtype=bool)
        boundary[0] = True
        boundary[1:] = (cursor[1:] != cursor[:-1]) | overlaps_kernel[:-1]
        epoch = np.cumsum(boundary)

        # Overwritten candidates: same (epoch, address), all but the last,
        # each reported when its successor lands.
        cand = np.flatnonzero(is_candidate)
        report_at: list[np.ndarray] = [np.flatnonzero(after_last)]
        found_rows: list[np.ndarray] = [tr[after_last]]
        reasons: list[np.ndarray] = [
            np.full(int(after_last.sum()), False)  # False => "after_last_kernel"
        ]
        if cand.size:
            order = np.lexsort((cand, tx_addr[cand], epoch[cand]))
            e_sorted = epoch[cand][order]
            a_sorted = tx_addr[cand][order]
            p_sorted = cand[order]
            same = (e_sorted[1:] == e_sorted[:-1]) & (a_sorted[1:] == a_sorted[:-1])
            report_at.append(p_sorted[1:][same])
            found_rows.append(tr[p_sorted[:-1][same]])
            reasons.append(np.full(int(same.sum()), True))  # True => "overwritten"

        all_report = np.concatenate(report_at)
        all_rows = np.concatenate(found_rows)
        all_overwritten = np.concatenate(reasons)
        emit = np.argsort(all_report, kind="stable")
        events = trace.data_op_events_at(all_rows[emit])
        for k, event in zip(emit, events):
            unused.append(
                UnusedTransfer(
                    event=event,
                    reason="overwritten" if all_overwritten[k] else "after_last_kernel",
                )
            )
    return unused


class _DeviceTransferState:
    """Per-device carry of the streaming unused-transfer detector.

    * kernel start times + running-max end times (the cursor base),
    * the *pending* transfers — those no kernel so far has reached, whose
      cursor (and hence classification) still depends on the future,
    * the open epoch: last cursor value and overlap flag of the most recent
      classified transfer, plus the surviving candidate per source address
      (the "last write per buffer" the overwrite rule needs),
    * the findings so far, as (report position, event position, reason).
    """

    def __init__(self) -> None:
        self.kernels = DeviceKernels()
        self.pend_start = np.empty(0, dtype=np.float64)
        self.pend_addr = np.empty(0, dtype=np.uint64)
        self.pend_gpos = np.empty(0, dtype=np.int64)
        self.prev_cursor = -1
        self.prev_overlap = False
        self.started = False
        self.cand_addr = np.empty(0, dtype=np.uint64)
        self.cand_gpos = np.empty(0, dtype=np.int64)
        self.report = ColumnBuffer()
        self.event = ColumnBuffer()
        self.overwritten = ColumnBuffer()

    def add_kernels(self, starts: np.ndarray, ends: np.ndarray) -> None:
        self.kernels.extend(starts, ends)

    def add_transfers(
        self, starts: np.ndarray, addrs: np.ndarray, gpos: np.ndarray
    ) -> None:
        self.pend_start = np.concatenate([self.pend_start, starts])
        self.pend_addr = np.concatenate([self.pend_addr, addrs])
        self.pend_gpos = np.concatenate([self.pend_gpos, gpos])

    def classify(self) -> None:
        """Classify every pending transfer some kernel has reached by now."""
        if self.pend_start.size == 0 or self.kernels.count == 0:
            return
        kcount = self.kernels.count
        cursor = np.searchsorted(self.kernels.runmax.view(), self.pend_start, side="left")
        # Start times (hence cursors) are non-decreasing: the classifiable
        # transfers are a prefix, the rest stay pending.
        m = int(np.searchsorted(cursor, kcount, side="left"))
        if m == 0:
            return
        starts, addrs, gpos = (
            self.pend_start[:m],
            self.pend_addr[:m],
            self.pend_gpos[:m],
        )
        self.pend_start = self.pend_start[m:]
        self.pend_addr = self.pend_addr[m:]
        self.pend_gpos = self.pend_gpos[m:]
        cursor = cursor[:m]

        candidate = self.kernels.start.view()[cursor] > starts
        overlap = ~candidate

        boundary = np.empty(m, dtype=bool)
        if self.started:
            boundary[0] = (cursor[0] != self.prev_cursor) or self.prev_overlap
        else:
            boundary[0] = True
        boundary[1:] = (cursor[1:] != cursor[:-1]) | overlap[:-1]
        epoch = np.cumsum(boundary)  # carried open epoch is epoch 0

        if boundary[0]:
            # The open epoch closed without another member: its surviving
            # candidates are cleared unreported, exactly like the oracle's
            # ``candidates.clear()``.
            self.cand_addr = np.empty(0, dtype=np.uint64)
            self.cand_gpos = np.empty(0, dtype=np.int64)

        sel = np.flatnonzero(candidate)
        all_epoch = np.concatenate([
            np.zeros(self.cand_addr.size, dtype=np.int64), epoch[sel],
        ])
        all_addr = np.concatenate([self.cand_addr, addrs[sel]])
        all_gpos = np.concatenate([self.cand_gpos, gpos[sel]])

        if all_addr.size:
            order = np.lexsort((all_gpos, all_addr, all_epoch))
            ep_s, ad_s, gp_s = all_epoch[order], all_addr[order], all_gpos[order]
            same = (ep_s[1:] == ep_s[:-1]) & (ad_s[1:] == ad_s[:-1])
            if same.any():
                self.event.append(gp_s[:-1][same])
                self.report.append(gp_s[1:][same])
                self.overwritten.append(np.ones(int(same.sum()), dtype=bool))

            # Surviving candidates of the (possibly still open) final epoch:
            # the last member per address, unless an overlap just cleared it.
            if overlap[m - 1]:
                self.cand_addr = np.empty(0, dtype=np.uint64)
                self.cand_gpos = np.empty(0, dtype=np.int64)
            else:
                final_epoch = int(epoch[m - 1])
                in_final = ep_s == final_epoch
                last = np.ones(int(in_final.sum()), dtype=bool)
                ad_f, gp_f = ad_s[in_final], gp_s[in_final]
                last[:-1] = ad_f[1:] != ad_f[:-1]
                self.cand_addr = ad_f[last]
                self.cand_gpos = gp_f[last]
        self.prev_cursor = int(cursor[m - 1])
        self.prev_overlap = bool(overlap[m - 1])
        self.started = True

    def splice(self, other: "_DeviceTransferState") -> None:
        """Splice a later range's state onto this one.

        ``other`` must never have classified (its epoch state untouched):
        its kernels append with the cursor base rebased, and its buffered
        transfers join the pending tail — this side's open epoch
        (``prev_cursor``/``prev_overlap`` and the surviving candidates)
        carries across the boundary untouched, so a subsequent
        :meth:`classify` continues exactly like a sequential fold.
        """
        self.kernels.merge(other.kernels)
        self.pend_start = np.concatenate([self.pend_start, other.pend_start])
        self.pend_addr = np.concatenate([self.pend_addr, other.pend_addr])
        self.pend_gpos = np.concatenate([self.pend_gpos, other.pend_gpos])

    def finish(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """After the last batch: classify whatever some kernel reaches,
        then the remaining pending transfers outlive every kernel
        (after-last findings), then all findings sorted by report
        position."""
        self.classify()
        if self.pend_gpos.size:
            self.report.append(self.pend_gpos)
            self.event.append(self.pend_gpos)
            self.overwritten.append(np.zeros(self.pend_gpos.size, dtype=bool))
        report = self.report.concat()
        event = self.event.concat()
        overwritten = self.overwritten.concat(dtype=bool)
        order = np.argsort(report, kind="stable")
        return report[order], event[order], overwritten[order]


class UnusedTransferPass(StreamingPass):
    """Incremental Algorithm 5: fold kernels and transfers per device.

    The oracle's candidate map decomposes exactly as in the columnar fast
    path — kernel-cursor epochs with a last-write-per-address rule — but
    here the epochs are folded shard by shard: each device carries its
    kernel cursor base, the transfers no kernel has reached yet, and the
    open epoch's surviving candidates (see :class:`_DeviceTransferState`).
    Everything classified is discarded immediately unless it is a finding.

    Classification depends on the *complete* kernel prefix: a partition
    that does not start at the stream head must fold with ``eager=False``,
    which buffers kernels and transfers without classifying; the open
    epoch then splices across the boundary at :meth:`merge` time and the
    deferred transfers classify against the joined cursor base.
    """

    def __init__(self, num_devices: int) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be at least 1")
        self.num_devices = num_devices
        self._states = [_DeviceTransferState() for _ in range(num_devices)]

    def fold(self, batch, offset: int) -> None:
        num_devices = self.num_devices
        states = self._states
        kmask = batch.kernel_mask()
        k_dev = batch.tgt_device_num[kmask]
        k_start = batch.tgt_start_time[kmask]
        k_end = batch.tgt_end_time[kmask]

        tmask = batch.transfer_mask()
        t_dev = batch.do_dest_device_num
        touched = set()
        for dev in np.unique(k_dev).tolist():
            if 0 <= dev < num_devices:
                on_dev = k_dev == dev
                states[dev].add_kernels(k_start[on_dev], k_end[on_dev])
                touched.add(dev)
        tx = np.flatnonzero(tmask & (t_dev >= 0) & (t_dev < num_devices))
        if tx.size:
            tx_dev = t_dev[tx]
            for dev in np.unique(tx_dev).tolist():
                rows = tx[tx_dev == dev]
                states[dev].add_transfers(
                    batch.do_start_time[rows],
                    batch.do_src_addr[rows],
                    offset + rows,
                )
                touched.add(dev)
        if self.eager:
            for dev in touched:
                states[dev].classify()

    def merge(self, other: "UnusedTransferPass") -> None:
        """Absorb a pass folded over the immediately following row range.

        ``other`` must have folded with ``eager=False`` (pure buffering):
        per device, its kernels rebase onto this cursor base and its
        transfers join the pending tail, with this side's open epoch
        spliced across the boundary; when this side is eager, the joined
        pendings classify immediately.
        """
        if other.eager:
            raise ValueError(
                "the absorbed pass must fold with eager=False: its "
                "classifications would be based on an incomplete kernel prefix"
            )
        for mine, theirs in zip(self._states, other._states):
            mine.splice(theirs)
            if self.eager:
                mine.classify()

    def finalize(self, stream) -> list[UnusedTransfer]:
        per_device = [state.finish() for state in self._states]
        needed = np.concatenate([event for _, event, _ in per_device])
        events = materialize_data_op_events(stream, needed)

        unused: list[UnusedTransfer] = []
        for _, event_gpos, overwritten in per_device:
            for k in range(event_gpos.size):
                unused.append(
                    UnusedTransfer(
                        event=events[int(event_gpos[k])],
                        reason="overwritten" if overwritten[k] else "after_last_kernel",
                    )
                )
        return unused


def find_unused_transfers_streaming(
    stream: EventStream,
    num_devices: Optional[int] = None,
) -> list[UnusedTransfer]:
    """Incremental Algorithm 5 over an event stream."""
    if num_devices is None:
        num_devices = stream.num_devices
    return run_streaming_pass(UnusedTransferPass(num_devices), stream)


def count_unused_transfers(findings: Sequence[UnusedTransfer]) -> int:
    """The "UT" count of Table 1."""
    return len(findings)
