"""Algorithm 5: identify unused data transfers.

A transfer to a device is provably unused when either (a) it occurs after
the last kernel execution on that device, or (b) its payload is overwritten
by a later transfer from the same host address before any kernel on that
device could have read it.  The algorithm keeps, per device, a *candidates*
map from host source address to the most recent transfer that wrote there;
the map is cleared whenever a kernel execution is passed (the kernel may
have consumed the candidates) or when a transfer overlaps a running kernel.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.detectors._columns import first_index_reaching
from repro.core.detectors.findings import UnusedTransfer
from repro.events.columnar import ColumnarTrace
from repro.events.records import DataOpEvent, TargetEvent


def find_unused_transfers(
    target_events: Sequence[TargetEvent],
    data_op_events: Sequence[DataOpEvent],
    num_devices: int,
) -> list[UnusedTransfer]:
    """Find unused data transfers (Algorithm 5).

    Only transfers *to target devices* are considered: the pattern describes
    data staged on a device that no kernel ever had a chance to read.
    """
    if num_devices < 1:
        raise ValueError("num_devices must be at least 1")

    device_kernels: list[list[TargetEvent]] = [[] for _ in range(num_devices)]
    for ev in target_events:
        if ev.executes_kernel and 0 <= ev.device_num < num_devices:
            device_kernels[ev.device_num].append(ev)

    device_transfers: list[list[DataOpEvent]] = [[] for _ in range(num_devices)]
    for ev in data_op_events:
        if ev.is_transfer and 0 <= ev.dest_device_num < num_devices:
            device_transfers[ev.dest_device_num].append(ev)

    unused: list[UnusedTransfer] = []
    for dev_idx in range(num_devices):
        kernels = device_kernels[dev_idx]
        transfers = device_transfers[dev_idx]
        tgt_idx = 0
        candidates: dict[int, DataOpEvent] = {}

        for tx in transfers:
            # Advance past kernels that ended before this transfer started;
            # each passed kernel may have consumed the staged candidates.
            while tgt_idx < len(kernels) and kernels[tgt_idx].end_time < tx.start_time:
                tgt_idx += 1
                candidates.clear()

            if tgt_idx == len(kernels):
                # No kernel will ever run on this device again.
                unused.append(UnusedTransfer(event=tx, reason="after_last_kernel"))
            elif kernels[tgt_idx].start_time > tx.start_time:
                # The transfer does not overlap a running kernel: it is a
                # candidate for being overwritten before use.
                previous = candidates.get(tx.src_addr)
                if previous is not None:
                    unused.append(UnusedTransfer(event=previous, reason="overwritten"))
                candidates[tx.src_addr] = tx
            else:
                # The transfer overlaps an active kernel; anything staged so
                # far may have been read concurrently, so drop all candidates.
                candidates.clear()
    return unused


def find_unused_transfers_columnar(
    trace: ColumnarTrace,
    num_devices: Optional[int] = None,
) -> list[UnusedTransfer]:
    """Vectorised Algorithm 5 over a columnar trace.

    Findings are identical to :func:`find_unused_transfers` over the object
    events (the reference oracle).  The sequential candidate map decomposes
    into array passes: the kernel cursor of each transfer is a
    ``searchsorted`` over the running maximum of kernel end times; the
    candidate map is cleared exactly when the cursor advances or a transfer
    overlaps a running kernel, so those clearing points cut the transfer
    sequence into *epochs*; and within an epoch a candidate is overwritten
    iff a later candidate in the same epoch shares its source address —
    which one ``lexsort`` by ``(epoch, address, position)`` exposes as
    adjacent rows.  A finding is reported at the position of the transfer
    that triggered it (the overwriting transfer, or the transfer itself for
    the after-last-kernel case), matching the oracle's output order.
    """
    if num_devices is None:
        num_devices = trace.num_devices
    if num_devices < 1:
        raise ValueError("num_devices must be at least 1")

    tmask = trace.transfer_mask()
    dest = trace.do_dest_device_num
    kmask = trace.kernel_mask()
    kernel_device = trace.tgt_device_num[kmask]
    kernel_start = trace.tgt_start_time[kmask]
    kernel_end = trace.tgt_end_time[kmask]

    unused: list[UnusedTransfer] = []
    for dev_idx in range(num_devices):
        tr = np.flatnonzero(tmask & (dest == dev_idx))
        if tr.size == 0:
            continue
        tx_start = trace.do_start_time[tr]
        tx_addr = trace.do_src_addr[tr]

        k_sel = kernel_device == dev_idx
        k_start = kernel_start[k_sel]
        k_end = kernel_end[k_sel]
        num_kernels = k_start.size

        if num_kernels == 0:
            cursor = np.zeros(tr.size, dtype=np.int64)
        else:
            cursor = first_index_reaching(np.maximum.accumulate(k_end), tx_start)
        after_last = cursor == num_kernels
        if num_kernels:
            clamped = np.minimum(cursor, num_kernels - 1)
            is_candidate = ~after_last & (k_start[clamped] > tx_start)
        else:
            is_candidate = np.zeros(tr.size, dtype=bool)
        overlaps_kernel = ~after_last & ~is_candidate

        # Epochs: the candidate map survives between consecutive transfers
        # unless the kernel cursor advanced or the previous transfer
        # overlapped a running kernel (both clear it).
        boundary = np.empty(tr.size, dtype=bool)
        boundary[0] = True
        boundary[1:] = (cursor[1:] != cursor[:-1]) | overlaps_kernel[:-1]
        epoch = np.cumsum(boundary)

        # Overwritten candidates: same (epoch, address), all but the last,
        # each reported when its successor lands.
        cand = np.flatnonzero(is_candidate)
        report_at: list[np.ndarray] = [np.flatnonzero(after_last)]
        found_rows: list[np.ndarray] = [tr[after_last]]
        reasons: list[np.ndarray] = [
            np.full(int(after_last.sum()), False)  # False => "after_last_kernel"
        ]
        if cand.size:
            order = np.lexsort((cand, tx_addr[cand], epoch[cand]))
            e_sorted = epoch[cand][order]
            a_sorted = tx_addr[cand][order]
            p_sorted = cand[order]
            same = (e_sorted[1:] == e_sorted[:-1]) & (a_sorted[1:] == a_sorted[:-1])
            report_at.append(p_sorted[1:][same])
            found_rows.append(tr[p_sorted[:-1][same]])
            reasons.append(np.full(int(same.sum()), True))  # True => "overwritten"

        all_report = np.concatenate(report_at)
        all_rows = np.concatenate(found_rows)
        all_overwritten = np.concatenate(reasons)
        emit = np.argsort(all_report, kind="stable")
        events = trace.data_op_events_at(all_rows[emit])
        for k, event in zip(emit, events):
            unused.append(
                UnusedTransfer(
                    event=event,
                    reason="overwritten" if all_overwritten[k] else "after_last_kernel",
                )
            )
    return unused


def count_unused_transfers(findings: Sequence[UnusedTransfer]) -> int:
    """The "UT" count of Table 1."""
    return len(findings)
