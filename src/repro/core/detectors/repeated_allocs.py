"""Algorithm 3: identify repeated device memory allocations.

A repeated device memory allocation occurs when memory on a target device is
allocated, and subsequently deleted, more than once to accommodate the
mapping of the same variable (Definition 4.3).  Allocation/deletion events
are paired, then grouped by ``(host address, target device, allocation
size)``; the allocation size is part of the key to avoid conflating distinct
variables that happen to reuse the same host address over the program's
lifetime (Section 5.3).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.core.detectors._columns import alloc_delete_pair_rows, group_rows_by_key
from repro.core.detectors.findings import RepeatedAllocationGroup
from repro.events.columnar import ColumnarTrace
from repro.events.records import AllocationPair, DataOpEvent, get_alloc_delete_pairs


def find_repeated_allocations(
    data_op_events: Sequence[DataOpEvent],
    *,
    require_deletion: bool = True,
) -> list[RepeatedAllocationGroup]:
    """Find repeated device memory allocations (Algorithm 3).

    Parameters
    ----------
    data_op_events:
        Data-operation events in chronological order.
    require_deletion:
        Per Definition 4.3 an allocation only counts towards a repeat if it
        was also deleted (allocated *and subsequently deleted* more than
        once).  Setting this to ``False`` also counts a trailing allocation
        that is still live at program exit, which is occasionally useful when
        analysing truncated traces.

    Returns
    -------
    One :class:`RepeatedAllocationGroup` per ``(host address, device, size)``
    key with at least two qualifying allocations, ordered by first allocation.
    """
    pairs = get_alloc_delete_pairs(data_op_events)

    grouped: dict[tuple[int, int, int], list[AllocationPair]] = defaultdict(list)
    order: list[tuple[int, int, int]] = []
    for pair in pairs:
        if require_deletion and pair.delete_event is None:
            continue
        key = (pair.host_addr, pair.device_num, pair.nbytes)
        if key not in grouped:
            order.append(key)
        grouped[key].append(pair)

    groups: list[RepeatedAllocationGroup] = []
    for key in order:
        allocations = grouped[key]
        if len(allocations) < 2:
            continue
        host_addr, device_num, nbytes = key
        groups.append(
            RepeatedAllocationGroup(
                host_addr=host_addr,
                device_num=device_num,
                nbytes=nbytes,
                allocations=tuple(allocations),
            )
        )
    return groups


def find_repeated_allocations_columnar(
    trace: ColumnarTrace,
    *,
    require_deletion: bool = True,
) -> list[RepeatedAllocationGroup]:
    """Vectorised Algorithm 3 over a columnar trace.

    Findings are identical to :func:`find_repeated_allocations` over the
    object events (the reference oracle).  Alloc/delete pairing and the
    ``(host address, device, size)`` grouping both run as array passes;
    :class:`AllocationPair` objects are materialised only for the groups
    that qualify as repeats.
    """
    alloc_rows, delete_rows = alloc_delete_pair_rows(trace)
    if alloc_rows.size == 0:
        return []

    if require_deletion:
        keep = delete_rows >= 0
        alloc_rows = alloc_rows[keep]
        delete_rows = delete_rows[keep]
        if alloc_rows.size == 0:
            return []

    host_addr = trace.do_src_addr[alloc_rows]
    device = trace.do_dest_device_num[alloc_rows]
    nbytes = trace.do_nbytes[alloc_rows]

    member_lists = list(group_rows_by_key(host_addr, device, nbytes, min_size=2))
    if not member_lists:
        return []
    # One bulk materialisation for every pair implicated in any group.
    flat = np.concatenate(member_lists)
    alloc_events = trace.data_op_events_at(alloc_rows[flat])
    flat_deletes = delete_rows[flat]
    delete_events = iter(trace.data_op_events_at(flat_deletes[flat_deletes >= 0]))
    pairs = [
        AllocationPair(
            alloc_event=alloc_events[k],
            delete_event=next(delete_events) if flat_deletes[k] >= 0 else None,
        )
        for k in range(flat.size)
    ]

    groups: list[RepeatedAllocationGroup] = []
    offset = 0
    for members in member_lists:
        allocations = tuple(pairs[offset : offset + members.size])
        offset += members.size
        groups.append(
            RepeatedAllocationGroup(
                host_addr=int(host_addr[members[0]]),
                device_num=int(device[members[0]]),
                nbytes=int(nbytes[members[0]]),
                allocations=allocations,
            )
        )
    return groups


def count_redundant_allocations(groups: Sequence[RepeatedAllocationGroup]) -> int:
    """Total redundant allocations (the "RA" count of Table 1)."""
    return sum(g.num_redundant for g in groups)
