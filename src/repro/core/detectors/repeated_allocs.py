"""Algorithm 3: identify repeated device memory allocations.

A repeated device memory allocation occurs when memory on a target device is
allocated, and subsequently deleted, more than once to accommodate the
mapping of the same variable (Definition 4.3).  Allocation/deletion events
are paired, then grouped by ``(host address, target device, allocation
size)``; the allocation size is part of the key to avoid conflating distinct
variables that happen to reuse the same host address over the program's
lifetime (Section 5.3).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.core.detectors._columns import alloc_delete_pair_rows, group_rows_by_key
from repro.core.detectors._streaming import (
    ColumnBuffer,
    CompositeKeyCounter,
    StreamingAllocPairer,
    StreamingPass,
    merge_uid_buffers,
    run_streaming_pass,
)
from repro.core.detectors.findings import RepeatedAllocationGroup
from repro.events.columnar import ColumnarTrace
from repro.events.protocol import EventStream
from repro.events.records import AllocationPair, DataOpEvent, get_alloc_delete_pairs
from repro.events.stream import materialize_data_op_events


def find_repeated_allocations(
    data_op_events: Sequence[DataOpEvent],
    *,
    require_deletion: bool = True,
) -> list[RepeatedAllocationGroup]:
    """Find repeated device memory allocations (Algorithm 3).

    Parameters
    ----------
    data_op_events:
        Data-operation events in chronological order.
    require_deletion:
        Per Definition 4.3 an allocation only counts towards a repeat if it
        was also deleted (allocated *and subsequently deleted* more than
        once).  Setting this to ``False`` also counts a trailing allocation
        that is still live at program exit, which is occasionally useful when
        analysing truncated traces.

    Returns
    -------
    One :class:`RepeatedAllocationGroup` per ``(host address, device, size)``
    key with at least two qualifying allocations, ordered by first allocation.
    """
    pairs = get_alloc_delete_pairs(data_op_events)

    grouped: dict[tuple[int, int, int], list[AllocationPair]] = defaultdict(list)
    order: list[tuple[int, int, int]] = []
    for pair in pairs:
        if require_deletion and pair.delete_event is None:
            continue
        key = (pair.host_addr, pair.device_num, pair.nbytes)
        if key not in grouped:
            order.append(key)
        grouped[key].append(pair)

    groups: list[RepeatedAllocationGroup] = []
    for key in order:
        allocations = grouped[key]
        if len(allocations) < 2:
            continue
        host_addr, device_num, nbytes = key
        groups.append(
            RepeatedAllocationGroup(
                host_addr=host_addr,
                device_num=device_num,
                nbytes=nbytes,
                allocations=tuple(allocations),
            )
        )
    return groups


def find_repeated_allocations_columnar(
    trace: ColumnarTrace,
    *,
    require_deletion: bool = True,
) -> list[RepeatedAllocationGroup]:
    """Vectorised Algorithm 3 over a columnar trace.

    Findings are identical to :func:`find_repeated_allocations` over the
    object events (the reference oracle).  Alloc/delete pairing and the
    ``(host address, device, size)`` grouping both run as array passes;
    :class:`AllocationPair` objects are materialised only for the groups
    that qualify as repeats.
    """
    alloc_rows, delete_rows = alloc_delete_pair_rows(trace)
    if alloc_rows.size == 0:
        return []

    if require_deletion:
        keep = delete_rows >= 0
        alloc_rows = alloc_rows[keep]
        delete_rows = delete_rows[keep]
        if alloc_rows.size == 0:
            return []

    host_addr = trace.do_src_addr[alloc_rows]
    device = trace.do_dest_device_num[alloc_rows]
    nbytes = trace.do_nbytes[alloc_rows]

    member_lists = list(group_rows_by_key(host_addr, device, nbytes, min_size=2))
    if not member_lists:
        return []
    # One bulk materialisation for every pair implicated in any group.
    flat = np.concatenate(member_lists)
    alloc_events = trace.data_op_events_at(alloc_rows[flat])
    flat_deletes = delete_rows[flat]
    delete_events = iter(trace.data_op_events_at(flat_deletes[flat_deletes >= 0]))
    pairs = [
        AllocationPair(
            alloc_event=alloc_events[k],
            delete_event=next(delete_events) if flat_deletes[k] >= 0 else None,
        )
        for k in range(flat.size)
    ]

    groups: list[RepeatedAllocationGroup] = []
    offset = 0
    for members in member_lists:
        allocations = tuple(pairs[offset : offset + members.size])
        offset += members.size
        groups.append(
            RepeatedAllocationGroup(
                host_addr=int(host_addr[members[0]]),
                device_num=int(device[members[0]]),
                nbytes=int(nbytes[members[0]]),
                allocations=allocations,
            )
        )
    return groups


class RepeatedAllocationPass(StreamingPass):
    """Incremental Algorithm 3: fold pairs, finalize to groups.

    Carry state: the open allocations (a :class:`StreamingAllocPairer`,
    O(live mappings)) and a :class:`CompositeKeyCounter` over the
    ``(host address, device, size)`` mapping keys, holding count and first
    pair per key.  Completed pairs are counted as their deletes arrive;
    pairs of keys that reached two members are kept as position pairs
    (O(findings)) and materialised once at finalize.
    """

    def __init__(self, *, require_deletion: bool = True) -> None:
        self.require_deletion = require_deletion
        self._pairer = StreamingAllocPairer(
            alloc_cols=("src_addr", "dest_device_num", "nbytes")
        )
        self._counter = CompositeKeyCounter()
        self._alloc = ColumnBuffer()
        self._delete = ColumnBuffer()
        self._group = ColumnBuffer()
        self._host = ColumnBuffer()
        self._dev = ColumnBuffer()
        self._nbytes = ColumnBuffer()

    def _count(self, pairs) -> None:
        if pairs.size == 0:
            return
        host = pairs.alloc["src_addr"]
        dev = pairs.alloc["dest_device_num"]
        nbytes = pairs.alloc["nbytes"]
        fold = self._counter.fold(
            (host, dev, nbytes), pairs.alloc_gpos, payload=pairs.delete_gpos
        )
        qualified = fold.total_count[fold.inverse] >= 2
        if qualified.any():
            self._alloc.append(pairs.alloc_gpos[qualified])
            self._delete.append(pairs.delete_gpos[qualified])
            self._group.append(fold.key_uid[fold.inverse][qualified])
            self._host.append(host[qualified])
            self._dev.append(dev[qualified])
            self._nbytes.append(nbytes[qualified])
        crossed = (fold.prior_count == 1) & (fold.total_count >= 2)
        if crossed.any():
            # Recover the key's single retained pair — the one counted
            # while the key was still a singleton (NOT the post-merge
            # minimum: pairs complete in delete order, so this batch's
            # pair may predate the retained one).
            self._alloc.append(fold.prior_first_gpos[crossed])
            self._delete.append(fold.prior_payload[crossed])
            self._group.append(fold.key_uid[crossed])
            _, first_row_of_key = np.unique(fold.inverse, return_index=True)
            representative = first_row_of_key[np.flatnonzero(crossed)]
            self._host.append(host[representative])
            self._dev.append(dev[representative])
            self._nbytes.append(nbytes[representative])

    def fold(self, batch, offset: int) -> None:
        self._count(self._pairer.fold(batch, offset))

    def merge(self, other: "RepeatedAllocationPass") -> None:
        """Absorb a pass folded over the immediately following row range.

        Allocations left open by this partition stitch to ``other``'s
        pending deletes first; the key tables then union (with uid
        remapping and retained-singleton promotion, as in the duplicate
        pass), and finally the stitched pairs — invisible to both sides'
        folds — are counted against the merged table, reusing the exact
        qualification/crossing logic of a normal fold.
        """
        stitched = self._pairer.merge(other._pairer)
        km = self._counter.merge(other._counter)
        self._group = merge_uid_buffers(km, self._group, other._group)
        self._alloc.absorb(other._alloc)
        self._delete.absorb(other._delete)
        self._host.absorb(other._host)
        self._dev.absorb(other._dev)
        self._nbytes.absorb(other._nbytes)
        if km.promoted_gpos.size:
            self._alloc.append(km.promoted_gpos)
            self._delete.append(km.promoted_payload)
            self._host.append(km.promoted_keys[0])
            self._dev.append(km.promoted_keys[1])
            self._nbytes.append(km.promoted_keys[2])
        self._count(stitched)

    def finalize(self, stream) -> list[RepeatedAllocationGroup]:
        if not self.require_deletion:
            self._count(self._pairer.finalize())

        alloc_gpos = self._alloc.concat()
        if alloc_gpos.size == 0:
            return []
        delete_gpos = self._delete.concat()
        group_uid = self._group.concat()
        host = self._host.concat()
        dev = self._dev.concat()
        nbytes = self._nbytes.concat()

        order = np.lexsort((alloc_gpos, group_uid))
        needed = np.concatenate([alloc_gpos, delete_gpos[delete_gpos >= 0]])
        events = materialize_data_op_events(stream, needed)

        # Pairs grouped by stable key uid, alloc-ordered inside each group;
        # groups emitted in order of their earliest counted pair, matching
        # the oracle's first-qualifying-pair ordering.
        keyed: list[tuple[int, RepeatedAllocationGroup]] = []
        sorted_group = group_uid[order]
        boundaries = np.flatnonzero(sorted_group[1:] != sorted_group[:-1]) + 1
        for member_rows in np.split(order, boundaries):
            allocations = tuple(
                AllocationPair(
                    alloc_event=events[int(alloc_gpos[i])],
                    delete_event=(
                        events[int(delete_gpos[i])] if delete_gpos[i] >= 0 else None
                    ),
                )
                for i in member_rows
            )
            head = member_rows[0]
            keyed.append((
                int(alloc_gpos[head]),
                RepeatedAllocationGroup(
                    host_addr=int(host[head]),
                    device_num=int(dev[head]),
                    nbytes=int(nbytes[head]),
                    allocations=allocations,
                ),
            ))
        keyed.sort(key=lambda pair: pair[0])
        return [group for _, group in keyed]


def find_repeated_allocations_streaming(
    stream: EventStream,
    *,
    require_deletion: bool = True,
) -> list[RepeatedAllocationGroup]:
    """Incremental Algorithm 3 over an event stream."""
    return run_streaming_pass(
        RepeatedAllocationPass(require_deletion=require_deletion), stream
    )


def count_redundant_allocations(groups: Sequence[RepeatedAllocationGroup]) -> int:
    """Total redundant allocations (the "RA" count of Table 1)."""
    return sum(g.num_redundant for g in groups)
