"""Algorithm 3: identify repeated device memory allocations.

A repeated device memory allocation occurs when memory on a target device is
allocated, and subsequently deleted, more than once to accommodate the
mapping of the same variable (Definition 4.3).  Allocation/deletion events
are paired, then grouped by ``(host address, target device, allocation
size)``; the allocation size is part of the key to avoid conflating distinct
variables that happen to reuse the same host address over the program's
lifetime (Section 5.3).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.core.detectors.findings import RepeatedAllocationGroup
from repro.events.records import AllocationPair, DataOpEvent, get_alloc_delete_pairs


def find_repeated_allocations(
    data_op_events: Sequence[DataOpEvent],
    *,
    require_deletion: bool = True,
) -> list[RepeatedAllocationGroup]:
    """Find repeated device memory allocations (Algorithm 3).

    Parameters
    ----------
    data_op_events:
        Data-operation events in chronological order.
    require_deletion:
        Per Definition 4.3 an allocation only counts towards a repeat if it
        was also deleted (allocated *and subsequently deleted* more than
        once).  Setting this to ``False`` also counts a trailing allocation
        that is still live at program exit, which is occasionally useful when
        analysing truncated traces.

    Returns
    -------
    One :class:`RepeatedAllocationGroup` per ``(host address, device, size)``
    key with at least two qualifying allocations, ordered by first allocation.
    """
    pairs = get_alloc_delete_pairs(data_op_events)

    grouped: dict[tuple[int, int, int], list[AllocationPair]] = defaultdict(list)
    order: list[tuple[int, int, int]] = []
    for pair in pairs:
        if require_deletion and pair.delete_event is None:
            continue
        key = (pair.host_addr, pair.device_num, pair.nbytes)
        if key not in grouped:
            order.append(key)
        grouped[key].append(pair)

    groups: list[RepeatedAllocationGroup] = []
    for key in order:
        allocations = grouped[key]
        if len(allocations) < 2:
            continue
        host_addr, device_num, nbytes = key
        groups.append(
            RepeatedAllocationGroup(
                host_addr=host_addr,
                device_num=device_num,
                nbytes=nbytes,
                allocations=tuple(allocations),
            )
        )
    return groups


def count_redundant_allocations(groups: Sequence[RepeatedAllocationGroup]) -> int:
    """Total redundant allocations (the "RA" count of Table 1)."""
    return sum(g.num_redundant for g in groups)
