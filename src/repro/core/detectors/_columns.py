"""Shared column operations for the vectorised detector fast paths.

Everything here is representation-level plumbing the five detectors have in
common: composite-key grouping in first-occurrence order and the
columnar alloc/delete pairing that Algorithms 3 and 4
both start from.  The helpers return *row indices* into the columnar store;
the detectors materialise object events only for the rows that end up in
findings, which is what makes the fast paths fast.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.events.columnar import CODE_ALLOC, CODE_DELETE, ColumnarTrace


def key_ids(*columns: np.ndarray) -> np.ndarray:
    """Factorise composite keys into compact integer ids (equal key ⇔ equal id).

    Column by column, each value set is interned with ``np.unique`` and the
    running ids are combined arithmetically; re-compacting after every
    column keeps the intermediate products below ``n²``, so the arithmetic
    never overflows ``int64``.  Integer factorisation is what makes the
    grouping helpers fast — sorting an ``int64`` key array is several times
    cheaper than sorting the equivalent structured (void) array.
    """
    _, ids = np.unique(columns[0], return_inverse=True)
    for col in columns[1:]:
        _, inv = np.unique(col, return_inverse=True)
        width = int(inv.max()) + 1 if inv.size else 1
        _, ids = np.unique(ids * width + inv, return_inverse=True)
    return ids


def group_rows_by_key(*columns: np.ndarray, min_size: int = 1) -> Iterator[np.ndarray]:
    """Group row indices ``0..n-1`` by composite key.

    Yields one index array per distinct key with at least ``min_size``
    members, in order of each key's first occurrence; indices inside a
    group are ascending (i.e. the original — chronological — order is
    preserved), matching how the object detectors build their
    ``dict``-of-``list`` groupings.  Detectors that only care about keys
    with two or more members pass ``min_size=2``, which skips the (usually
    overwhelming) singleton keys without building an array for each.
    """
    n = len(columns[0])
    if n == 0:
        return
    ids = key_ids(*columns)
    if min_size > 1:
        counts = np.bincount(ids)
        rows = np.flatnonzero(counts[ids] >= min_size)
        if rows.size == 0:
            return
        ids = ids[rows]
    else:
        rows = np.arange(n, dtype=np.int64)
    order = np.argsort(ids, kind="stable")
    sorted_rows = rows[order]
    sorted_ids = ids[order]
    boundaries = np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
    groups = np.split(sorted_rows, boundaries)
    first_occurrence = np.fromiter((g[0] for g in groups), dtype=np.int64, count=len(groups))
    for gi in np.argsort(first_occurrence, kind="stable"):
        yield groups[gi]


def first_index_reaching(sorted_running_max: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """First index whose running maximum reaches each threshold.

    ``searchsorted`` over ``np.maximum.accumulate(values)`` gives, for every
    threshold ``x``, the smallest ``j`` with ``values[j] >= x`` — exactly the
    resting point of the object detectors' "advance while end < start"
    cursor (the cursor never revisits an index its threshold already
    rejected, and thresholds are non-decreasing).
    """
    return np.searchsorted(sorted_running_max, thresholds, side="left")


def alloc_delete_pair_rows(trace: ColumnarTrace) -> tuple[np.ndarray, np.ndarray]:
    """Columnar twin of :func:`repro.events.records.get_alloc_delete_pairs`.

    Returns ``(alloc_rows, delete_rows)``: the row indices of every ALLOC
    event in chronological order and, aligned with them, the row index of
    the matching DELETE (``-1`` when the allocation is never deleted).

    The common case — no device address is re-allocated while still live,
    which :func:`repro.events.validation.validate_trace` enforces — is fully
    vectorised: within each ``(device, address)`` key the events alternate,
    so a DELETE pairs with the immediately preceding event of its key if
    and only if that event is an ALLOC.  Nested allocations (possible only
    in unvalidated traces) fall back to the exact stack-matching loop.
    """
    kind = trace.do_kind
    sel = np.flatnonzero((kind == CODE_ALLOC) | (kind == CODE_DELETE))
    empty = np.empty(0, dtype=np.int64)
    if sel.size == 0:
        return empty, empty

    is_alloc = kind[sel] == CODE_ALLOC
    alloc_rows = sel[is_alloc].astype(np.int64)
    if alloc_rows.size == 0:
        return empty, empty
    partners = np.full(alloc_rows.size, -1, dtype=np.int64)

    dev = trace.do_dest_device_num[sel]
    addr = trace.do_dest_addr[sel]
    gid = key_ids(dev, addr)

    order = np.argsort(gid, kind="stable")
    gid_sorted = gid[order]
    alloc_sorted = is_alloc[order]
    same_group = gid_sorted[1:] == gid_sorted[:-1]

    if not np.any(alloc_sorted[1:] & alloc_sorted[:-1] & same_group):
        # Alternation holds in every group: vectorised pairing.
        alloc_rank = np.full(sel.size, -1, dtype=np.int64)
        alloc_rank[is_alloc] = np.arange(alloc_rows.size)
        rank_sorted = alloc_rank[order]
        pair_at = np.flatnonzero(same_group & alloc_sorted[:-1] & ~alloc_sorted[1:])
        partners[rank_sorted[pair_at]] = sel[order[pair_at + 1]]
        return alloc_rows, partners

    # Nested allocations: exact stack semantics on primitive columns.
    open_allocs: dict[tuple[int, int], list[int]] = {}
    rank_of_row: dict[int, int] = {int(row): i for i, row in enumerate(alloc_rows)}
    dev_list = dev.tolist()
    addr_list = addr.tolist()
    alloc_list = is_alloc.tolist()
    sel_list = sel.tolist()
    for i, row in enumerate(sel_list):
        key = (dev_list[i], addr_list[i])
        if alloc_list[i]:
            open_allocs.setdefault(key, []).append(row)
        else:
            stack = open_allocs.get(key)
            if not stack:
                continue
            partners[rank_of_row[stack.pop()]] = row
    return alloc_rows, partners
