"""Finding types produced by the detection algorithms.

Every finding exposes ``removable_events()``: the concrete trace events whose
cost disappears if the programmer fixes the issue (e.g. by extending a
mapping's lifetime with a ``target data`` region).  The
optimization-potential estimator unions those events across all findings so
that an event implicated by several patterns — a duplicate transfer that is
also one leg of a round trip, say — is only counted once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.events.records import AllocationPair, DataOpEvent


def _total_duration(events: Iterable[DataOpEvent]) -> float:
    return sum(e.duration for e in events)


def _total_bytes(events: Iterable[DataOpEvent]) -> int:
    return sum(e.nbytes for e in events)


@dataclass(frozen=True)
class DuplicateTransferGroup:
    """All transfers of one payload (hash) received by one device.

    The first receipt is legitimate; every subsequent receipt is redundant.
    """

    content_hash: int
    dest_device_num: int
    events: tuple[DataOpEvent, ...]

    def __post_init__(self) -> None:
        if len(self.events) < 2:
            raise ValueError("a duplicate group needs at least two transfer events")

    @property
    def num_transfers(self) -> int:
        return len(self.events)

    @property
    def num_redundant(self) -> int:
        return len(self.events) - 1

    @property
    def nbytes(self) -> int:
        return self.events[0].nbytes

    def removable_events(self) -> Iterator[DataOpEvent]:
        """Every receipt after the first."""
        return iter(self.events[1:])

    @property
    def wasted_time(self) -> float:
        return _total_duration(self.events[1:])

    @property
    def wasted_bytes(self) -> int:
        return _total_bytes(self.events[1:])


@dataclass(frozen=True)
class RoundTripPair:
    """One completed round trip: ``tx_event`` leaves device A, ``rx_event`` returns."""

    tx_event: DataOpEvent
    rx_event: DataOpEvent

    @property
    def content_hash(self) -> int:
        return self.tx_event.content_hash  # type: ignore[return-value]

    def removable_events(self) -> Iterator[DataOpEvent]:
        """Both legs: keeping the data resident removes the out and back copies."""
        yield self.tx_event
        yield self.rx_event

    @property
    def wasted_time(self) -> float:
        return self.tx_event.duration + self.rx_event.duration

    @property
    def wasted_bytes(self) -> int:
        return self.tx_event.nbytes + self.rx_event.nbytes


@dataclass(frozen=True)
class RoundTripGroup:
    """Round trips grouped by payload hash and the two devices involved."""

    content_hash: int
    src_device_num: int
    dest_device_num: int
    trips: tuple[RoundTripPair, ...]

    def __post_init__(self) -> None:
        if not self.trips:
            raise ValueError("a round-trip group needs at least one trip")

    @property
    def num_trips(self) -> int:
        return len(self.trips)

    def removable_events(self) -> Iterator[DataOpEvent]:
        for trip in self.trips:
            yield from trip.removable_events()

    @property
    def wasted_time(self) -> float:
        return sum(t.wasted_time for t in self.trips)

    @property
    def wasted_bytes(self) -> int:
        return sum(t.wasted_bytes for t in self.trips)


@dataclass(frozen=True)
class RepeatedAllocationGroup:
    """Repeated allocation/deletion of the same variable on the same device."""

    host_addr: int
    device_num: int
    nbytes: int
    allocations: tuple[AllocationPair, ...]

    def __post_init__(self) -> None:
        if len(self.allocations) < 2:
            raise ValueError("a repeated-allocation group needs at least two allocations")

    @property
    def num_allocations(self) -> int:
        return len(self.allocations)

    @property
    def num_redundant(self) -> int:
        return len(self.allocations) - 1

    def removable_events(self) -> Iterator[DataOpEvent]:
        """Allocations after the first and deletions before the last.

        Hoisting the mapping keeps one allocation (the first) live until one
        final deletion (the last); everything in between is overhead.
        """
        for pair in self.allocations[1:]:
            yield pair.alloc_event
        for pair in self.allocations[:-1]:
            if pair.delete_event is not None:
                yield pair.delete_event

    @property
    def wasted_time(self) -> float:
        return _total_duration(self.removable_events())


@dataclass(frozen=True)
class UnusedAllocation:
    """An allocation whose lifetime never overlapped a kernel on its device."""

    pair: AllocationPair

    @property
    def device_num(self) -> int:
        return self.pair.device_num

    @property
    def nbytes(self) -> int:
        return self.pair.nbytes

    def removable_events(self) -> Iterator[DataOpEvent]:
        yield self.pair.alloc_event
        if self.pair.delete_event is not None:
            yield self.pair.delete_event

    @property
    def wasted_time(self) -> float:
        return _total_duration(self.removable_events())


@dataclass(frozen=True)
class UnusedTransfer:
    """A transfer whose payload could not have been read by any kernel."""

    event: DataOpEvent
    #: why the transfer is unused: "overwritten" or "after_last_kernel"
    reason: str = "overwritten"

    def __post_init__(self) -> None:
        if self.reason not in ("overwritten", "after_last_kernel"):
            raise ValueError(f"unknown unused-transfer reason {self.reason!r}")

    @property
    def device_num(self) -> int:
        return self.event.dest_device_num

    @property
    def nbytes(self) -> int:
        return self.event.nbytes

    def removable_events(self) -> Iterator[DataOpEvent]:
        yield self.event

    @property
    def wasted_time(self) -> float:
        return self.event.duration
