"""Algorithm 2: identify round-trip data transfers.

A round-trip data transfer occurs when device A sends data to device B and
later receives the same unmodified data back from device B (Definition 4.2).
Matching is content based: the return leg carries the same hash as the
outbound leg.

The implementation follows the paper's Algorithm 2: a map of received
transfers keyed by ``(hash, receiving device)`` holding queues in
chronological order; for every transfer event we check whether its *source*
device later receives the same hash, and we dequeue the outbound event from
the received map so that it cannot also be counted as the completion of some
other trip.  One guard is added on top of the published pseudocode: a
candidate return leg must *start after the outbound leg ended* — without it,
a pathological trace in which the same payload reaches a device twice before
ever travelling back could match a return leg that precedes its outbound
leg.  The guard can only remove false positives, never add matches.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Sequence

from repro.core.detectors.findings import RoundTripGroup, RoundTripPair
from repro.events.records import DataOpEvent


def find_round_trips(
    data_op_events: Sequence[DataOpEvent],
    *,
    require_chronological: bool = True,
) -> list[RoundTripGroup]:
    """Find round-trip data transfers (Algorithm 2).

    Returns one :class:`RoundTripGroup` per ``(hash, initial device,
    intermediate device)`` triple, in the order the first trip of each group
    completed.
    """
    transfers = [e for e in data_op_events if e.is_transfer]
    for event in transfers:
        if event.content_hash is None:
            raise ValueError(f"transfer event seq={event.seq} is missing its content hash")

    # Map of received transfers: (hash, receiving device) -> queue of events.
    received: dict[tuple[int, int], deque[DataOpEvent]] = defaultdict(deque)
    for event in transfers:
        received[(event.content_hash, event.dest_device_num)].append(event)

    round_trips: dict[tuple[int, int, int], list[RoundTripPair]] = {}
    group_order: list[tuple[int, int, int]] = []

    for tx_event in transfers:
        rx_key = (tx_event.content_hash, tx_event.src_device_num)
        queue = received.get(rx_key)
        if not queue:
            # Not a round trip: the data never travels back to the sender.
            continue

        rx_event = queue[0]
        if require_chronological and rx_event.start_time < tx_event.end_time:
            # The oldest candidate return leg predates this outbound leg;
            # it cannot be the completion of this trip.
            continue

        trip_key = (
            tx_event.content_hash,
            tx_event.src_device_num,
            tx_event.dest_device_num,
        )
        if trip_key not in round_trips:
            round_trips[trip_key] = []
            group_order.append(trip_key)
        round_trips[trip_key].append(RoundTripPair(tx_event=tx_event, rx_event=rx_event))

        # Remove the outbound event from the received map so it is not later
        # counted as the completion of another transfer's round trip.
        tx_key = (tx_event.content_hash, tx_event.dest_device_num)
        tx_queue = received.get(tx_key)
        if tx_queue:
            tx_queue.popleft()

    groups: list[RoundTripGroup] = []
    for key in group_order:
        content_hash, src_device_num, dest_device_num = key
        groups.append(
            RoundTripGroup(
                content_hash=content_hash,
                src_device_num=src_device_num,
                dest_device_num=dest_device_num,
                trips=tuple(round_trips[key]),
            )
        )
    return groups


def count_round_trips(groups: Sequence[RoundTripGroup]) -> int:
    """Total number of completed round trips (the "RT" count of Table 1)."""
    return sum(g.num_trips for g in groups)
