"""Algorithm 2: identify round-trip data transfers.

A round-trip data transfer occurs when device A sends data to device B and
later receives the same unmodified data back from device B (Definition 4.2).
Matching is content based: the return leg carries the same hash as the
outbound leg.

The implementation follows the paper's Algorithm 2: a map of received
transfers keyed by ``(hash, receiving device)`` holding queues in
chronological order; for every transfer event we check whether its *source*
device later receives the same hash, and we dequeue the outbound event from
the received map so that it cannot also be counted as the completion of some
other trip.  One guard is added on top of the published pseudocode: a
candidate return leg must *start after the outbound leg ended* — without it,
a pathological trace in which the same payload reaches a device twice before
ever travelling back could match a return leg that precedes its outbound
leg.  The guard can only remove false positives, never add matches.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Sequence

import numpy as np

from repro.core.detectors._streaming import (
    ColumnBuffer,
    StreamingPass,
    first_missing_hash_seq,
    run_streaming_pass,
)
from repro.core.detectors.findings import RoundTripGroup, RoundTripPair
from repro.events.columnar import ColumnarTrace
from repro.events.protocol import EventStream
from repro.events.records import DataOpEvent
from repro.events.stream import materialize_data_op_events


def find_round_trips(
    data_op_events: Sequence[DataOpEvent],
    *,
    require_chronological: bool = True,
) -> list[RoundTripGroup]:
    """Find round-trip data transfers (Algorithm 2).

    Returns one :class:`RoundTripGroup` per ``(hash, initial device,
    intermediate device)`` triple, in the order the first trip of each group
    completed.
    """
    transfers = [e for e in data_op_events if e.is_transfer]
    for event in transfers:
        if event.content_hash is None:
            raise ValueError(f"transfer event seq={event.seq} is missing its content hash")

    # Map of received transfers: (hash, receiving device) -> queue of events.
    received: dict[tuple[int, int], deque[DataOpEvent]] = defaultdict(deque)
    for event in transfers:
        received[(event.content_hash, event.dest_device_num)].append(event)

    round_trips: dict[tuple[int, int, int], list[RoundTripPair]] = {}
    group_order: list[tuple[int, int, int]] = []

    for tx_event in transfers:
        rx_key = (tx_event.content_hash, tx_event.src_device_num)
        queue = received.get(rx_key)
        if not queue:
            # Not a round trip: the data never travels back to the sender.
            continue

        rx_event = queue[0]
        if require_chronological and rx_event.start_time < tx_event.end_time:
            # The oldest candidate return leg predates this outbound leg;
            # it cannot be the completion of this trip.
            continue

        trip_key = (
            tx_event.content_hash,
            tx_event.src_device_num,
            tx_event.dest_device_num,
        )
        if trip_key not in round_trips:
            round_trips[trip_key] = []
            group_order.append(trip_key)
        round_trips[trip_key].append(RoundTripPair(tx_event=tx_event, rx_event=rx_event))

        # Remove the outbound event from the received map so it is not later
        # counted as the completion of another transfer's round trip.
        tx_key = (tx_event.content_hash, tx_event.dest_device_num)
        tx_queue = received.get(tx_key)
        if tx_queue:
            tx_queue.popleft()

    groups: list[RoundTripGroup] = []
    for key in group_order:
        content_hash, src_device_num, dest_device_num = key
        groups.append(
            RoundTripGroup(
                content_hash=content_hash,
                src_device_num=src_device_num,
                dest_device_num=dest_device_num,
                trips=tuple(round_trips[key]),
            )
        )
    return groups


def find_round_trips_columnar(
    trace: ColumnarTrace,
    *,
    require_chronological: bool = True,
) -> list[RoundTripGroup]:
    """Vectorised Algorithm 2 over a columnar trace.

    The queue semantics of the object implementation (the reference oracle)
    are inherently sequential — a recorded trip pops the oldest receipt of
    its outbound key, which changes what later transfers can match — so the
    match loop itself cannot be replaced by array ops without changing the
    findings.  What *can* be vectorised is the work that dominates: the
    ``(hash, device)`` keys of all transfers are interned into integer ids
    with one ``np.unique`` pass, per-key receipt queues become slices of one
    argsort, and the Python loop then only visits *candidate* transfers —
    those whose payload is ever received back by their source device.  A
    transfer with no matching receipt key has no side effects in the object
    algorithm (no trip, no pop), so skipping it is exact; in realistic
    traces candidates are a small fraction of all transfers.
    """
    tr = np.flatnonzero(trace.transfer_mask())
    if tr.size == 0:
        return []
    missing = ~trace.do_has_content_hash[tr]
    if missing.any():
        seq = int(trace.do_seq[tr[np.flatnonzero(missing)[0]]])
        raise ValueError(f"transfer event seq={seq} is missing its content hash")

    group_order, round_trips = _match_trips(
        trace.do_content_hash[tr],
        trace.do_src_device_num[tr],
        trace.do_dest_device_num[tr],
        trace.do_start_time[tr],
        trace.do_end_time[tr],
        require_chronological=require_chronological,
    )

    # One bulk materialisation for every leg of every recorded trip.
    legs: list[int] = []
    for key in group_order:
        for i, j in round_trips[key]:
            legs.append(i)
            legs.append(j)
    events = trace.data_op_events_at(tr[np.asarray(legs, dtype=np.int64)])
    return _build_groups(group_order, round_trips, lambda cursor: events[cursor])


def _match_trips(
    hashes: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    start: np.ndarray,
    end: np.ndarray,
    *,
    require_chronological: bool,
) -> tuple[list[tuple[int, int, int]], dict[tuple[int, int, int], list[tuple[int, int]]]]:
    """The queue-matching core of Algorithm 2 over transfer leg arrays.

    Returns the trip-group keys in first-completion order and, per key, the
    recorded trips as ``(outbound, return)`` index pairs into the inputs.
    Shared by the columnar fast path (indices into the transfer subset) and
    the streaming variant (global positions).

    Only *candidate* transfers — those whose payload is ever received back
    by their source device — enter the Python loop, and only their columns
    are unboxed to lists; the full-width arrays (``start`` for arbitrary
    return legs, the receipt queue) stay NumPy, so memory stays O(transfers
    × 8 B) instead of O(transfers × boxed objects).
    """
    # Intern the (hash, device) keys: hashes are factorised once, devices
    # are small, so the composite is exact int64 arithmetic; one pooled
    # ``np.unique`` compacts the rx/tx key spaces together.
    _, hash_id = np.unique(hashes, return_inverse=True)
    width = int(max(int(src.max()), int(dst.max()))) + 1
    pooled = np.concatenate([
        hash_id * width + src.astype(np.int64),
        hash_id * width + dst.astype(np.int64),
    ])
    uniq, inv = np.unique(pooled, return_inverse=True)
    del pooled
    n = hashes.size
    rx_id, tx_id = inv[:n], inv[n:]
    num_keys = uniq.size

    # Receipt queues: for key k, positions queue_order[queue_start[k] + head].
    queue_order = np.argsort(tx_id, kind="stable")
    queue_len = np.bincount(tx_id, minlength=num_keys)
    queue_start = np.concatenate(([0], np.cumsum(queue_len)[:-1]))

    # A transfer is a candidate iff some receipt carries its (hash, src) key.
    candidates = np.flatnonzero((queue_len > 0)[rx_id])

    cand_end = end[candidates].tolist()
    cand_hash = hashes[candidates].tolist()
    cand_src = src[candidates].tolist()
    cand_dst = dst[candidates].tolist()
    cand_rx = rx_id[candidates].tolist()
    cand_tx = tx_id[candidates].tolist()
    qstart_list = queue_start.tolist()
    len_list = queue_len.tolist()
    heads = [0] * num_keys

    round_trips: dict[tuple[int, int, int], list[tuple[int, int]]] = {}
    group_order: list[tuple[int, int, int]] = []

    for k, i in enumerate(candidates.tolist()):
        rx_key = cand_rx[k]
        head = heads[rx_key]
        if head >= len_list[rx_key]:
            continue  # every receipt of this key has been consumed
        j = int(queue_order[qstart_list[rx_key] + head])
        if require_chronological and start[j] < cand_end[k]:
            continue

        trip_key = (cand_hash[k], cand_src[k], cand_dst[k])
        trips = round_trips.get(trip_key)
        if trips is None:
            trips = round_trips[trip_key] = []
            group_order.append(trip_key)
        trips.append((i, j))

        tx_key = cand_tx[k]
        if heads[tx_key] < len_list[tx_key]:
            heads[tx_key] += 1  # popleft: the outbound leg is consumed

    return group_order, round_trips


def _build_groups(group_order, round_trips, event_at) -> list[RoundTripGroup]:
    groups: list[RoundTripGroup] = []
    cursor = 0
    for key in group_order:
        content_hash, src_device_num, dest_device_num = key
        trips = []
        for _ in round_trips[key]:
            trips.append(
                RoundTripPair(tx_event=event_at(cursor), rx_event=event_at(cursor + 1))
            )
            cursor += 2
        groups.append(
            RoundTripGroup(
                content_hash=content_hash,
                src_device_num=src_device_num,
                dest_device_num=dest_device_num,
                trips=tuple(trips),
            )
        )
    return groups


class RoundTripPass(StreamingPass):
    """Incremental Algorithm 2: fold legs, match at finalize.

    A round trip's return leg typically arrives long after its outbound
    leg, and the queue semantics make *every* transfer a potential receipt
    for a later outbound leg — so the carry here is inherently the pending
    legs themselves.  They are folded shard by shard into six flat arrays
    (hash, devices, start/end, position): ~40 bytes per transfer and no
    Python objects, versus the full event record either batch path holds
    in memory.  The match loop runs once at finalize over the compact
    arrays, and only the legs of recorded trips are materialised, in one
    targeted pass over the shards that contain them.
    """

    def __init__(self, *, require_chronological: bool = True) -> None:
        self.require_chronological = require_chronological
        self._hash = ColumnBuffer()
        self._src = ColumnBuffer()
        self._dst = ColumnBuffer()
        self._start = ColumnBuffer()
        self._end = ColumnBuffer()
        self._gpos = ColumnBuffer()

    def fold(self, batch, offset: int) -> None:
        tr = np.flatnonzero(batch.transfer_mask())
        if tr.size == 0:
            return
        bad_seq = first_missing_hash_seq(batch, tr)
        if bad_seq is not None:
            raise ValueError(
                f"transfer event seq={bad_seq} is missing its content hash"
            )
        self._hash.append(batch.do_content_hash[tr])
        self._src.append(batch.do_src_device_num[tr])
        self._dst.append(batch.do_dest_device_num[tr])
        self._start.append(batch.do_start_time[tr])
        self._end.append(batch.do_end_time[tr])
        self._gpos.append(offset + tr)

    def merge(self, other: "RoundTripPass") -> None:
        """Join the pending legs of a pass folded over the following range.

        The carry *is* the pending legs (matching happens only at
        finalize), so merging is concatenation — this partition's legs
        precede ``other``'s chronologically, which is all the finalize-time
        queue matching needs.
        """
        self._hash.absorb(other._hash)
        self._src.absorb(other._src)
        self._dst.absorb(other._dst)
        self._start.absorb(other._start)
        self._end.absorb(other._end)
        self._gpos.absorb(other._gpos)

    def finalize(self, stream) -> list[RoundTripGroup]:
        if self._gpos.size == 0:
            return []
        gpos = self._gpos.concat()
        group_order, round_trips = _match_trips(
            self._hash.concat(),
            self._src.concat(),
            self._dst.concat(),
            self._start.concat(),
            self._end.concat(),
            require_chronological=self.require_chronological,
        )

        legs: list[int] = []
        for key in group_order:
            for i, j in round_trips[key]:
                legs.append(int(gpos[i]))
                legs.append(int(gpos[j]))
        events = materialize_data_op_events(stream, np.asarray(legs, dtype=np.int64))
        return _build_groups(group_order, round_trips, lambda cursor: events[legs[cursor]])


def find_round_trips_streaming(
    stream: EventStream,
    *,
    require_chronological: bool = True,
) -> list[RoundTripGroup]:
    """Incremental Algorithm 2 over an event stream."""
    return run_streaming_pass(
        RoundTripPass(require_chronological=require_chronological), stream
    )


def count_round_trips(groups: Sequence[RoundTripGroup]) -> int:
    """Total number of completed round trips (the "RT" count of Table 1)."""
    return sum(g.num_trips for g in groups)
