"""Algorithm 2: identify round-trip data transfers.

A round-trip data transfer occurs when device A sends data to device B and
later receives the same unmodified data back from device B (Definition 4.2).
Matching is content based: the return leg carries the same hash as the
outbound leg.

The implementation follows the paper's Algorithm 2: a map of received
transfers keyed by ``(hash, receiving device)`` holding queues in
chronological order; for every transfer event we check whether its *source*
device later receives the same hash, and we dequeue the outbound event from
the received map so that it cannot also be counted as the completion of some
other trip.  One guard is added on top of the published pseudocode: a
candidate return leg must *start after the outbound leg ended* — without it,
a pathological trace in which the same payload reaches a device twice before
ever travelling back could match a return leg that precedes its outbound
leg.  The guard can only remove false positives, never add matches.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Sequence

import numpy as np

from repro.core.detectors._columns import intern_keys
from repro.core.detectors.findings import RoundTripGroup, RoundTripPair
from repro.events.columnar import ColumnarTrace
from repro.events.records import DataOpEvent


def find_round_trips(
    data_op_events: Sequence[DataOpEvent],
    *,
    require_chronological: bool = True,
) -> list[RoundTripGroup]:
    """Find round-trip data transfers (Algorithm 2).

    Returns one :class:`RoundTripGroup` per ``(hash, initial device,
    intermediate device)`` triple, in the order the first trip of each group
    completed.
    """
    transfers = [e for e in data_op_events if e.is_transfer]
    for event in transfers:
        if event.content_hash is None:
            raise ValueError(f"transfer event seq={event.seq} is missing its content hash")

    # Map of received transfers: (hash, receiving device) -> queue of events.
    received: dict[tuple[int, int], deque[DataOpEvent]] = defaultdict(deque)
    for event in transfers:
        received[(event.content_hash, event.dest_device_num)].append(event)

    round_trips: dict[tuple[int, int, int], list[RoundTripPair]] = {}
    group_order: list[tuple[int, int, int]] = []

    for tx_event in transfers:
        rx_key = (tx_event.content_hash, tx_event.src_device_num)
        queue = received.get(rx_key)
        if not queue:
            # Not a round trip: the data never travels back to the sender.
            continue

        rx_event = queue[0]
        if require_chronological and rx_event.start_time < tx_event.end_time:
            # The oldest candidate return leg predates this outbound leg;
            # it cannot be the completion of this trip.
            continue

        trip_key = (
            tx_event.content_hash,
            tx_event.src_device_num,
            tx_event.dest_device_num,
        )
        if trip_key not in round_trips:
            round_trips[trip_key] = []
            group_order.append(trip_key)
        round_trips[trip_key].append(RoundTripPair(tx_event=tx_event, rx_event=rx_event))

        # Remove the outbound event from the received map so it is not later
        # counted as the completion of another transfer's round trip.
        tx_key = (tx_event.content_hash, tx_event.dest_device_num)
        tx_queue = received.get(tx_key)
        if tx_queue:
            tx_queue.popleft()

    groups: list[RoundTripGroup] = []
    for key in group_order:
        content_hash, src_device_num, dest_device_num = key
        groups.append(
            RoundTripGroup(
                content_hash=content_hash,
                src_device_num=src_device_num,
                dest_device_num=dest_device_num,
                trips=tuple(round_trips[key]),
            )
        )
    return groups


def find_round_trips_columnar(
    trace: ColumnarTrace,
    *,
    require_chronological: bool = True,
) -> list[RoundTripGroup]:
    """Vectorised Algorithm 2 over a columnar trace.

    The queue semantics of the object implementation (the reference oracle)
    are inherently sequential — a recorded trip pops the oldest receipt of
    its outbound key, which changes what later transfers can match — so the
    match loop itself cannot be replaced by array ops without changing the
    findings.  What *can* be vectorised is the work that dominates: the
    ``(hash, device)`` keys of all transfers are interned into integer ids
    with one ``np.unique`` pass, per-key receipt queues become slices of one
    argsort, and the Python loop then only visits *candidate* transfers —
    those whose payload is ever received back by their source device.  A
    transfer with no matching receipt key has no side effects in the object
    algorithm (no trip, no pop), so skipping it is exact; in realistic
    traces candidates are a small fraction of all transfers.
    """
    tr = np.flatnonzero(trace.transfer_mask())
    if tr.size == 0:
        return []
    missing = ~trace.do_has_content_hash[tr]
    if missing.any():
        seq = int(trace.do_seq[tr[np.flatnonzero(missing)[0]]])
        raise ValueError(f"transfer event seq={seq} is missing its content hash")

    hashes = trace.do_content_hash[tr]
    src = trace.do_src_device_num[tr]
    dst = trace.do_dest_device_num[tr]
    rx_id, tx_id = intern_keys((hashes, src), (hashes, dst))
    num_keys = int(max(rx_id.max(), tx_id.max())) + 1

    # Receipt queues: for key k, positions queue_order[queue_start[k] + head].
    queue_order = np.argsort(tx_id, kind="stable")
    queue_len = np.bincount(tx_id, minlength=num_keys)
    queue_start = np.concatenate(([0], np.cumsum(queue_len)[:-1]))

    # A transfer is a candidate iff some receipt carries its (hash, src) key.
    candidates = np.flatnonzero((queue_len > 0)[rx_id])

    start = trace.do_start_time[tr].tolist()
    end = trace.do_end_time[tr].tolist()
    hash_list = hashes.tolist()
    src_list = src.tolist()
    dst_list = dst.tolist()
    rx_list = rx_id.tolist()
    tx_list = tx_id.tolist()
    order_list = queue_order.tolist()
    start_list = queue_start.tolist()
    len_list = queue_len.tolist()
    heads = [0] * num_keys

    round_trips: dict[tuple[int, int, int], list[tuple[int, int]]] = {}
    group_order: list[tuple[int, int, int]] = []

    for i in candidates.tolist():
        rx_key = rx_list[i]
        head = heads[rx_key]
        if head >= len_list[rx_key]:
            continue  # every receipt of this key has been consumed
        j = order_list[start_list[rx_key] + head]
        if require_chronological and start[j] < end[i]:
            continue

        trip_key = (hash_list[i], src_list[i], dst_list[i])
        trips = round_trips.get(trip_key)
        if trips is None:
            trips = round_trips[trip_key] = []
            group_order.append(trip_key)
        trips.append((i, j))

        tx_key = tx_list[i]
        if heads[tx_key] < len_list[tx_key]:
            heads[tx_key] += 1  # popleft: the outbound leg is consumed

    # One bulk materialisation for every leg of every recorded trip.
    legs: list[int] = []
    for key in group_order:
        for i, j in round_trips[key]:
            legs.append(i)
            legs.append(j)
    events = trace.data_op_events_at(tr[np.asarray(legs, dtype=np.int64)])

    groups: list[RoundTripGroup] = []
    cursor = 0
    for key in group_order:
        content_hash, src_device_num, dest_device_num = key
        trips = []
        for _ in round_trips[key]:
            trips.append(RoundTripPair(tx_event=events[cursor], rx_event=events[cursor + 1]))
            cursor += 2
        groups.append(
            RoundTripGroup(
                content_hash=content_hash,
                src_device_num=src_device_num,
                dest_device_num=dest_device_num,
                trips=tuple(trips),
            )
        )
    return groups


def count_round_trips(groups: Sequence[RoundTripGroup]) -> int:
    """Total number of completed round trips (the "RT" count of Table 1)."""
    return sum(g.num_trips for g in groups)
