"""Small statistics helpers used throughout the evaluation harness.

The paper reports geometric-mean slowdowns (Figure 2), mean relative error
and mean squared error of the speedup prediction (Figure 4), and per-app
averages (Table 4).  These helpers centralise those calculations so the
experiment modules and the tests agree on the exact definitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def _as_list(values: Iterable[float]) -> list[float]:
    out = [float(v) for v in values]
    if not out:
        raise ValueError("expected at least one value")
    return out


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Used for the mean runtime-overhead slowdown (Figure 2) and the mean
    space-overhead accumulation rate (Section 7.4).
    """
    vals = _as_list(values)
    for v in vals:
        if v <= 0.0:
            raise ValueError(f"geometric mean requires positive values, got {v}")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of strictly positive values (used for rate averaging)."""
    vals = _as_list(values)
    for v in vals:
        if v <= 0.0:
            raise ValueError(f"harmonic mean requires positive values, got {v}")
    return len(vals) / sum(1.0 / v for v in vals)


def mean_squared_error(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """MSE between predicted and actual values (Figure 4 accuracy metric)."""
    if len(predicted) != len(actual):
        raise ValueError("predicted and actual must have the same length")
    if not predicted:
        raise ValueError("expected at least one value")
    return sum((p - a) ** 2 for p, a in zip(predicted, actual)) / len(predicted)


def mean_relative_error(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Average relative error |pred - act| / act (Figure 4 accuracy metric)."""
    if len(predicted) != len(actual):
        raise ValueError("predicted and actual must have the same length")
    if not predicted:
        raise ValueError("expected at least one value")
    total = 0.0
    for p, a in zip(predicted, actual):
        if a == 0.0:
            raise ValueError("actual value of zero has undefined relative error")
        total += abs(p - a) / abs(a)
    return total / len(predicted)


def percentile(values: Iterable[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    vals = sorted(_as_list(values))
    if len(vals) == 1:
        return vals[0]
    rank = (q / 100.0) * (len(vals) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return vals[lo]
    frac = rank - lo
    return vals[lo] * (1.0 - frac) + vals[hi] * frac


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    minimum: float
    maximum: float
    mean: float
    median: float
    stddev: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "median": self.median,
            "stddev": self.stddev,
        }


def summarize(values: Iterable[float]) -> Summary:
    """Return a :class:`Summary` of the sample."""
    vals = _as_list(values)
    n = len(vals)
    mean = sum(vals) / n
    var = sum((v - mean) ** 2 for v in vals) / n
    return Summary(
        count=n,
        minimum=min(vals),
        maximum=max(vals),
        mean=mean,
        median=percentile(vals, 50.0),
        stddev=math.sqrt(var),
    )
