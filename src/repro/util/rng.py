"""Deterministic random number generation helpers.

Every simulated application and workload generator takes its randomness from
``make_rng`` so that traces, issue counts and timings are reproducible from
run to run (and across the test suite and the benchmark harness).
"""

from __future__ import annotations

import zlib

import numpy as np


def make_rng(*seed_parts: object) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from a tuple of seed parts.

    The parts are rendered to text and hashed so that callers can mix
    arbitrary identifying information (application name, variant, problem
    size, trial index) into a stable 32-bit seed.
    """
    text = "\x1f".join(repr(p) for p in seed_parts)
    seed = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    return np.random.default_rng(seed)
