"""Shared utilities: statistics helpers, ASCII tables, deterministic RNG."""

from repro.util.stats import (
    geometric_mean,
    mean_squared_error,
    mean_relative_error,
    harmonic_mean,
    percentile,
    summarize,
)
from repro.util.tables import Table, format_bytes, format_seconds
from repro.util.rng import make_rng

__all__ = [
    "geometric_mean",
    "mean_squared_error",
    "mean_relative_error",
    "harmonic_mean",
    "percentile",
    "summarize",
    "Table",
    "format_bytes",
    "format_seconds",
    "make_rng",
]
