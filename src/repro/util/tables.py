"""Plain-text table rendering for reports and experiment output.

OMPDataPerf's output is "human-readable tables" (artifact appendix A.2);
the experiment harness reproduces the paper's tables in the same spirit.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_bytes(n: float) -> str:
    """Format a byte count with a binary-prefix unit (e.g. ``1.5 MiB``)."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if n < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{sign}{int(n)} {unit}"
            return f"{sign}{n:.2f} {unit}"
        n /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(t: float) -> str:
    """Format a duration with an adaptive unit (ns/us/ms/s)."""
    t = float(t)
    sign = "-" if t < 0 else ""
    t = abs(t)
    if t == 0.0:
        return "0 s"
    if t < 1e-6:
        return f"{sign}{t * 1e9:.1f} ns"
    if t < 1e-3:
        return f"{sign}{t * 1e6:.1f} us"
    if t < 1.0:
        return f"{sign}{t * 1e3:.2f} ms"
    return f"{sign}{t:.3f} s"


def format_percent(x: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * x:.1f}%"


class Table:
    """A minimal left/right aligned text table.

    >>> t = Table(["name", "count"])
    >>> t.add_row(["bfs", 18])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self._rows: list[list[str]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        cells = [self._format_cell(c) for c in row]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(self.columns)} columns"
            )
        self._rows.append(cells)

    @staticmethod
    def _format_cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    @property
    def rows(self) -> list[list[str]]:
        return [list(r) for r in self._rows]

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

        lines: list[str] = []
        if self.title:
            lines.append(f"=== {self.title} ===")
        lines.append(fmt_row(self.columns))
        lines.append("  ".join("-" * w for w in widths))
        for row in self._rows:
            lines.append(fmt_row(row))
        return "\n".join(lines)

    def to_records(self) -> list[dict[str, str]]:
        """Return the table contents as a list of column->cell dictionaries."""
        return [dict(zip(self.columns, row)) for row in self._rows]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
