"""Package version, kept separate so it can be imported without side effects."""

__version__ = "0.1.0"
