"""Code-pointer registry mapping synthetic return addresses to source lines."""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Optional

#: Synthetic text-segment base; codeptr values look like plausible return
#: addresses, which keeps report formatting honest (hex, 12+ digits).
_TEXT_BASE = 0x0000_5555_5555_0000
#: Spacing between registered call sites.
_TEXT_STRIDE = 0x40


@dataclass(frozen=True)
class SourceLocation:
    """A resolved source location."""

    file: str
    line: int
    function: str

    def __str__(self) -> str:
        return f"{self.file}:{self.line} ({self.function})"


class DebugInfoRegistry:
    """Bidirectional map between code pointers and source locations.

    One registry instance corresponds to one "binary": the runtime simulator
    owns one and registers every construct call site it executes.  Lookup can
    be disabled (``stripped=True``) to model a binary compiled without
    ``-g``, in which case :meth:`lookup` returns ``None`` for every pointer
    and reports fall back to raw addresses.
    """

    def __init__(self, *, stripped: bool = False) -> None:
        self.stripped = stripped
        self._by_location: dict[SourceLocation, int] = {}
        self._by_codeptr: dict[int, SourceLocation] = {}
        self._next = _TEXT_BASE

    def __len__(self) -> int:
        return len(self._by_codeptr)

    def register(self, file: str, line: int, function: str) -> int:
        """Register a source location, returning its (stable) code pointer."""
        if line < 0:
            raise ValueError("line numbers cannot be negative")
        loc = SourceLocation(file=file, line=int(line), function=function)
        existing = self._by_location.get(loc)
        if existing is not None:
            return existing
        codeptr = self._next
        self._next += _TEXT_STRIDE
        self._by_location[loc] = codeptr
        self._by_codeptr[codeptr] = loc
        return codeptr

    def register_caller(self, *, skip_modules: tuple[str, ...] = ("repro.omp", "repro.ompt")) -> int:
        """Register the nearest stack frame outside the runtime simulator.

        This is how application call sites (the ``#pragma omp target`` lines
        of the simulated benchmarks) become code pointers without the
        applications having to pass explicit labels.
        """
        frame = inspect.currentframe()
        try:
            candidate = frame.f_back if frame is not None else None
            while candidate is not None:
                module = candidate.f_globals.get("__name__", "")
                if not any(module == m or module.startswith(m + ".") for m in skip_modules):
                    if module != __name__:
                        return self.register(
                            file=candidate.f_code.co_filename,
                            line=candidate.f_lineno,
                            function=candidate.f_code.co_name,
                        )
                candidate = candidate.f_back
        finally:
            del frame
        # Could not find an application frame; register a sentinel location.
        return self.register(file="<unknown>", line=0, function="<unknown>")

    def lookup(self, codeptr: Optional[int]) -> Optional[SourceLocation]:
        """Resolve a code pointer, or ``None`` if unknown / stripped."""
        if codeptr is None or self.stripped:
            return None
        return self._by_codeptr.get(codeptr)

    def locations(self) -> list[SourceLocation]:
        """All registered locations (deterministic order by code pointer)."""
        return [self._by_codeptr[ptr] for ptr in sorted(self._by_codeptr)]
