"""Synthetic debug-information substrate (the ``libdw`` stand-in).

The real tool resolves the ``codeptr_ra`` return addresses delivered by OMPT
into file/line/function triples by reading DWARF ``.debug_info`` with libdw.
Here the runtime simulator registers each construct's Python call site in a
:class:`~repro.dwarf.debuginfo.DebugInfoRegistry` and hands the resulting
synthetic code pointer to the OMPT layer; OMPDataPerf later resolves those
pointers back to source locations.  Stripped binaries (compiled without
``-g``) are modelled by querying with attribution disabled, which degrades
findings to raw code pointers exactly as the real tool degrades.
"""

from repro.dwarf.debuginfo import DebugInfoRegistry, SourceLocation
from repro.dwarf.attribution import attribute_events, format_location, group_by_location

__all__ = [
    "DebugInfoRegistry",
    "SourceLocation",
    "attribute_events",
    "format_location",
    "group_by_location",
]
