"""Helpers to attach source locations to detected issues and group findings."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional, Sequence

from repro.dwarf.debuginfo import DebugInfoRegistry, SourceLocation
from repro.events.records import DataOpEvent, TargetEvent


def format_location(
    codeptr: Optional[int], registry: Optional[DebugInfoRegistry]
) -> str:
    """Render a code pointer as source text, degrading gracefully.

    With debug info available the result is ``file:line (function)``; without
    it (stripped binary, unknown pointer, or no registry) the raw address is
    shown, mirroring how the real tool degrades when the program was not
    compiled with ``-g``.
    """
    if codeptr is None:
        return "<unknown location>"
    location = registry.lookup(codeptr) if registry is not None else None
    if location is None:
        return f"{codeptr:#014x}"
    return str(location)


def attribute_events(
    events: Iterable[DataOpEvent | TargetEvent],
    registry: Optional[DebugInfoRegistry],
) -> list[tuple[DataOpEvent | TargetEvent, Optional[SourceLocation]]]:
    """Pair every event with its resolved source location (or ``None``)."""
    out = []
    for event in events:
        codeptr = event.codeptr
        location = registry.lookup(codeptr) if registry is not None else None
        out.append((event, location))
    return out


def group_by_location(
    events: Sequence[DataOpEvent | TargetEvent],
    registry: Optional[DebugInfoRegistry],
) -> dict[str, list[DataOpEvent | TargetEvent]]:
    """Group events by formatted source location (for per-line issue reports)."""
    groups: dict[str, list[DataOpEvent | TargetEvent]] = defaultdict(list)
    for event in events:
        groups[format_location(event.codeptr, registry)].append(event)
    return dict(groups)
