"""Command-line interface, mirroring the artifact's ``ompdataperf`` usage.

The real tool wraps a native binary (``ompdataperf ./prog args``); in this
reproduction the "programs" are the registered simulated applications, so
the CLI takes an application name plus options::

    ompdataperf bfs --size small                 # analyze the baseline
    ompdataperf bfs --size small --variant fixed # analyze the fixed version
    ompdataperf --list                           # list available programs
    ompdataperf --experiments table1 fig2        # regenerate paper tables
    ompdataperf bfs --trace-out bfs.json         # save the raw trace
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro._version import __version__
from repro.apps.base import AppVariant, ProblemSize
from repro.apps.registry import all_apps, get_app
from repro.core.profiler import OMPDataPerf
from repro.experiments.runner import available_experiments, run_experiments


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ompdataperf",
        description="Detect inefficient data mapping patterns in (simulated) OpenMP offload programs.",
    )
    parser.add_argument("program", nargs="?", help="registered application name (see --list)")
    parser.add_argument("--size", default="medium",
                        help="problem size: small, medium or large (default: medium)")
    parser.add_argument("--variant", default="baseline",
                        help="application variant: baseline, fixed or synthetic")
    parser.add_argument("--hasher", default=None,
                        help="content hash to use (see repro.hashing.available_hashers)")
    parser.add_argument("--audit-collisions", action="store_true",
                        help="store payload copies and verify the hash is collision-free")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write the recorded trace as JSON to PATH")
    parser.add_argument("-q", "--quiet", action="store_true", help="suppress warnings")
    parser.add_argument("-v", "--verbose", action="store_true", help="enable verbose output")
    parser.add_argument("--list", action="store_true", help="list registered applications")
    parser.add_argument("--experiments", nargs="*", metavar="KEY",
                        help="regenerate paper tables/figures (no KEY = all); "
                             f"available: {', '.join(available_experiments())}")
    parser.add_argument("--quick", action="store_true",
                        help="with --experiments: restrict sweeps to the small problem size")
    parser.add_argument("--version", action="version", version=f"ompdataperf {__version__}")
    return parser


def _list_programs() -> str:
    lines = ["Registered applications:"]
    for name, app in sorted(all_apps().items()):
        variants = ", ".join(v.value for v in app.supported_variants())
        lines.append(f"  {name:18s} {app.domain:24s} variants: {variants}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        print(_list_programs())
        return 0

    if args.experiments is not None:
        keys = args.experiments or None
        try:
            run_experiments(keys, quick=args.quick, echo=print)
        except KeyError as exc:
            parser.error(str(exc))
        return 0

    if not args.program:
        parser.error("a program name is required (or use --list / --experiments)")

    try:
        app = get_app(args.program)
    except KeyError as exc:
        parser.error(str(exc))
        return 2  # unreachable; parser.error raises SystemExit

    try:
        size = ProblemSize.parse(args.size)
        variant = AppVariant.parse(args.variant)
    except ValueError as exc:
        parser.error(str(exc))
        return 2

    if not app.supports_variant(variant):
        parser.error(f"{app.name} does not provide a {variant.value!r} variant")

    if not args.quiet:
        print(f"info: OpenMP OMPT interface version 5.1 (simulated)")
        print(f"info: analyzing {app.name} [{size.value}, {variant.value}] with OMPDataPerf {__version__}")

    tool = OMPDataPerf(
        hasher=args.hasher or "vector64",
        audit_collisions=args.audit_collisions,
    )
    result = tool.profile(
        app.build_program(size, variant),
        program_name=app.program_name(size, variant),
    )

    if args.trace_out:
        result.trace.save(args.trace_out)
        if not args.quiet:
            print(f"info: trace written to {args.trace_out}")

    if args.verbose:
        summary = result.trace.summary()
        print("info: trace summary:")
        for key, value in summary.items():
            print(f"  {key}: {value}")

    print(result.render_report())

    if args.audit_collisions and result.collector.auditor is not None:
        auditor = result.collector.auditor
        status = "collision-free" if auditor.is_collision_free() else "COLLISIONS DETECTED"
        print(f"\nhash audit: {auditor.observed} payloads, {status}")

    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
