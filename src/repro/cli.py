"""Command-line interface, mirroring the artifact's ``ompdataperf`` usage.

The real tool wraps a native binary (``ompdataperf ./prog args``); in this
reproduction the "programs" are the registered simulated applications, so
the CLI takes an application name plus options::

    ompdataperf bfs --size small                 # analyze the baseline
    ompdataperf bfs --size small --variant fixed # analyze the fixed version
    ompdataperf --list                           # list available programs
    ompdataperf --experiments table1 fig2        # regenerate paper tables
    ompdataperf --experiments --jobs 4           # ... on four worker threads
    ompdataperf bfs --trace-out bfs.json         # save the raw trace
    ompdataperf bfs --stream --trace-out b.store # bounded-memory sharded run
    ompdataperf trace convert bfs.json bfs.npz   # JSON <-> binary columnar
    ompdataperf trace shard bfs.npz bfs.store    # cut into a sharded store
    ompdataperf trace merge bfs.store bfs.npz    # merge a store back
    ompdataperf trace info bfs.store             # summarise without loading
    ompdataperf trace compact bfs.store          # re-shard a store in place
    ompdataperf trace migrate bfs.store          # rewrite legacy .npz shards as .odpf
    ompdataperf trace compact bfs.store --retain-max-age 5.0   # drop old events
    ompdataperf trace shard bfs.npz bfs.zip      # single-file zip-archived store
    ompdataperf bfs --stream --engine process --jobs 4   # shard-parallel analysis
    ompdataperf bfs --stream --engine distributed --jobs 4   # loopback cluster
    ompdataperf worker --queue run.queue         # join a distributed run
    ompdataperf bfs --stream --engine distributed:queue=run.queue --jobs 4
    ompdataperf bfs --stream --engine distributed:claim_batch=4,speculate=on
    ompdataperf queue status run.queue           # inspect a live run's queue

``--engine`` takes an engine spec string: a registry name optionally
followed by ``:key=value,...`` engine options (the per-engine option
tables live on each engine class's ``config_options``).  The older
``--queue``/``--queue-timeout`` flags still work but are deprecated in
favour of ``distributed:queue=...,run_timeout=...``.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import warnings
from pathlib import Path
from typing import Optional, Sequence

from repro._version import __version__
from repro.apps.base import AppVariant, ProblemSize
from repro.apps.registry import all_apps, get_app
from repro.core.distributed import DistributedExecutionError
from repro.core.engine import (
    EngineConfig,
    _warn_deprecated_once,
    available_engines,
    resolve_engine,
)
from repro.core.profiler import OMPDataPerf
from repro.events.columnar import as_columnar, as_object_trace, load_trace
from repro.events.store import (
    RETAINABLE_KINDS,
    RetentionPolicy,
    ShardedTraceStore,
    shard_trace,
)
from repro.events.stream import DEFAULT_SHARD_EVENTS
from repro.experiments.runner import available_experiments, run_experiments


def positive_int(text: str) -> int:
    """Argparse type for counts that must be at least 1.

    Range errors surface at parse time with a uniform message instead of
    as ``ValueError`` from deep inside the analysis layers.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def nonnegative_number(text: str) -> float:
    """Argparse type for limits that must be zero or more (the --retain-* flags)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative number, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative number, got {text!r}")
    return value


def positive_number(text: str) -> float:
    """Argparse type for durations that must be strictly positive."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {text!r}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ompdataperf",
        description="Detect inefficient data mapping patterns in (simulated) OpenMP offload programs.",
    )
    parser.add_argument("program", nargs="?", help="registered application name (see --list)")
    parser.add_argument("--size", default="medium",
                        help="problem size: small, medium or large (default: medium)")
    parser.add_argument("--variant", default="baseline",
                        help="application variant: baseline, fixed or synthetic")
    parser.add_argument("--hasher", default=None,
                        help="content hash to use (see repro.hashing.available_hashers)")
    parser.add_argument("--audit-collisions", action="store_true",
                        help="store payload copies and verify the hash is collision-free")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write the recorded trace as JSON to PATH")
    parser.add_argument("-q", "--quiet", action="store_true", help="suppress warnings")
    parser.add_argument("-v", "--verbose", action="store_true", help="enable verbose output")
    parser.add_argument("--list", action="store_true", help="list registered applications")
    parser.add_argument("--experiments", nargs="*", metavar="KEY",
                        help="regenerate paper tables/figures (no KEY = all); "
                             f"available: {', '.join(available_experiments())}")
    parser.add_argument("--quick", action="store_true",
                        help="with --experiments: restrict sweeps to the small problem size")
    parser.add_argument("--jobs", type=positive_int, default=1, metavar="N",
                        help="with --experiments: run independent experiments on N worker "
                             "threads; with --stream: number of analysis workers for the "
                             "chosen --engine (default: 1; output is identical regardless "
                             "of N)")
    parser.add_argument("--stream", action="store_true",
                        help="record into an on-disk sharded store (O(shard) ingest memory) "
                             "and analyze it with the incremental streaming detectors; "
                             "--trace-out names the store directory (default: a temp dir)")
    parser.add_argument("--shard-events", type=positive_int, default=DEFAULT_SHARD_EVENTS,
                        metavar="N",
                        help=f"with --stream: events per shard (default: {DEFAULT_SHARD_EVENTS})")
    parser.add_argument("--engine", default="serial", metavar="SPEC",
                        help="with --stream: execution engine for the detector passes — "
                             f"one of {', '.join(available_engines())}, optionally with "
                             "engine options as 'name:key=value,...' (e.g. "
                             "'distributed:claim_batch=4,lease_timeout=10,speculate=on' "
                             "or 'distributed:queue=run.queue'); 'serial' scans once on "
                             "one thread, 'thread' folds event-balanced partitions on "
                             "--jobs threads, 'process' folds them on --jobs worker "
                             "processes, 'distributed' leases partition tasks to workers "
                             "from a transport-backed queue; findings are identical for "
                             "every engine (default: serial)")
    parser.add_argument("--queue", metavar="PATH", default=None,
                        help="(deprecated: use --engine distributed:queue=PATH) "
                             "with --engine distributed: coordinate over the task queue "
                             "at PATH instead of spawning loopback workers; start "
                             "workers anywhere with `ompdataperf worker --queue PATH` "
                             "(they may be waiting before PATH exists)")
    parser.add_argument("--queue-timeout", type=positive_number, default=None,
                        metavar="SECONDS",
                        help="(deprecated: use --engine distributed:run_timeout=SECONDS) "
                             "with --engine distributed: fail with a clear error if the "
                             "run does not complete within SECONDS — e.g. no worker ever "
                             "attaches to --queue (default: wait forever)")
    parser.add_argument("--version", action="version", version=f"ompdataperf {__version__}")
    return parser


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ompdataperf trace",
        description="Inspect and convert saved traces "
                    "(JSON <-> binary columnar <-> sharded store).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    convert = sub.add_parser(
        "convert",
        help="convert a trace between the JSON and binary columnar formats",
    )
    convert.add_argument("input", help="path of the trace to read (format sniffed)")
    convert.add_argument("output", help="path of the trace to write")
    convert.add_argument(
        "--to", choices=("json", "binary", "flat"), default=None,
        help="output format (default: binary for .npz/.bin outputs, "
             "flat for .odpf outputs, else json)",
    )

    shard = sub.add_parser(
        "shard",
        help="cut a trace into a sharded on-disk store (a directory of "
             "columnar shards plus a manifest)",
    )
    shard.add_argument("input", help="path of the trace to read (format sniffed)")
    shard.add_argument("output", help="directory of the store to create")
    shard.add_argument("--shard-events", type=positive_int, default=DEFAULT_SHARD_EVENTS,
                       metavar="N", help="events per shard "
                       f"(default: {DEFAULT_SHARD_EVENTS})")
    shard.add_argument("--compress", action="store_true",
                       help="compress the shards (smaller, slower to scan)")

    compact = sub.add_parser(
        "compact",
        help="re-shard a store in place to a target shard size, coalescing "
             "small shards, dropping empty ones and rewriting the manifest; "
             "--retain-* flags additionally apply a retention policy "
             "(newest events survive, folded statistics are recomputed "
             "from what is kept)",
    )
    compact.add_argument("input", help="directory (or zip archive) of the store to compact")
    compact.add_argument("--shard-events", type=positive_int,
                         default=DEFAULT_SHARD_EVENTS, metavar="N",
                         help="target events per shard "
                         f"(default: {DEFAULT_SHARD_EVENTS})")
    compact.add_argument("--compress", action="store_true",
                         help="compress the rewritten shards")
    compact.add_argument("--retain-max-age", type=nonnegative_number,
                         metavar="SECONDS", default=None,
                         help="drop events whose end time is more than SECONDS "
                              "of event time before the end of the trace")
    compact.add_argument("--retain-max-bytes", type=positive_int,
                         metavar="BYTES", default=None,
                         help="keep only the newest rewritten shards whose "
                              "stored sizes fit BYTES")
    compact.add_argument("--retain-max-shards", type=positive_int,
                         metavar="N", default=None,
                         help="keep at most the N newest rewritten shards")
    compact.add_argument("--retain-keep-kinds", metavar="KIND[,KIND...]",
                         default=None,
                         help="keep only events of these kinds; known kinds: "
                              f"{', '.join(RETAINABLE_KINDS)}")

    migrate = sub.add_parser(
        "migrate",
        help="rewrite a store's shards to the mmap-native flat .odpf format "
             "in place (crash-safe: staged under a scratch prefix, promoted "
             "through one atomic manifest publish — same machinery as "
             "compact); legacy .npz stores gain zero-decode opens on "
             "mmap-capable storage",
    )
    migrate.add_argument("input", help="directory (or zip archive) of the store to migrate")
    migrate.add_argument("--shard-events", type=positive_int, default=None,
                         metavar="N",
                         help="target events per shard (default: the store's "
                              "current largest shard, preserving granularity)")

    merge = sub.add_parser(
        "merge",
        help="merge a sharded store back into one JSON or binary trace file",
    )
    merge.add_argument("input", help="directory of the store to read")
    merge.add_argument("output", help="path of the trace to write")
    merge.add_argument(
        "--to", choices=("json", "binary", "flat"), default=None,
        help="output format (default: binary for .npz/.bin outputs, "
             "flat for .odpf outputs, else json)",
    )

    info = sub.add_parser(
        "info",
        help="print the summary, per-kind event counts and on-disk size of a "
             "saved trace (sharded stores are summarised from the manifest "
             "without loading any shard)",
    )
    info.add_argument("input", help="path of the trace to read (format sniffed)")
    return parser


def build_worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ompdataperf worker",
        description="Join a distributed analysis run: claim partition tasks "
                    "from a transport-backed queue, fold them against the "
                    "run's trace store, and publish the carries back. "
                    "Workers may start before the queue exists; they exit "
                    "when the coordinator publishes the done (or abort) "
                    "marker.",
    )
    parser.add_argument("--queue", required=True, metavar="PATH",
                        help="task queue location (the coordinator's --queue)")
    parser.add_argument("--poll-interval", type=positive_number, default=0.5,
                        metavar="SECONDS",
                        help="how often to poll for new tasks (default: 0.5)")
    parser.add_argument("--max-tasks", type=positive_int, default=None, metavar="N",
                        help="exit after completing N tasks (default: run until done)")
    parser.add_argument("--idle-timeout", type=positive_number, default=None,
                        metavar="SECONDS",
                        help="exit with an error if no run manifest appears within "
                             "SECONDS (default: wait forever)")
    parser.add_argument("--claim-batch", type=positive_int, default=None, metavar="N",
                        help="lease up to N tasks per sweep and publish their "
                             "results as one blob (default: the run manifest's "
                             "claim_batch)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-task progress output")
    return parser


def _worker_main(argv: Sequence[str]) -> int:
    from repro.core.distributed import run_worker

    parser = build_worker_parser()
    args = parser.parse_args(argv)
    try:
        return run_worker(
            args.queue,
            poll_interval=args.poll_interval,
            max_tasks=args.max_tasks,
            idle_timeout=args.idle_timeout,
            echo=None if args.quiet else print,
            crash_hook=True,
            claim_batch=args.claim_batch,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive interrupt
        return 130


def build_queue_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ompdataperf queue",
        description="Inspect a distributed run's task queue: pending depth, "
                    "active claims, result batches, and the coordinator's "
                    "periodically-rewritten autoscaling hints blob — what an "
                    "external fleet manager polls to decide whether to grow "
                    "or shrink the worker fleet mid-run.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    status = sub.add_parser(
        "status",
        help="print the queue's state, per-kind blob counts, and the "
             "latest autoscaling hints (hints.* lines)",
    )
    status.add_argument("queue", metavar="PATH",
                        help="task queue location (the coordinator's queue)")
    return parser


def _queue_main(argv: Sequence[str]) -> int:
    import json

    from repro.core.distributed import (
        CLAIM_PREFIX,
        ERROR_PREFIX,
        HINTS_BLOB,
        RUN_MANIFEST,
        TaskQueue,
    )
    from repro.events.transport import TransportError, open_transport, try_read_blob

    parser = build_queue_parser()
    args = parser.parse_args(argv)
    try:
        transport = open_transport(args.queue)
    except (TransportError, OSError, ValueError) as exc:
        parser.error(f"cannot open queue {args.queue}: {exc}")
        return 2  # unreachable; parser.error raises SystemExit

    queue = TaskQueue(transport)
    names = transport.list_blobs()
    abort = queue.abort_reason()
    if abort is not None:
        state = f"aborted: {abort}"
    elif queue.is_done():
        state = "done"
    elif RUN_MANIFEST not in names:
        state = "no-run"
    else:
        state = "running"
    claims = [n for n in names if n.startswith(CLAIM_PREFIX)]
    print(f"state: {state}")
    print(f"pending_tasks: {len(queue.pending_task_names())}")
    print(f"claimed_tasks: {len(claims)}")
    print(f"result_batches: {len(queue.result_batch_names())}")
    print(f"errors: {len([n for n in names if n.startswith(ERROR_PREFIX)])}")
    workers = sorted({name.rsplit(".", 1)[1] for name in claims})
    if workers:
        print(f"claim_workers: {', '.join(workers)}")
    raw = try_read_blob(transport, HINTS_BLOB)
    if raw is not None:
        try:
            hints = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            print("hints: <undecodable>")
        else:
            for key, value in sorted(hints.items()):
                print(f"hints.{key}: {value}")
    return 0


def build_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ompdataperf fuzz",
        description="Run the hostile-trace differential fuzz sweep: seeded "
                    "adversarial traces written with shard-boundary-hostile "
                    "layouts, analysed on every transport × engine "
                    "combination and compared bit-for-bit against the "
                    "columnar/object oracle.  Every failure prints the one "
                    "command that reproduces it from its seed.",
    )
    parser.add_argument("--seed", type=int, default=None,
                        help="base case seed (default: $OMPDATAPERF_FUZZ_SEED, else 0); "
                             "case i uses seed+i, so any case replays alone")
    parser.add_argument("--cases", type=positive_int, default=None, metavar="N",
                        help="number of seeded cases "
                             "(default: $OMPDATAPERF_FUZZ_CASES, else 5)")
    parser.add_argument("--events", type=positive_int, default=None, metavar="N",
                        help="maximum events per case (each case draws its size "
                             "from its seed, up to N; default 20000)")
    parser.add_argument("--transports", default=None, metavar="KINDS",
                        help="comma-separated transports to sweep "
                             "(local,zip,fake-object-store,s3; default: all "
                             "local kinds, plus s3 when "
                             "$OMPDATAPERF_S3_TEST_ENDPOINT is set)")
    parser.add_argument("--engines", default=None, metavar="NAMES",
                        help="comma-separated engines to sweep "
                             "(default: serial,thread,process,distributed)")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write the sweep summary as JSON to PATH")
    parser.add_argument("--oracle-max", type=positive_int, default=None, metavar="N",
                        help="skip the (slow) object-mode oracle cross-check "
                             "above N events (default 60000)")
    return parser


def _fuzz_main(argv: Sequence[str]) -> int:
    import os

    from repro.core import fuzz

    parser = build_fuzz_parser()
    args = parser.parse_args(argv)
    seed = args.seed
    if seed is None:
        seed = int(os.environ.get(fuzz.SEED_ENV, "0"))
    cases = args.cases
    if cases is None:
        cases = int(os.environ.get(fuzz.CASES_ENV, str(fuzz.DEFAULT_CASES)))
    transports = None
    if args.transports:
        transports = tuple(t.strip() for t in args.transports.split(",") if t.strip())
    engines = fuzz.ALL_ENGINES
    if args.engines:
        engines = tuple(e.strip() for e in args.engines.split(",") if e.strip())
    report = fuzz.run_fuzz_sweep(
        seed=seed,
        cases=cases,
        max_events=args.events or fuzz.DEFAULT_MAX_EVENTS,
        transports=transports,
        engines=engines,
        oracle_limit=args.oracle_max or fuzz.DEFAULT_ORACLE_LIMIT,
        report_path=args.report,
    )
    return 0 if report.ok else 1


def _on_disk_bytes(trace, path: Path) -> int:
    if isinstance(trace, ShardedTraceStore):
        return trace.on_disk_bytes()
    return path.stat().st_size


def _print_trace_info(trace, path: Path) -> None:
    for key, value in trace.summary().items():
        print(f"{key}: {value}")
    if isinstance(trace, ShardedTraceStore):
        # Per-kind counts straight from the manifest: no shard is read.
        do_kinds = trace.data_op_kind_counts()
        tgt_kinds = trace.target_kind_counts()
        print(f"num_shards: {trace.num_shards}")
    else:
        columnar = as_columnar(trace)
        import numpy as np

        from repro.events.columnar import DATA_OP_KIND_CODES, TARGET_KIND_CODES

        do_counts = np.bincount(columnar.do_kind, minlength=len(DATA_OP_KIND_CODES))
        tgt_counts = np.bincount(columnar.tgt_kind, minlength=len(TARGET_KIND_CODES))
        do_kinds = {k.value: int(n) for k, n in zip(DATA_OP_KIND_CODES, do_counts)}
        tgt_kinds = {k.value: int(n) for k, n in zip(TARGET_KIND_CODES, tgt_counts)}
    for kind, count in do_kinds.items():
        print(f"data_op_kind.{kind}: {count}")
    for kind, count in tgt_kinds.items():
        print(f"target_kind.{kind}: {count}")
    print(f"on_disk_bytes: {_on_disk_bytes(trace, path)}")
    if isinstance(trace, ShardedTraceStore):
        bytes_by_format = trace.on_disk_bytes_by_format()
        for fmt, count in sorted(trace.shard_format_counts().items()):
            print(f"shard_format.{fmt}: {count}")
            print(f"on_disk_bytes.{fmt}: {bytes_by_format[fmt]}")


def _trace_main(argv: Sequence[str]) -> int:
    parser = build_trace_parser()
    args = parser.parse_args(argv)

    try:
        trace = load_trace(args.input)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        # KeyError/TypeError cover structurally valid JSON that is not a
        # trace (missing or mistyped schema fields).
        parser.error(f"cannot load {args.input}: {exc}")
        return 2  # unreachable; parser.error raises SystemExit

    if args.command == "info":
        _print_trace_info(trace, Path(args.input))
        return 0

    if args.command == "compact":
        if not isinstance(trace, ShardedTraceStore):
            parser.error(f"{args.input} is not a sharded trace store")
        keep_kinds = None
        if args.retain_keep_kinds is not None:
            keep_kinds = frozenset(
                kind.strip() for kind in args.retain_keep_kinds.split(",") if kind.strip()
            )
        before_shards, before_events = trace.num_shards, len(trace)
        try:
            retention = RetentionPolicy(
                max_age=args.retain_max_age,
                max_total_bytes=args.retain_max_bytes,
                max_shards=args.retain_max_shards,
                keep_kinds=keep_kinds,
            )
            store = trace.compact(
                shard_events=args.shard_events,
                compress=args.compress,
                retention=retention,
            )
        except (OSError, ValueError) as exc:
            parser.error(f"cannot compact {args.input}: {exc}")
            return 2  # unreachable; parser.error raises SystemExit
        dropped = before_events - len(store)
        retained = "" if retention.is_null() else (
            f" (retention dropped {dropped} event(s))"
        )
        print(
            f"info: compacted {args.input}: {before_shards} -> {store.num_shards} "
            f"shard(s), {len(store)} events{retained}"
        )
        return 0

    if args.command == "migrate":
        if not isinstance(trace, ShardedTraceStore):
            parser.error(f"{args.input} is not a sharded trace store")
        before = trace.shard_format_counts()
        # Without an explicit target, keep the store's shard granularity:
        # re-sharding is compact's job, migration only changes the format.
        shard_events = args.shard_events or max(
            (s.num_events for s in trace.shards), default=DEFAULT_SHARD_EVENTS
        )
        try:
            store = trace.compact(shard_events=shard_events, shard_format="odpf")
        except (OSError, ValueError) as exc:
            parser.error(f"cannot migrate {args.input}: {exc}")
            return 2  # unreachable; parser.error raises SystemExit
        after = store.shard_format_counts()
        print(
            f"info: migrated {args.input}: "
            f"{before.get('npz', 0)} npz + {before.get('odpf', 0)} odpf "
            f"shard(s) -> {after.get('odpf', 0)} odpf shard(s), "
            f"{len(store)} events"
        )
        return 0

    if args.command == "shard":
        try:
            store = shard_trace(
                trace,
                args.output,
                shard_events=args.shard_events,
                compress=args.compress,
            )
        except (OSError, ValueError) as exc:
            parser.error(f"cannot shard into {args.output}: {exc}")
            return 2
        print(
            f"info: wrote {store.num_shards} shard(s), {len(store)} events "
            f"to {args.output}"
        )
        return 0

    if args.command == "merge" and not isinstance(trace, ShardedTraceStore):
        parser.error(f"{args.input} is not a sharded trace store")

    if isinstance(trace, ShardedTraceStore):
        trace = trace.load()  # convert/merge write a single file: materialise

    fmt = args.to
    if fmt is None:
        suffix = Path(args.output).suffix
        if suffix in (".npz", ".bin"):
            fmt = "binary"
        elif suffix == ".odpf":
            fmt = "flat"
        else:
            fmt = "json"
    try:
        if fmt == "binary":
            as_columnar(trace).save_binary(args.output)
        elif fmt == "flat":
            as_columnar(trace).save_flat(args.output)
        else:
            as_object_trace(trace).save(args.output)
    except OSError as exc:
        parser.error(f"cannot write {args.output}: {exc}")
        return 2
    print(f"info: wrote {fmt} trace to {args.output}")
    return 0


def _list_programs() -> str:
    lines = ["Registered applications:"]
    for name, app in sorted(all_apps().items()):
        variants = ", ".join(v.value for v in app.supported_variants())
        lines.append(f"  {name:18s} {app.domain:24s} variants: {variants}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "worker":
        return _worker_main(argv[1:])
    if argv and argv[0] == "queue":
        return _queue_main(argv[1:])
    if argv and argv[0] == "fuzz":
        return _fuzz_main(argv[1:])

    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        engine_config = EngineConfig.parse(args.engine)
    except ValueError as exc:
        parser.error(f"argument --engine: {exc}")
        return 2  # unreachable; parser.error raises SystemExit

    if args.queue is not None and engine_config.name != "distributed":
        parser.error("--queue only applies to --engine distributed")
    if args.queue_timeout is not None and engine_config.name != "distributed":
        parser.error("--queue-timeout only applies to --engine distributed")

    if args.list:
        print(_list_programs())
        return 0

    if args.experiments is not None:
        keys = args.experiments or None
        try:
            run_experiments(keys, quick=args.quick, echo=print, jobs=args.jobs)
        except KeyError as exc:
            parser.error(str(exc))
        return 0

    if not args.program:
        parser.error("a program name is required (or use --list / --experiments)")

    try:
        app = get_app(args.program)
    except KeyError as exc:
        parser.error(str(exc))
        return 2  # unreachable; parser.error raises SystemExit

    try:
        size = ProblemSize.parse(args.size)
        variant = AppVariant.parse(args.variant)
    except ValueError as exc:
        parser.error(str(exc))
        return 2

    if not app.supports_variant(variant):
        parser.error(f"{app.name} does not provide a {variant.value!r} variant")

    if not args.quiet:
        print(f"info: OpenMP OMPT interface version 5.1 (simulated)")
        print(f"info: analyzing {app.name} [{size.value}, {variant.value}] with OMPDataPerf {__version__}")

    tool = OMPDataPerf(
        hasher=args.hasher or "vector64",
        audit_collisions=args.audit_collisions,
    )
    if args.stream:
        # Resolve the engine up front with degradation enabled: asking for
        # process workers on a machine that cannot profit from them (one
        # usable core, or no way to start workers) falls back to serial
        # with a visible warning instead of oversubscribing.  The
        # deprecated --queue/--queue-timeout flags fold into the parsed
        # EngineConfig (workers=0 for an attach-mode queue because its
        # workers were started elsewhere); the spec-string equivalents
        # are distributed:queue=PATH and distributed:run_timeout=SECONDS.
        engine_request = engine_config
        deprecated_flags = []
        if engine_config.name == "distributed" and (
            args.queue is not None or args.queue_timeout is not None
        ):
            options = dict(engine_config.options)
            if args.queue is not None:
                deprecated_flags.append((
                    "cli-queue-flag",
                    "--queue is deprecated; use "
                    "--engine distributed:queue=PATH instead",
                ))
                options.setdefault("queue", str(args.queue))
                options.setdefault("workers", 0)
            if args.queue_timeout is not None:
                deprecated_flags.append((
                    "cli-queue-timeout-flag",
                    "--queue-timeout is deprecated; use "
                    "--engine distributed:run_timeout=SECONDS instead",
                ))
                options.setdefault("run_timeout", args.queue_timeout)
            engine_request = EngineConfig(name="distributed", options=options)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for key, message in deprecated_flags:
                _warn_deprecated_once(key, message)
            engine = resolve_engine(engine_request, jobs=args.jobs, degrade=True)
        if not args.quiet:
            for warning in caught:
                print(f"warning: {warning.message}")
        # Without --trace-out the store only exists to bound the run's
        # memory: put it in a scratch directory and remove it afterwards.
        scratch = None if args.trace_out else tempfile.mkdtemp(prefix="ompdataperf-")
        store_path = args.trace_out or Path(scratch) / "trace.store"
        try:
            try:
                result = tool.profile_streaming(
                    app.build_program(size, variant),
                    store_path,
                    shard_events=args.shard_events,
                    program_name=app.program_name(size, variant),
                    jobs=args.jobs,
                    engine=engine,
                )
            except DistributedExecutionError as exc:
                parser.error(f"distributed run failed: {exc}")
                return 2  # unreachable; parser.error raises SystemExit
            except (OSError, ValueError) as exc:
                # e.g. the store directory already exists and is non-empty
                parser.error(f"cannot stream into {store_path}: {exc}")
                return 2  # unreachable; parser.error raises SystemExit
            trace_like = result.store
            if not args.quiet:
                kept = "" if scratch is None else " (scratch, removed on exit)"
                print(
                    f"info: streamed {len(result.store)} events into "
                    f"{result.store.num_shards} shard(s) at {store_path}{kept}"
                )
                stats = result.analysis.engine_stats
                if result.analysis.engine_name == "distributed" and stats:
                    print(
                        f"info: distributed: {stats.get('tasks', 0)} task(s), "
                        f"{stats.get('requeued', 0)} requeued, "
                        f"{stats.get('speculative_launches', 0)} speculative, "
                        f"{stats.get('debris_blobs', 0)} debris"
                    )
        finally:
            if scratch is not None:
                shutil.rmtree(scratch, ignore_errors=True)
    else:
        result = tool.profile(
            app.build_program(size, variant),
            program_name=app.program_name(size, variant),
        )
        trace_like = result.trace

        if args.trace_out:
            if Path(args.trace_out).suffix in (".npz", ".bin"):
                result.trace.save_binary(args.trace_out)
            else:
                result.trace.save(args.trace_out)
            if not args.quiet:
                print(f"info: trace written to {args.trace_out}")

    # The report and summaries below read only in-memory state (findings
    # and manifest aggregates), so a scratch store may already be gone.
    if args.verbose:
        summary = trace_like.summary()
        print("info: trace summary:")
        for key, value in summary.items():
            print(f"  {key}: {value}")

    print(result.render_report())

    if args.audit_collisions and result.collector.auditor is not None:
        auditor = result.collector.auditor
        status = "collision-free" if auditor.is_collision_free() else "COLLISIONS DETECTED"
        print(f"\nhash audit: {auditor.observed} payloads, {status}")

    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
