"""Command-line interface, mirroring the artifact's ``ompdataperf`` usage.

The real tool wraps a native binary (``ompdataperf ./prog args``); in this
reproduction the "programs" are the registered simulated applications, so
the CLI takes an application name plus options::

    ompdataperf bfs --size small                 # analyze the baseline
    ompdataperf bfs --size small --variant fixed # analyze the fixed version
    ompdataperf --list                           # list available programs
    ompdataperf --experiments table1 fig2        # regenerate paper tables
    ompdataperf --experiments --jobs 4           # ... on four worker threads
    ompdataperf bfs --trace-out bfs.json         # save the raw trace
    ompdataperf trace convert bfs.json bfs.npz   # JSON <-> binary columnar
    ompdataperf trace info bfs.npz               # summarise a saved trace
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro._version import __version__
from repro.apps.base import AppVariant, ProblemSize
from repro.apps.registry import all_apps, get_app
from repro.core.profiler import OMPDataPerf
from repro.events.columnar import as_columnar, as_object_trace, load_trace
from repro.experiments.runner import available_experiments, run_experiments


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ompdataperf",
        description="Detect inefficient data mapping patterns in (simulated) OpenMP offload programs.",
    )
    parser.add_argument("program", nargs="?", help="registered application name (see --list)")
    parser.add_argument("--size", default="medium",
                        help="problem size: small, medium or large (default: medium)")
    parser.add_argument("--variant", default="baseline",
                        help="application variant: baseline, fixed or synthetic")
    parser.add_argument("--hasher", default=None,
                        help="content hash to use (see repro.hashing.available_hashers)")
    parser.add_argument("--audit-collisions", action="store_true",
                        help="store payload copies and verify the hash is collision-free")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write the recorded trace as JSON to PATH")
    parser.add_argument("-q", "--quiet", action="store_true", help="suppress warnings")
    parser.add_argument("-v", "--verbose", action="store_true", help="enable verbose output")
    parser.add_argument("--list", action="store_true", help="list registered applications")
    parser.add_argument("--experiments", nargs="*", metavar="KEY",
                        help="regenerate paper tables/figures (no KEY = all); "
                             f"available: {', '.join(available_experiments())}")
    parser.add_argument("--quick", action="store_true",
                        help="with --experiments: restrict sweeps to the small problem size")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="with --experiments: run independent experiments on N worker "
                             "threads (default: 1; output is identical regardless of N)")
    parser.add_argument("--version", action="version", version=f"ompdataperf {__version__}")
    return parser


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ompdataperf trace",
        description="Inspect and convert saved traces (JSON <-> binary columnar).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    convert = sub.add_parser(
        "convert",
        help="convert a trace between the JSON and binary columnar formats",
    )
    convert.add_argument("input", help="path of the trace to read (format sniffed)")
    convert.add_argument("output", help="path of the trace to write")
    convert.add_argument(
        "--to", choices=("json", "binary"), default=None,
        help="output format (default: binary for .npz/.bin outputs, else json)",
    )

    info = sub.add_parser("info", help="print the summary of a saved trace")
    info.add_argument("input", help="path of the trace to read (format sniffed)")
    return parser


def _trace_main(argv: Sequence[str]) -> int:
    parser = build_trace_parser()
    args = parser.parse_args(argv)

    try:
        trace = load_trace(args.input)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        # KeyError/TypeError cover structurally valid JSON that is not a
        # trace (missing or mistyped schema fields).
        parser.error(f"cannot load {args.input}: {exc}")
        return 2  # unreachable; parser.error raises SystemExit

    if args.command == "info":
        for key, value in trace.summary().items():
            print(f"{key}: {value}")
        return 0

    fmt = args.to
    if fmt is None:
        fmt = "binary" if Path(args.output).suffix in (".npz", ".bin") else "json"
    try:
        if fmt == "binary":
            as_columnar(trace).save_binary(args.output)
        else:
            as_object_trace(trace).save(args.output)
    except OSError as exc:
        parser.error(f"cannot write {args.output}: {exc}")
        return 2
    print(f"info: wrote {fmt} trace to {args.output}")
    return 0


def _list_programs() -> str:
    lines = ["Registered applications:"]
    for name, app in sorted(all_apps().items()):
        variants = ", ".join(v.value for v in app.supported_variants())
        lines.append(f"  {name:18s} {app.domain:24s} variants: {variants}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.jobs < 1:
        parser.error("--jobs must be at least 1")

    if args.list:
        print(_list_programs())
        return 0

    if args.experiments is not None:
        keys = args.experiments or None
        try:
            run_experiments(keys, quick=args.quick, echo=print, jobs=args.jobs)
        except KeyError as exc:
            parser.error(str(exc))
        return 0

    if not args.program:
        parser.error("a program name is required (or use --list / --experiments)")

    try:
        app = get_app(args.program)
    except KeyError as exc:
        parser.error(str(exc))
        return 2  # unreachable; parser.error raises SystemExit

    try:
        size = ProblemSize.parse(args.size)
        variant = AppVariant.parse(args.variant)
    except ValueError as exc:
        parser.error(str(exc))
        return 2

    if not app.supports_variant(variant):
        parser.error(f"{app.name} does not provide a {variant.value!r} variant")

    if not args.quiet:
        print(f"info: OpenMP OMPT interface version 5.1 (simulated)")
        print(f"info: analyzing {app.name} [{size.value}, {variant.value}] with OMPDataPerf {__version__}")

    tool = OMPDataPerf(
        hasher=args.hasher or "vector64",
        audit_collisions=args.audit_collisions,
    )
    result = tool.profile(
        app.build_program(size, variant),
        program_name=app.program_name(size, variant),
    )

    if args.trace_out:
        if Path(args.trace_out).suffix in (".npz", ".bin"):
            result.trace.save_binary(args.trace_out)
        else:
            result.trace.save(args.trace_out)
        if not args.quiet:
            print(f"info: trace written to {args.trace_out}")

    if args.verbose:
        summary = result.trace.summary()
        print("info: trace summary:")
        for key, value in summary.items():
            print(f"  {key}: {value}")

    print(result.render_report())

    if args.audit_collisions and result.collector.auditor is not None:
        auditor = result.collector.auditor
        status = "collision-free" if auditor.is_collision_free() else "COLLISIONS DETECTED"
        print(f"\nhash audit: {auditor.observed} payloads, {status}")

    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
