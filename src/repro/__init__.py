"""OMPDataPerf reproduction.

A from-scratch Python reproduction of *Dynamic Detection of Inefficient Data
Mapping Patterns in Heterogeneous OpenMP Applications* (PPoPP '26).

The package is organised in layers:

``repro.omp``
    A discrete-event OpenMP offload runtime simulator (host + N target
    devices, device data environment, map clauses, cost model).
``repro.ompt``
    An OMPT-EMI-style callback interface emitted by the simulator.
``repro.core``
    OMPDataPerf itself: the trace collector, the five detection algorithms,
    optimization-potential estimation, source attribution and reporting.
``repro.apps``
    Simulated ports of the benchmark applications used in the paper's
    evaluation, in baseline / fixed / synthetic-issue variants.
``repro.experiments``
    One module per table and figure of the paper's evaluation.
"""

from repro._version import __version__
from repro.core.profiler import OMPDataPerf, ProfileResult
from repro.core.analysis import AnalysisReport, analyze_trace
from repro.events.trace import Trace
from repro.omp.runtime import OffloadRuntime
from repro.omp.mapping import MapType

__all__ = [
    "__version__",
    "OMPDataPerf",
    "ProfileResult",
    "AnalysisReport",
    "analyze_trace",
    "Trace",
    "OffloadRuntime",
    "MapType",
]
