"""The OMPT interface object connecting the runtime simulator to tools.

A tool registers callbacks with :meth:`OmptInterface.set_callback` (or is
connected wholesale via :meth:`OmptInterface.connect_tool`, the analogue of
``ompt_start_tool``).  The runtime calls the ``emit_*`` methods; each
returns the number of *seconds of tool overhead* incurred handling the
callback, which the runtime charges to the virtual clock.  That single
number is how the runtime-overhead evaluation (Figure 2) is driven: a run
with no tool attached sees zero overhead on every emission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, runtime_checkable

from repro.ompt.callbacks import (
    CallbackType,
    TargetDataOpRecord,
    TargetRecord,
    TargetSubmitRecord,
)

#: A callback receives the record and returns its overhead in seconds
#: (or ``None``, treated as zero).
CallbackFn = Callable[[object], Optional[float]]


@runtime_checkable
class OmptTool(Protocol):
    """Protocol for tools connectable via :meth:`OmptInterface.connect_tool`."""

    def initialize(self, interface: "OmptInterface") -> None:
        """Register callbacks; called once when the tool is connected."""

    def finalize(self) -> None:
        """Called when the monitored program finishes."""


@dataclass
class OmptInterface:
    """Callback registry and dispatcher."""

    #: Version string reported to tools; mirrors the paper's requirement of
    #: an OpenMP 5.1 runtime with EMI callback support.
    interface_version: str = "5.1"
    _callbacks: dict[CallbackType, list[CallbackFn]] = field(default_factory=dict)
    _tools: list[OmptTool] = field(default_factory=list)
    #: number of emissions per callback type (diagnostics / tests)
    emission_counts: dict[CallbackType, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def set_callback(self, callback_type: CallbackType, fn: CallbackFn) -> None:
        """Register ``fn`` for ``callback_type`` (multiple tools may register)."""
        if not isinstance(callback_type, CallbackType):
            raise TypeError(f"expected CallbackType, got {callback_type!r}")
        if not callable(fn):
            raise TypeError("callback must be callable")
        self._callbacks.setdefault(callback_type, []).append(fn)

    def clear_callback(self, callback_type: CallbackType) -> None:
        self._callbacks.pop(callback_type, None)

    def has_callback(self, callback_type: CallbackType) -> bool:
        return bool(self._callbacks.get(callback_type))

    def connect_tool(self, tool: OmptTool) -> OmptTool:
        """Connect a tool (the ``ompt_start_tool`` analogue) and return it."""
        tool.initialize(self)
        self._tools.append(tool)
        return tool

    def finalize_tools(self) -> None:
        """Notify every connected tool that the program has finished."""
        for tool in self._tools:
            tool.finalize()

    @property
    def connected_tools(self) -> tuple[OmptTool, ...]:
        return tuple(self._tools)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _dispatch(self, callback_type: CallbackType, record: object) -> float:
        self.emission_counts[callback_type] = self.emission_counts.get(callback_type, 0) + 1
        callbacks = self._callbacks.get(callback_type)
        if not callbacks:
            return 0.0
        overhead = 0.0
        for fn in callbacks:
            result = fn(record)
            if result is not None:
                if result < 0.0:
                    raise ValueError("callback overhead cannot be negative")
                overhead += float(result)
        return overhead

    def emit_device_initialize(self, device_num: int) -> float:
        return self._dispatch(CallbackType.DEVICE_INITIALIZE, device_num)

    def emit_device_finalize(self, device_num: int) -> float:
        return self._dispatch(CallbackType.DEVICE_FINALIZE, device_num)

    def emit_target(self, record: TargetRecord) -> float:
        return self._dispatch(CallbackType.TARGET_EMI, record)

    def emit_target_submit(self, record: TargetSubmitRecord) -> float:
        return self._dispatch(CallbackType.TARGET_SUBMIT_EMI, record)

    def emit_target_data_op(self, record: TargetDataOpRecord) -> float:
        return self._dispatch(CallbackType.TARGET_DATA_OP_EMI, record)
