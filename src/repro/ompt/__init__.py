"""OMPT (OpenMP Tools Interface) layer of the simulator.

OMPDataPerf observes programs exclusively through the OMPT EMI callbacks
``ompt_callback_target_emi``, ``ompt_callback_target_data_op_emi`` and
``ompt_callback_target_submit_emi``.  This package reproduces that boundary:
the runtime simulator emits callback records through
:class:`~repro.ompt.interface.OmptInterface`, and tools (the OMPDataPerf
collector, the Arbalest-style baseline) register callbacks against it.  Tools
never reach into the runtime's internals — everything they know arrives
through these records, exactly as with the real interface.
"""

from repro.ompt.callbacks import (
    CallbackType,
    Endpoint,
    TargetDataOpRecord,
    TargetRecord,
    TargetSubmitRecord,
)
from repro.ompt.interface import OmptInterface, OmptTool

__all__ = [
    "CallbackType",
    "Endpoint",
    "TargetDataOpRecord",
    "TargetRecord",
    "TargetSubmitRecord",
    "OmptInterface",
    "OmptTool",
]
