"""OMPT EMI callback record types.

Field names follow the OMPT specification (device numbers, ``codeptr_ra``,
``bytes``, ``optype``) so the collector code reads like an OMPT tool.  Two
simulator-specific additions:

``payload``
    For data-op records, a read-only view of the bytes being moved.  A real
    tool reads the transferred memory through the source address delivered by
    the callback; the simulator hands the same information over explicitly.
``start_time`` / ``end_time``
    The END record carries the authoritative operation timestamps from the
    virtual clock (a native tool would read a monotonic clock itself).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.events.records import DataOpKind, TargetKind


class CallbackType(enum.Enum):
    """The OMPT callbacks the simulator can deliver."""

    DEVICE_INITIALIZE = "ompt_callback_device_initialize"
    DEVICE_FINALIZE = "ompt_callback_device_finalize"
    TARGET_EMI = "ompt_callback_target_emi"
    TARGET_DATA_OP_EMI = "ompt_callback_target_data_op_emi"
    TARGET_SUBMIT_EMI = "ompt_callback_target_submit_emi"


class Endpoint(enum.Enum):
    """``ompt_scope_endpoint_t``: whether the record marks a begin or an end."""

    BEGIN = "begin"
    END = "end"


@dataclass(frozen=True)
class TargetRecord:
    """`ompt_callback_target_emi` payload: a target region begins or ends."""

    endpoint: Endpoint
    kind: TargetKind
    device_num: int
    target_id: int
    codeptr_ra: Optional[int]
    time: float
    name: Optional[str] = None


@dataclass(frozen=True)
class TargetSubmitRecord:
    """``ompt_callback_target_submit_emi`` payload: a kernel launch."""

    endpoint: Endpoint
    device_num: int
    target_id: int
    host_op_id: int
    requested_num_teams: int
    time: float
    #: END records carry the kernel execution interval
    start_time: Optional[float] = None
    end_time: Optional[float] = None


@dataclass(frozen=True)
class TargetDataOpRecord:
    """``ompt_callback_target_data_op_emi`` payload: one data-mapping operation."""

    endpoint: Endpoint
    optype: DataOpKind
    src_addr: int
    src_device_num: int
    dest_addr: int
    dest_device_num: int
    bytes: int
    target_id: Optional[int]
    host_op_id: int
    codeptr_ra: Optional[int]
    time: float
    #: END records carry the operation interval measured by the runtime
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    #: view of the bytes moved (transfers only)
    payload: Optional[np.ndarray] = None
    #: human-readable variable name (debug aid only; real OMPT has no such field)
    variable: Optional[str] = None
