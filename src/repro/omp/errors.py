"""Exception hierarchy for the offload runtime simulator."""

from __future__ import annotations


class OffloadError(RuntimeError):
    """Base class for all offload-runtime failures."""


class OutOfDeviceMemoryError(OffloadError):
    """Raised when an allocation exceeds the device memory capacity."""

    def __init__(self, requested: int, available: int, device_num: int) -> None:
        super().__init__(
            f"device {device_num}: cannot allocate {requested} bytes "
            f"({available} bytes available)"
        )
        self.requested = requested
        self.available = available
        self.device_num = device_num


class MappingError(OffloadError):
    """Raised for ill-formed map clauses or present-table misuse."""


class UnmappedAccessError(OffloadError):
    """Raised when a kernel touches a host array that is not mapped.

    A real offload runtime would either crash or silently read garbage; the
    simulator turns the situation into a hard error so that application bugs
    cannot masquerade as interesting traces.
    """

    def __init__(self, device_num: int, host_addr: int, name: str | None = None) -> None:
        label = name or f"array at {host_addr:#x}"
        super().__init__(f"kernel on device {device_num} accessed unmapped {label}")
        self.device_num = device_num
        self.host_addr = host_addr
