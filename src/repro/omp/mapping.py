"""Map clauses and the device data environment (present table).

OpenMP's device data environment associates host storage with corresponding
device storage and reference-counts the association: a ``map`` clause on a
construct increments the count on entry and decrements it on exit, and the
allocation / transfers only happen when the count transitions 0→1 or 1→0.
That reference counting is precisely what makes ``target data`` regions the
fix for the duplicate-transfer and repeated-allocation patterns, so it is
implemented faithfully here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.omp.device import DeviceAllocation
from repro.omp.errors import MappingError


def host_addr_of(array: np.ndarray) -> int:
    """The host virtual address of an array's buffer (its ``&a[0]``)."""
    if not isinstance(array, np.ndarray):
        raise TypeError(f"mapped variables must be numpy arrays, got {type(array).__name__}")
    return int(array.__array_interface__["data"][0])


class MapType(enum.Enum):
    """OpenMP map types (plus ``release``/``delete`` used on exit constructs)."""

    TO = "to"
    FROM = "from"
    TOFROM = "tofrom"
    ALLOC = "alloc"
    RELEASE = "release"
    DELETE = "delete"

    @property
    def copies_to_device(self) -> bool:
        return self in (MapType.TO, MapType.TOFROM)

    @property
    def copies_from_device(self) -> bool:
        return self in (MapType.FROM, MapType.TOFROM)

    @property
    def is_exit_only(self) -> bool:
        return self in (MapType.RELEASE, MapType.DELETE)


@dataclass(frozen=True)
class MapClause:
    """A single ``map(type: var)`` clause.

    ``always`` forces the copy even when the variable is already present
    (OpenMP's ``always`` map-type modifier); ``name`` is a debug label used
    in reports and has no semantic effect.
    """

    map_type: MapType
    array: np.ndarray = field(repr=False)
    always: bool = False
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.array, np.ndarray):
            raise TypeError("MapClause.array must be a numpy array")

    @property
    def host_addr(self) -> int:
        return host_addr_of(self.array)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def label(self) -> str:
        return self.name or f"var@{self.host_addr:#x}"


# Convenience constructors so application code reads like OpenMP pragmas.
def to(array: np.ndarray, *, always: bool = False, name: str | None = None) -> MapClause:
    """``map(to: array)``"""
    return MapClause(MapType.TO, array, always=always, name=name)


def from_(array: np.ndarray, *, always: bool = False, name: str | None = None) -> MapClause:
    """``map(from: array)``"""
    return MapClause(MapType.FROM, array, always=always, name=name)


def tofrom(array: np.ndarray, *, always: bool = False, name: str | None = None) -> MapClause:
    """``map(tofrom: array)``"""
    return MapClause(MapType.TOFROM, array, always=always, name=name)


def alloc(array: np.ndarray, *, name: str | None = None) -> MapClause:
    """``map(alloc: array)``"""
    return MapClause(MapType.ALLOC, array, name=name)


def release(array: np.ndarray, *, name: str | None = None) -> MapClause:
    """``map(release: array)`` (for ``target exit data``)"""
    return MapClause(MapType.RELEASE, array, name=name)


def delete(array: np.ndarray, *, name: str | None = None) -> MapClause:
    """``map(delete: array)`` (for ``target exit data``)"""
    return MapClause(MapType.DELETE, array, name=name)


@dataclass
class PresentTableEntry:
    """One live association between host storage and device storage."""

    host_addr: int
    nbytes: int
    allocation: DeviceAllocation
    host_array: np.ndarray = field(repr=False)
    ref_count: int = 1
    #: label of the clause that created the mapping (reporting aid)
    name: Optional[str] = None

    @property
    def device_addr(self) -> int:
        return self.allocation.address

    @property
    def device_buffer(self) -> np.ndarray:
        buf = self.allocation.buffer
        if buf is None:
            raise MappingError(
                f"mapping of {self.name or hex(self.host_addr)} has no device buffer"
            )
        return buf


class DeviceDataEnvironment:
    """The present table for one target device."""

    def __init__(self, device_num: int) -> None:
        self.device_num = device_num
        self._entries: dict[int, PresentTableEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, host_addr: int) -> bool:
        return host_addr in self._entries

    def find(self, host_addr: int) -> Optional[PresentTableEntry]:
        """Present-table lookup by host base address."""
        return self._entries.get(host_addr)

    def find_array(self, array: np.ndarray) -> Optional[PresentTableEntry]:
        return self.find(host_addr_of(array))

    def insert(
        self,
        host_array: np.ndarray,
        allocation: DeviceAllocation,
        *,
        name: Optional[str] = None,
    ) -> PresentTableEntry:
        """Create a new association with a reference count of one."""
        host_addr = host_addr_of(host_array)
        if host_addr in self._entries:
            raise MappingError(
                f"device {self.device_num}: {name or hex(host_addr)} is already mapped"
            )
        entry = PresentTableEntry(
            host_addr=host_addr,
            nbytes=int(host_array.nbytes),
            allocation=allocation,
            host_array=host_array,
            ref_count=1,
            name=name,
        )
        self._entries[host_addr] = entry
        return entry

    def retain(self, entry: PresentTableEntry) -> int:
        """Increment the reference count (variable already present on entry)."""
        entry.ref_count += 1
        return entry.ref_count

    def release(self, entry: PresentTableEntry) -> int:
        """Decrement the reference count; the caller removes it at zero."""
        if entry.ref_count <= 0:
            raise MappingError(
                f"device {self.device_num}: release of {entry.name or hex(entry.host_addr)} "
                "with non-positive reference count"
            )
        entry.ref_count -= 1
        return entry.ref_count

    def remove(self, entry: PresentTableEntry) -> None:
        """Drop the association (after the device storage has been freed)."""
        existing = self._entries.get(entry.host_addr)
        if existing is not entry:
            raise MappingError(
                f"device {self.device_num}: removing an entry that is not in the present table"
            )
        if entry.ref_count != 0:
            raise MappingError(
                f"device {self.device_num}: removing {entry.name or hex(entry.host_addr)} "
                f"with reference count {entry.ref_count}"
            )
        del self._entries[entry.host_addr]

    def live_entries(self) -> list[PresentTableEntry]:
        return list(self._entries.values())

    def mapped_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())
