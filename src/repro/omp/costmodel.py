"""Cost model for host/device transfers, device allocations and kernels.

The constants default to a PCIe-attached data-centre GPU roughly matching
the paper's A100-PCIE-40GB testbed: ~10 us transfer launch latency,
~12 GiB/s sustained host-to-device bandwidth (slightly higher device-to-host),
microsecond-scale allocation costs and a device memory system an order of
magnitude faster than the interconnect.  Absolute numbers do not need to
match the testbed — every evaluation result in the paper that we reproduce
is a ratio (slowdown, speedup, relative savings) — but the *relationships*
do: transfers must have a high startup cost and a bandwidth ceiling, small
transfers must be latency-bound, and kernel time must be able to dominate or
be dominated by data movement depending on the application.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TransferDirection(enum.Enum):
    """Direction of a host/device or device/device data transfer."""

    HOST_TO_DEVICE = "h2d"
    DEVICE_TO_HOST = "d2h"
    DEVICE_TO_DEVICE = "d2d"


_GIB = float(1 << 30)


@dataclass(frozen=True)
class CostModel:
    """Latency/bandwidth cost model used by the runtime simulator.

    All times are in seconds and all rates in bytes/second.
    """

    #: per-operation launch latency of a host-to-device copy
    h2d_latency: float = 10e-6
    #: sustained host-to-device copy bandwidth
    h2d_bandwidth: float = 11.0 * _GIB
    #: per-operation launch latency of a device-to-host copy
    d2h_latency: float = 10e-6
    #: sustained device-to-host copy bandwidth
    d2h_bandwidth: float = 12.5 * _GIB
    #: device-to-device (peer) copy latency and bandwidth
    d2d_latency: float = 8e-6
    d2d_bandwidth: float = 40.0 * _GIB
    #: device memory allocation: fixed driver cost plus a per-byte component
    alloc_latency: float = 6e-6
    alloc_bandwidth: float = 400.0 * _GIB
    #: device memory deallocation
    delete_latency: float = 4e-6
    delete_bandwidth: float = 800.0 * _GIB
    #: kernel launch overhead charged for every target region execution
    kernel_launch_latency: float = 8e-6
    #: effective device processing rate used when a kernel does not provide
    #: its own duration: bytes touched per second (memory-bandwidth bound)
    device_compute_rate: float = 900.0 * _GIB
    #: host-side processing rate used for host compute phases of applications
    host_compute_rate: float = 20.0 * _GIB

    def __post_init__(self) -> None:
        for name in (
            "h2d_bandwidth",
            "d2h_bandwidth",
            "d2d_bandwidth",
            "alloc_bandwidth",
            "delete_bandwidth",
            "device_compute_rate",
            "host_compute_rate",
        ):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")
        for name in (
            "h2d_latency",
            "d2h_latency",
            "d2d_latency",
            "alloc_latency",
            "delete_latency",
            "kernel_launch_latency",
        ):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} cannot be negative")

    # ------------------------------------------------------------------ #
    def transfer_time(self, nbytes: int, direction: TransferDirection) -> float:
        """Duration of a data transfer of ``nbytes`` in ``direction``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if direction is TransferDirection.HOST_TO_DEVICE:
            return self.h2d_latency + nbytes / self.h2d_bandwidth
        if direction is TransferDirection.DEVICE_TO_HOST:
            return self.d2h_latency + nbytes / self.d2h_bandwidth
        if direction is TransferDirection.DEVICE_TO_DEVICE:
            return self.d2d_latency + nbytes / self.d2d_bandwidth
        raise ValueError(f"unknown transfer direction {direction!r}")

    def transfer_bandwidth(self, nbytes: int, direction: TransferDirection) -> float:
        """Effective bandwidth (bytes/s) of a transfer of ``nbytes``.

        Used by the Figure 5 reproduction to plot the transfer-throughput
        curve against hash throughput.
        """
        t = self.transfer_time(nbytes, direction)
        if t <= 0.0:
            return float("inf")
        return nbytes / t

    def alloc_time(self, nbytes: int) -> float:
        """Duration of a device memory allocation."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.alloc_latency + nbytes / self.alloc_bandwidth

    def delete_time(self, nbytes: int) -> float:
        """Duration of a device memory deallocation."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.delete_latency + nbytes / self.delete_bandwidth

    def default_kernel_time(self, bytes_touched: int) -> float:
        """Kernel duration estimate when the application provides none."""
        if bytes_touched < 0:
            raise ValueError("bytes_touched must be non-negative")
        return self.kernel_launch_latency + bytes_touched / self.device_compute_rate

    def host_compute_time(self, bytes_touched: int) -> float:
        """Duration of a host-side compute phase touching ``bytes_touched``."""
        if bytes_touched < 0:
            raise ValueError("bytes_touched must be non-negative")
        return bytes_touched / self.host_compute_rate


def default_cost_model() -> CostModel:
    """The cost model used throughout the evaluation harness."""
    return CostModel()
