"""The offload runtime simulator: ``target`` constructs over simulated devices.

Applications written against :class:`OffloadRuntime` look structurally like
OpenMP offload programs::

    rt = OffloadRuntime(num_devices=1)
    a = np.zeros(N)
    with rt.target_data(to(a)):                    # pragma omp target data map(to: a)
        rt.target(maps=[tofrom(s)], reads=[a, s],  # pragma omp target map(tofrom: s)
                  writes=[s], kernel=lambda dev: dev[s].__iadd__(dev[a].sum()))
    rt.finish()

Every construct drives the device data environment (present table), the
device allocator, the cost model and the virtual clock, and emits OMPT EMI
callback records.  Attached tools (OMPDataPerf's collector, the Arbalest
baseline) observe the program exclusively through those callbacks.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.dwarf.debuginfo import DebugInfoRegistry
from repro.events.records import DataOpKind, TargetKind
from repro.omp.clock import VirtualClock
from repro.omp.costmodel import CostModel, TransferDirection, default_cost_model
from repro.omp.device import Device
from repro.omp.errors import MappingError, UnmappedAccessError
from repro.omp.mapping import (
    DeviceDataEnvironment,
    MapClause,
    MapType,
    PresentTableEntry,
    host_addr_of,
    tofrom,
)
from repro.ompt.callbacks import (
    Endpoint,
    TargetDataOpRecord,
    TargetRecord,
    TargetSubmitRecord,
)
from repro.ompt.interface import OmptInterface

MapSpec = Union[MapClause, np.ndarray]
KernelFn = Callable[["DeviceView"], None]
KernelTime = Union[None, float, Callable[[int], float]]


@dataclass(frozen=True)
class KernelAccess:
    """A kernel's access to one mapped variable (read / write / read-write).

    This information is *not* available through OMPT — the paper is explicit
    that OMPDataPerf avoids the instrumentation that would be needed to
    observe it.  It is exposed only through the runtime's access-probe hook,
    which models the binary instrumentation used by Arbalest-Vec and by the
    ground-truth oracle in the test suite.
    """

    array: np.ndarray = field(repr=False)
    #: 'r' read, 'w' full write, 'rw' read-write, 'pw' partial write (the
    #: kernel writes only some elements of the buffer)
    mode: str = "r"

    def __post_init__(self) -> None:
        if self.mode not in ("r", "w", "rw", "pw"):
            raise ValueError("access mode must be 'r', 'w', 'rw' or 'pw'")

    @property
    def reads(self) -> bool:
        return "r" in self.mode and self.mode != "pw" or self.mode == "rw"

    @property
    def writes(self) -> bool:
        return self.mode in ("w", "rw", "pw")

    @property
    def full_write(self) -> bool:
        return self.mode in ("w", "rw")

    @property
    def host_addr(self) -> int:
        return host_addr_of(self.array)


@dataclass(frozen=True)
class KernelLaunchRecord:
    """Delivered to access probes when a kernel executes (instrumentation channel)."""

    target_id: int
    device_num: int
    codeptr_ra: Optional[int]
    start_time: float
    end_time: float
    accesses: tuple[KernelAccess, ...]
    name: Optional[str] = None


class DeviceView:
    """Kernel-side view of the device data environment.

    Indexing with a host array returns the corresponding *device* buffer; the
    kernel mutates that buffer, never the host array, so host and device
    copies genuinely diverge until a transfer synchronises them.
    """

    def __init__(self, environment: DeviceDataEnvironment) -> None:
        self._environment = environment

    def __getitem__(self, host_array: np.ndarray) -> np.ndarray:
        entry = self._environment.find_array(host_array)
        if entry is None:
            raise UnmappedAccessError(
                device_num=self._environment.device_num,
                host_addr=host_addr_of(host_array),
            )
        return entry.device_buffer

    def is_mapped(self, host_array: np.ndarray) -> bool:
        return self._environment.find_array(host_array) is not None


@dataclass
class TargetRegionHandle:
    """Returned by ``target_data`` context entry; mostly useful in tests."""

    target_id: int
    device_num: int
    clauses: tuple[MapClause, ...]


class OffloadRuntime:
    """Simulated OpenMP offload runtime (host + ``num_devices`` target devices)."""

    def __init__(
        self,
        num_devices: int = 1,
        *,
        cost_model: Optional[CostModel] = None,
        ompt: Optional[OmptInterface] = None,
        device_memory_capacity: int = 40 * (1 << 30),
        default_device: int = 0,
        program_name: Optional[str] = None,
        debug_info: Optional[DebugInfoRegistry] = None,
    ) -> None:
        if num_devices < 1:
            raise ValueError("the simulator requires at least one target device")
        if not 0 <= default_device < num_devices:
            raise ValueError("default_device out of range")
        self.num_devices = num_devices
        self.default_device = default_device
        self.program_name = program_name
        self.cost_model = cost_model or default_cost_model()
        self.ompt = ompt or OmptInterface()
        self.clock = VirtualClock()
        self.debug_info = debug_info or DebugInfoRegistry()
        self.devices: list[Device] = [
            Device.create(d, memory_capacity=device_memory_capacity) for d in range(num_devices)
        ]
        self.environments: list[DeviceDataEnvironment] = [
            DeviceDataEnvironment(d) for d in range(num_devices)
        ]
        self._next_target_id = 1
        self._next_host_op_id = 1
        self._access_probes: list[Callable[[KernelLaunchRecord], Optional[float]]] = []
        self._finished = False
        self.total_runtime: Optional[float] = None
        for d in range(num_devices):
            self.ompt.emit_device_initialize(d)

    # ------------------------------------------------------------------ #
    # Device helpers
    # ------------------------------------------------------------------ #
    @property
    def host_device_num(self) -> int:
        """The OpenMP initial-device number (the host)."""
        return self.num_devices

    def device(self, device_num: Optional[int] = None) -> Device:
        return self.devices[self._resolve_device(device_num)]

    def environment(self, device_num: Optional[int] = None) -> DeviceDataEnvironment:
        return self.environments[self._resolve_device(device_num)]

    def _resolve_device(self, device_num: Optional[int]) -> int:
        if device_num is None:
            return self.default_device
        if not 0 <= device_num < self.num_devices:
            raise ValueError(f"device {device_num} does not exist")
        return device_num

    def set_access_probe(self, probe: Callable[[KernelLaunchRecord], Optional[float]]) -> None:
        """Register an instrumentation probe observing kernel memory accesses.

        This models binary instrumentation (used by the Arbalest-Vec baseline
        and the ground-truth oracle), *not* OMPT; OMPDataPerf never uses it.
        The probe may return seconds of overhead to charge to the clock.
        """
        self._access_probes.append(probe)

    # ------------------------------------------------------------------ #
    # Internal event helpers
    # ------------------------------------------------------------------ #
    def _charge_overhead(self, seconds: float) -> None:
        if seconds:
            self.clock.charge_tool_overhead(seconds)

    def _new_target_id(self) -> int:
        tid = self._next_target_id
        self._next_target_id += 1
        return tid

    def _new_host_op_id(self) -> int:
        oid = self._next_host_op_id
        self._next_host_op_id += 1
        return oid

    def _emit_data_op(
        self,
        *,
        optype: DataOpKind,
        src_addr: int,
        src_device_num: int,
        dest_addr: int,
        dest_device_num: int,
        nbytes: int,
        duration: float,
        target_id: Optional[int],
        codeptr: Optional[int],
        payload: Optional[np.ndarray] = None,
        variable: Optional[str] = None,
    ) -> None:
        host_op_id = self._new_host_op_id()
        begin_time = self.clock.now
        begin = TargetDataOpRecord(
            endpoint=Endpoint.BEGIN,
            optype=optype,
            src_addr=src_addr,
            src_device_num=src_device_num,
            dest_addr=dest_addr,
            dest_device_num=dest_device_num,
            bytes=nbytes,
            target_id=target_id,
            host_op_id=host_op_id,
            codeptr_ra=codeptr,
            time=begin_time,
            payload=payload,
            variable=variable,
        )
        self._charge_overhead(self.ompt.emit_target_data_op(begin))
        start, end = self.clock.span(duration)
        end_record = TargetDataOpRecord(
            endpoint=Endpoint.END,
            optype=optype,
            src_addr=src_addr,
            src_device_num=src_device_num,
            dest_addr=dest_addr,
            dest_device_num=dest_device_num,
            bytes=nbytes,
            target_id=target_id,
            host_op_id=host_op_id,
            codeptr_ra=codeptr,
            time=end,
            start_time=start,
            end_time=end,
            payload=payload,
            variable=variable,
        )
        self._charge_overhead(self.ompt.emit_target_data_op(end_record))

    def _emit_target(
        self,
        *,
        endpoint: Endpoint,
        kind: TargetKind,
        device_num: int,
        target_id: int,
        codeptr: Optional[int],
        name: Optional[str],
    ) -> None:
        record = TargetRecord(
            endpoint=endpoint,
            kind=kind,
            device_num=device_num,
            target_id=target_id,
            codeptr_ra=codeptr,
            time=self.clock.now,
            name=name,
        )
        self._charge_overhead(self.ompt.emit_target(record))

    # ------------------------------------------------------------------ #
    # Mapping machinery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _normalize_maps(maps: Iterable[MapSpec]) -> list[MapClause]:
        clauses: list[MapClause] = []
        for spec in maps:
            if isinstance(spec, MapClause):
                clauses.append(spec)
            elif isinstance(spec, np.ndarray):
                clauses.append(tofrom(spec))
            else:
                raise TypeError(
                    f"map specification must be a MapClause or numpy array, got {type(spec).__name__}"
                )
        return clauses

    def _implicit_clauses(
        self,
        explicit: Sequence[MapClause],
        reads: Sequence[np.ndarray],
        writes: Sequence[np.ndarray],
        device_num: int,
    ) -> list[MapClause]:
        """OpenMP implicit data-mapping rules for referenced arrays.

        An array referenced by the kernel but not covered by an explicit map
        clause is implicitly mapped ``tofrom`` (the default for aggregate /
        pointer data).  If the array is already present in the device data
        environment only the reference count changes, which the normal enter
        path already handles.
        """
        explicit_addrs = {c.host_addr for c in explicit}
        seen: set[int] = set()
        implicit: list[MapClause] = []
        for arr in list(reads) + list(writes):
            addr = host_addr_of(arr)
            if addr in explicit_addrs or addr in seen:
                continue
            seen.add(addr)
            implicit.append(tofrom(arr, name=f"implicit@{addr:#x}"))
        return implicit

    def _map_enter(
        self,
        clause: MapClause,
        device_num: int,
        target_id: Optional[int],
        codeptr: Optional[int],
    ) -> PresentTableEntry:
        if clause.map_type.is_exit_only:
            raise MappingError(
                f"map({clause.map_type.value}: ...) is only valid on exit constructs"
            )
        env = self.environments[device_num]
        device = self.devices[device_num]
        entry = env.find(clause.host_addr)
        if entry is not None:
            env.retain(entry)
            if clause.always and clause.map_type.copies_to_device:
                self._transfer_to_device(entry, device_num, target_id, codeptr, clause.label)
            return entry

        # 0 -> 1 transition: allocate device storage, then copy if required.
        allocation = device.memory.allocate(clause.nbytes)
        allocation.buffer = np.empty_like(clause.array)
        entry = env.insert(clause.array, allocation, name=clause.name)
        self._emit_data_op(
            optype=DataOpKind.ALLOC,
            src_addr=clause.host_addr,
            src_device_num=self.host_device_num,
            dest_addr=allocation.address,
            dest_device_num=device_num,
            nbytes=clause.nbytes,
            duration=self.cost_model.alloc_time(clause.nbytes),
            target_id=target_id,
            codeptr=codeptr,
            variable=clause.label,
        )
        if clause.map_type.copies_to_device:
            self._transfer_to_device(entry, device_num, target_id, codeptr, clause.label)
        return entry

    def _map_exit(
        self,
        clause: MapClause,
        device_num: int,
        target_id: Optional[int],
        codeptr: Optional[int],
    ) -> None:
        env = self.environments[device_num]
        entry = env.find(clause.host_addr)
        if entry is None:
            # Releasing something that is not present is a no-op per the spec.
            return

        if clause.map_type is MapType.DELETE:
            entry.ref_count = 0
        else:
            remaining = env.release(entry)
            if remaining > 0:
                return

        # 1 -> 0 transition: copy back if requested, then free device storage.
        if clause.map_type.copies_from_device:
            self._transfer_from_device(entry, device_num, target_id, codeptr, clause.label)
        self._delete_mapping(entry, device_num, target_id, codeptr, clause.label)

    def _transfer_to_device(
        self,
        entry: PresentTableEntry,
        device_num: int,
        target_id: Optional[int],
        codeptr: Optional[int],
        label: Optional[str],
    ) -> None:
        payload = np.array(entry.host_array, copy=True)
        entry.device_buffer[...] = payload
        self._emit_data_op(
            optype=DataOpKind.TRANSFER_TO_DEVICE,
            src_addr=entry.host_addr,
            src_device_num=self.host_device_num,
            dest_addr=entry.device_addr,
            dest_device_num=device_num,
            nbytes=entry.nbytes,
            duration=self.cost_model.transfer_time(entry.nbytes, TransferDirection.HOST_TO_DEVICE),
            target_id=target_id,
            codeptr=codeptr,
            payload=payload,
            variable=label,
        )

    def _transfer_from_device(
        self,
        entry: PresentTableEntry,
        device_num: int,
        target_id: Optional[int],
        codeptr: Optional[int],
        label: Optional[str],
    ) -> None:
        payload = np.array(entry.device_buffer, copy=True)
        entry.host_array[...] = payload
        self._emit_data_op(
            optype=DataOpKind.TRANSFER_FROM_DEVICE,
            src_addr=entry.device_addr,
            src_device_num=device_num,
            dest_addr=entry.host_addr,
            dest_device_num=self.host_device_num,
            nbytes=entry.nbytes,
            duration=self.cost_model.transfer_time(entry.nbytes, TransferDirection.DEVICE_TO_HOST),
            target_id=target_id,
            codeptr=codeptr,
            payload=payload,
            variable=label,
        )

    def _delete_mapping(
        self,
        entry: PresentTableEntry,
        device_num: int,
        target_id: Optional[int],
        codeptr: Optional[int],
        label: Optional[str],
    ) -> None:
        env = self.environments[device_num]
        device = self.devices[device_num]
        device.memory.free(entry.device_addr)
        self._emit_data_op(
            optype=DataOpKind.DELETE,
            src_addr=entry.host_addr,
            src_device_num=self.host_device_num,
            dest_addr=entry.device_addr,
            dest_device_num=device_num,
            nbytes=entry.nbytes,
            duration=self.cost_model.delete_time(entry.nbytes),
            target_id=target_id,
            codeptr=codeptr,
            variable=label,
        )
        env.remove(entry)

    # ------------------------------------------------------------------ #
    # Constructs
    # ------------------------------------------------------------------ #
    def target(
        self,
        *,
        maps: Iterable[MapSpec] = (),
        reads: Sequence[np.ndarray] = (),
        writes: Sequence[np.ndarray] = (),
        partial_writes: Sequence[np.ndarray] = (),
        kernel: Optional[KernelFn] = None,
        kernel_time: KernelTime = None,
        device_num: Optional[int] = None,
        name: Optional[str] = None,
        teams: int = 0,
    ) -> None:
        """Execute a ``target`` region (map entry, kernel, map exit).

        ``reads`` / ``writes`` / ``partial_writes`` declare the host arrays
        the kernel touches; they drive the implicit-mapping rules and the
        instrumentation probe (a *partial* write covers only some elements
        of the buffer — the distinction matters to correctness checkers, not
        to OMPDataPerf).  ``kernel`` receives a :class:`DeviceView`;
        ``kernel_time`` overrides the cost-model estimate of the kernel's
        duration (a float in seconds or a callable of the number of mapped
        bytes).
        """
        self._check_not_finished()
        dev = self._resolve_device(device_num)
        codeptr = self.debug_info.register_caller()
        target_id = self._new_target_id()
        explicit = self._normalize_maps(maps)
        implicit = self._implicit_clauses(
            explicit, list(reads) + list(partial_writes), writes, dev
        )
        clauses = explicit + implicit

        self._emit_target(
            endpoint=Endpoint.BEGIN,
            kind=TargetKind.TARGET,
            device_num=dev,
            target_id=target_id,
            codeptr=codeptr,
            name=name,
        )
        entries = [self._map_enter(c, dev, target_id, codeptr) for c in clauses]
        self._run_kernel(
            device_num=dev,
            target_id=target_id,
            codeptr=codeptr,
            kernel=kernel,
            kernel_time=kernel_time,
            reads=reads,
            writes=writes,
            partial_writes=partial_writes,
            entries=entries,
            teams=teams,
            name=name,
        )
        for clause in reversed(clauses):
            self._map_exit(clause, dev, target_id, codeptr)
        self._emit_target(
            endpoint=Endpoint.END,
            kind=TargetKind.TARGET,
            device_num=dev,
            target_id=target_id,
            codeptr=codeptr,
            name=name,
        )

    def _run_kernel(
        self,
        *,
        device_num: int,
        target_id: int,
        codeptr: Optional[int],
        kernel: Optional[KernelFn],
        kernel_time: KernelTime,
        reads: Sequence[np.ndarray],
        writes: Sequence[np.ndarray],
        partial_writes: Sequence[np.ndarray],
        entries: Sequence[PresentTableEntry],
        teams: int,
        name: Optional[str],
    ) -> None:
        device = self.devices[device_num]
        env = self.environments[device_num]
        host_op_id = self._new_host_op_id()

        submit_begin = TargetSubmitRecord(
            endpoint=Endpoint.BEGIN,
            device_num=device_num,
            target_id=target_id,
            host_op_id=host_op_id,
            requested_num_teams=teams,
            time=self.clock.now,
        )
        self._charge_overhead(self.ompt.emit_target_submit(submit_begin))

        view = DeviceView(env)
        if kernel is not None:
            kernel(view)
        device.kernels_launched += 1

        bytes_touched = sum(e.nbytes for e in entries)
        if kernel_time is None:
            duration = self.cost_model.default_kernel_time(bytes_touched)
        elif callable(kernel_time):
            duration = float(kernel_time(bytes_touched))
        else:
            duration = float(kernel_time)
        if duration < 0.0:
            raise ValueError("kernel_time must be non-negative")
        start, end = self.clock.span(duration)

        submit_end = TargetSubmitRecord(
            endpoint=Endpoint.END,
            device_num=device_num,
            target_id=target_id,
            host_op_id=host_op_id,
            requested_num_teams=teams,
            time=end,
            start_time=start,
            end_time=end,
        )
        self._charge_overhead(self.ompt.emit_target_submit(submit_end))

        if self._access_probes:
            accesses = tuple(
                [KernelAccess(arr, "r") for arr in reads]
                + [KernelAccess(arr, "w") for arr in writes]
                + [KernelAccess(arr, "pw") for arr in partial_writes]
            )
            record = KernelLaunchRecord(
                target_id=target_id,
                device_num=device_num,
                codeptr_ra=codeptr,
                start_time=start,
                end_time=end,
                accesses=accesses,
                name=name,
            )
            for probe in self._access_probes:
                overhead = probe(record)
                if overhead:
                    self.clock.advance(float(overhead))

    @contextlib.contextmanager
    def target_data(
        self,
        *maps: MapSpec,
        device_num: Optional[int] = None,
        name: Optional[str] = None,
    ):
        """``target data`` region: maps live for the duration of the ``with`` block."""
        self._check_not_finished()
        dev = self._resolve_device(device_num)
        codeptr = self.debug_info.register_caller()
        target_id = self._new_target_id()
        clauses = self._normalize_maps(maps)

        self._emit_target(
            endpoint=Endpoint.BEGIN,
            kind=TargetKind.ENTER_DATA,
            device_num=dev,
            target_id=target_id,
            codeptr=codeptr,
            name=name,
        )
        for clause in clauses:
            self._map_enter(clause, dev, target_id, codeptr)
        self._emit_target(
            endpoint=Endpoint.END,
            kind=TargetKind.ENTER_DATA,
            device_num=dev,
            target_id=target_id,
            codeptr=codeptr,
            name=name,
        )
        try:
            yield TargetRegionHandle(target_id=target_id, device_num=dev, clauses=tuple(clauses))
        finally:
            exit_id = self._new_target_id()
            self._emit_target(
                endpoint=Endpoint.BEGIN,
                kind=TargetKind.EXIT_DATA,
                device_num=dev,
                target_id=exit_id,
                codeptr=codeptr,
                name=name,
            )
            for clause in reversed(clauses):
                self._map_exit(clause, dev, exit_id, codeptr)
            self._emit_target(
                endpoint=Endpoint.END,
                kind=TargetKind.EXIT_DATA,
                device_num=dev,
                target_id=exit_id,
                codeptr=codeptr,
                name=name,
            )

    def target_enter_data(
        self,
        *maps: MapSpec,
        device_num: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        """``target enter data``: establish mappings that persist until exit data."""
        self._check_not_finished()
        dev = self._resolve_device(device_num)
        codeptr = self.debug_info.register_caller()
        target_id = self._new_target_id()
        clauses = self._normalize_maps(maps)
        self._emit_target(
            endpoint=Endpoint.BEGIN,
            kind=TargetKind.ENTER_DATA,
            device_num=dev,
            target_id=target_id,
            codeptr=codeptr,
            name=name,
        )
        for clause in clauses:
            if clause.map_type in (MapType.FROM, MapType.RELEASE, MapType.DELETE):
                raise MappingError(
                    f"map({clause.map_type.value}: ...) is not valid on target enter data"
                )
            self._map_enter(clause, dev, target_id, codeptr)
        self._emit_target(
            endpoint=Endpoint.END,
            kind=TargetKind.ENTER_DATA,
            device_num=dev,
            target_id=target_id,
            codeptr=codeptr,
            name=name,
        )

    def target_exit_data(
        self,
        *maps: MapSpec,
        device_num: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        """``target exit data``: tear down mappings established by enter data."""
        self._check_not_finished()
        dev = self._resolve_device(device_num)
        codeptr = self.debug_info.register_caller()
        target_id = self._new_target_id()
        clauses = self._normalize_maps(maps)
        self._emit_target(
            endpoint=Endpoint.BEGIN,
            kind=TargetKind.EXIT_DATA,
            device_num=dev,
            target_id=target_id,
            codeptr=codeptr,
            name=name,
        )
        for clause in clauses:
            if clause.map_type in (MapType.TO, MapType.TOFROM, MapType.ALLOC):
                raise MappingError(
                    f"map({clause.map_type.value}: ...) is not valid on target exit data"
                )
            self._map_exit(clause, dev, target_id, codeptr)
        self._emit_target(
            endpoint=Endpoint.END,
            kind=TargetKind.EXIT_DATA,
            device_num=dev,
            target_id=target_id,
            codeptr=codeptr,
            name=name,
        )

    def target_update(
        self,
        *,
        to: Sequence[np.ndarray] = (),
        from_: Sequence[np.ndarray] = (),
        device_num: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        """``target update``: refresh device or host copies of present variables."""
        self._check_not_finished()
        if not to and not from_:
            raise MappingError("target update requires at least one to/from motion clause")
        dev = self._resolve_device(device_num)
        codeptr = self.debug_info.register_caller()
        target_id = self._new_target_id()
        env = self.environments[dev]

        self._emit_target(
            endpoint=Endpoint.BEGIN,
            kind=TargetKind.UPDATE,
            device_num=dev,
            target_id=target_id,
            codeptr=codeptr,
            name=name,
        )
        for arr in to:
            entry = env.find_array(arr)
            if entry is None:
                raise MappingError("target update to(...) of a variable that is not mapped")
            self._transfer_to_device(entry, dev, target_id, codeptr, entry.name)
        for arr in from_:
            entry = env.find_array(arr)
            if entry is None:
                raise MappingError("target update from(...) of a variable that is not mapped")
            self._transfer_from_device(entry, dev, target_id, codeptr, entry.name)
        self._emit_target(
            endpoint=Endpoint.END,
            kind=TargetKind.UPDATE,
            device_num=dev,
            target_id=target_id,
            codeptr=codeptr,
            name=name,
        )

    # ------------------------------------------------------------------ #
    # Host-side phases and program end
    # ------------------------------------------------------------------ #
    def host_compute(
        self,
        *,
        seconds: Optional[float] = None,
        nbytes: Optional[int] = None,
    ) -> None:
        """Charge a host-side (CPU) compute phase to the clock.

        Applications use this for their serial phases (initialisation,
        verification, host-side updates between kernels) so that the virtual
        runtime reflects the whole program, not just the offloaded part.
        """
        self._check_not_finished()
        if (seconds is None) == (nbytes is None):
            raise ValueError("provide exactly one of seconds or nbytes")
        duration = float(seconds) if seconds is not None else self.cost_model.host_compute_time(int(nbytes))
        if duration < 0.0:
            raise ValueError("host compute time must be non-negative")
        self.clock.advance(duration)

    def finish(self) -> float:
        """End the program: finalize devices and tools, freeze the runtime clock."""
        if self._finished:
            return self.total_runtime or self.clock.now
        live = [
            (d, entry)
            for d, env in enumerate(self.environments)
            for entry in env.live_entries()
        ]
        if live:
            names = ", ".join(entry.name or hex(entry.host_addr) for _, entry in live)
            raise MappingError(f"program finished with live device mappings: {names}")
        for d in range(self.num_devices):
            self.ompt.emit_device_finalize(d)
        self.ompt.finalize_tools()
        self._finished = True
        self.total_runtime = self.clock.now
        return self.total_runtime

    def _check_not_finished(self) -> None:
        if self._finished:
            raise RuntimeError("the runtime has already finished")
