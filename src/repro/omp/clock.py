"""The virtual clock driving the discrete-event simulation.

All durations in the simulator come from the cost model; the clock merely
accumulates them.  Keeping it as an explicit object (rather than a float
threaded through every call) lets the OMPT layer charge tool overhead into
the same timeline, which is how the runtime-overhead experiment (Figure 2)
is reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class VirtualClock:
    """A monotonically advancing virtual time source (seconds)."""

    now: float = 0.0
    #: cumulative time attributed to the attached tool (hashing + event
    #: recording); included in ``now`` but tracked separately so overhead can
    #: be reported without a second run.
    tool_overhead: float = field(default=0.0)

    def advance(self, seconds: float) -> float:
        """Advance the clock and return the new time."""
        if seconds < 0.0:
            raise ValueError("cannot advance the clock backwards")
        self.now += seconds
        return self.now

    def charge_tool_overhead(self, seconds: float) -> float:
        """Advance the clock, attributing the time to the attached tool."""
        if seconds < 0.0:
            raise ValueError("tool overhead cannot be negative")
        self.tool_overhead += seconds
        self.now += seconds
        return self.now

    def span(self, seconds: float) -> tuple[float, float]:
        """Advance by ``seconds`` and return the ``(start, end)`` interval."""
        start = self.now
        end = self.advance(seconds)
        return start, end

    def reset(self) -> None:
        self.now = 0.0
        self.tool_overhead = 0.0
