"""Target device model: memory pool, allocator and device-side buffers.

Each simulated device owns a :class:`DeviceMemoryPool`.  Allocations return
synthetic device addresses; the pool also stores the device-side *contents*
(as numpy arrays), because the runtime must be able to produce the exact
bytes a device-to-host transfer would move — that is what makes round-trip
detection (unchanged content hashing to the same value) come out naturally
rather than by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.omp.errors import MappingError, OutOfDeviceMemoryError

#: Base of the synthetic device address space.  Device ``d`` allocates from
#: ``_DEVICE_ADDR_BASE + d * _DEVICE_ADDR_STRIDE`` so addresses never collide
#: across devices (useful when debugging multi-GPU traces).
_DEVICE_ADDR_BASE = 0x7F00_0000_0000
_DEVICE_ADDR_STRIDE = 0x0100_0000_0000
#: Allocation granularity (the CUDA allocator rounds to 256-byte lines).
_ALLOC_ALIGNMENT = 256


@dataclass
class DeviceAllocation:
    """A live allocation on a device."""

    address: int
    nbytes: int
    #: device-side copy of the mapped data (dtype/shape of the host array)
    buffer: Optional[np.ndarray] = None


class DeviceMemoryPool:
    """A simple aligned allocator with address reuse after free.

    The reuse behaviour matters for realism: device allocators commonly hand
    back the address that was just freed when the request size matches, which
    is exactly the situation in which Algorithm 3 needs the allocation *size*
    in its key to avoid conflating different variables mapped to the same
    device address over time.
    """

    def __init__(self, device_num: int, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("device memory capacity must be positive")
        self.device_num = device_num
        self.capacity = capacity
        self.used = 0
        self.peak_used = 0
        self._next_addr = _DEVICE_ADDR_BASE + device_num * _DEVICE_ADDR_STRIDE
        self._live: dict[int, DeviceAllocation] = {}
        self._free_by_size: dict[int, list[int]] = {}
        self.total_allocs = 0
        self.total_frees = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def _aligned(nbytes: int) -> int:
        if nbytes <= 0:
            return _ALLOC_ALIGNMENT
        return ((nbytes + _ALLOC_ALIGNMENT - 1) // _ALLOC_ALIGNMENT) * _ALLOC_ALIGNMENT

    def allocate(self, nbytes: int) -> DeviceAllocation:
        """Allocate ``nbytes`` and return the live allocation record."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        padded = self._aligned(nbytes)
        if self.used + padded > self.capacity:
            raise OutOfDeviceMemoryError(
                requested=padded,
                available=self.capacity - self.used,
                device_num=self.device_num,
            )
        free_list = self._free_by_size.get(padded)
        if free_list:
            addr = free_list.pop()
        else:
            addr = self._next_addr
            self._next_addr += padded
        alloc = DeviceAllocation(address=addr, nbytes=nbytes)
        self._live[addr] = alloc
        self.used += padded
        self.peak_used = max(self.peak_used, self.used)
        self.total_allocs += 1
        return alloc

    def free(self, address: int) -> DeviceAllocation:
        """Free a live allocation, making its address reusable."""
        alloc = self._live.pop(address, None)
        if alloc is None:
            raise MappingError(
                f"device {self.device_num}: free of unknown address {address:#x}"
            )
        padded = self._aligned(alloc.nbytes)
        self.used -= padded
        self._free_by_size.setdefault(padded, []).append(address)
        self.total_frees += 1
        return alloc

    def lookup(self, address: int) -> DeviceAllocation:
        alloc = self._live.get(address)
        if alloc is None:
            raise MappingError(
                f"device {self.device_num}: access to unallocated address {address:#x}"
            )
        return alloc

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    @property
    def available(self) -> int:
        return self.capacity - self.used


@dataclass
class Device:
    """A target device: number, memory pool and bookkeeping counters."""

    device_num: int
    memory: DeviceMemoryPool
    name: str = "simulated-gpu"
    #: count of kernels executed on this device
    kernels_launched: int = field(default=0)

    @classmethod
    def create(
        cls,
        device_num: int,
        *,
        memory_capacity: int = 40 * (1 << 30),
        name: str = "simulated-gpu",
    ) -> "Device":
        return cls(
            device_num=device_num,
            memory=DeviceMemoryPool(device_num, memory_capacity),
            name=name,
        )
