"""OpenMP offload runtime simulator.

This package is the substrate substitution for LLVM's ``libomp`` /
``libomptarget`` offload runtime and the attached GPU (see DESIGN.md §2).
It provides:

* a host plus an arbitrary number of target devices, each with its own
  memory pool and allocator (:mod:`repro.omp.device`);
* a device data environment with reference-counted present-table semantics
  and the OpenMP map types (:mod:`repro.omp.mapping`);
* the offloading constructs — ``target``, ``target data``,
  ``target enter/exit data``, ``target update`` — with implicit-mapping
  rules (:mod:`repro.omp.runtime`);
* a calibrated cost model and virtual clock so that every operation has a
  realistic duration (:mod:`repro.omp.costmodel`, :mod:`repro.omp.clock`).

Programs written against this API behave like OpenMP offload programs as far
as an OMPT tool can observe: the sequence, sizing, timing and content of
data-mapping operations is what the real runtime would produce.
"""

from repro.omp.clock import VirtualClock
from repro.omp.costmodel import CostModel, TransferDirection
from repro.omp.device import Device, DeviceMemoryPool
from repro.omp.errors import (
    MappingError,
    OffloadError,
    OutOfDeviceMemoryError,
    UnmappedAccessError,
)
from repro.omp.mapping import DeviceDataEnvironment, MapClause, MapType, PresentTableEntry
from repro.omp.runtime import KernelAccess, OffloadRuntime, TargetRegionHandle

__all__ = [
    "VirtualClock",
    "CostModel",
    "TransferDirection",
    "Device",
    "DeviceMemoryPool",
    "MappingError",
    "OffloadError",
    "OutOfDeviceMemoryError",
    "UnmappedAccessError",
    "DeviceDataEnvironment",
    "MapClause",
    "MapType",
    "PresentTableEntry",
    "KernelAccess",
    "OffloadRuntime",
    "TargetRegionHandle",
]
