"""Experiment harness: one module per table/figure of the paper's evaluation.

Every module exposes ``run(...)`` returning plain data (lists of dicts /
dataclasses) plus ``render(result)`` producing the human-readable table.
``repro.experiments.runner`` ties them together and is what the
``examples/run_paper_experiments.py`` script and the benchmark suite call.

| Module                  | Reproduces                                        |
|-------------------------|---------------------------------------------------|
| ``fig2_overhead``       | Figure 2 — runtime overhead (slowdown)            |
| ``fig3_space``          | Figure 3 — peak space overhead in bytes           |
| ``table1_issues``       | Table 1 — issues detected per application         |
| ``fig4_speedup``        | Figure 4 — predicted vs actual speedup            |
| ``table2_comparison``   | Table 2 — OMPDataPerf vs Arbalest-Vec             |
| ``table3_runtime``      | Table 3 — runtime before/after fixing issues      |
| ``table4_hashrate``     | Table 4 — hash rate per hash function             |
| ``fig5_hash_throughput``| Figure 5 — hash throughput vs data size           |
| ``table5_inputs``       | Table 5 — benchmark inputs                        |
| ``table6_ompt_support`` | Table 6 — OMPT feature support per compiler       |
"""

__all__ = [
    "common",
    "fig2_overhead",
    "fig3_space",
    "table1_issues",
    "fig4_speedup",
    "table2_comparison",
    "table3_runtime",
    "table4_hashrate",
    "fig5_hash_throughput",
    "table5_inputs",
    "table6_ompt_support",
    "runner",
]
