"""Table 2: issue classes reported by OMPDataPerf and Arbalest-Vec.

Each HeCBench program is executed twice, once with the OMPDataPerf collector
attached (issue classes come from the five detectors) and once with the
Arbalest-Vec-style correctness checker attached (issue classes come from its
shadow state machine).  The paper's point is that the two tools see
different things: OMPDataPerf reports performance patterns that Arbalest
cannot, while Arbalest's UUM reports on these programs are conservative
false positives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppVariant, ProblemSize
from repro.apps.registry import HECBENCH_APP_NAMES, get_app
from repro.baselines.arbalest import ArbalestVecChecker
from repro.core.profiler import OMPDataPerf
from repro.omp.runtime import OffloadRuntime
from repro.util.tables import Table

#: The paper's Table 2, for side-by-side rendering and the tests.
PAPER_TABLE2: dict[str, tuple[str, str]] = {
    "resize-omp": ("DD, RA", "N/A"),
    "mandelbrot-omp": ("DD, RA, UA", "UUM"),
    "accuracy-omp": ("DD, UA, UT", "N/A"),
    "lif-omp": ("N/A", "UUM"),
    "bspline-vgh-omp": ("DD, UA, UT", "UUM"),
}


@dataclass(frozen=True)
class ComparisonRow:
    app: str
    ompdataperf_classes: str
    arbalest_classes: str


@dataclass
class ComparisonResult:
    size: ProblemSize
    rows: list[ComparisonRow]

    def find(self, app: str) -> ComparisonRow | None:
        for row in self.rows:
            if row.app == app:
                return row
        return None


def _run_arbalest(app_name: str, size: ProblemSize, *, conservative: bool = True) -> ArbalestVecChecker:
    """Execute an application baseline with the Arbalest-style checker attached."""
    app = get_app(app_name)
    runtime = OffloadRuntime(program_name=app.program_name(size, AppVariant.BASELINE))
    checker = ArbalestVecChecker(conservative=conservative).attach(runtime)
    app.build_program(size, AppVariant.BASELINE)(runtime)
    runtime.finish()
    return checker


def run(
    *,
    apps: tuple[str, ...] = HECBENCH_APP_NAMES,
    size: ProblemSize = ProblemSize.MEDIUM,
    conservative_arbalest: bool = True,
) -> ComparisonResult:
    tool = OMPDataPerf()
    rows: list[ComparisonRow] = []
    for app_name in apps:
        app = get_app(app_name)
        profile = tool.profile(
            app.build_program(size, AppVariant.BASELINE),
            program_name=app.program_name(size, AppVariant.BASELINE),
        )
        classes = profile.analysis.counts.issue_classes()
        omp_cell = ", ".join(classes) if classes else "N/A"
        checker = _run_arbalest(app_name, size, conservative=conservative_arbalest)
        rows.append(
            ComparisonRow(
                app=app_name,
                ompdataperf_classes=omp_cell,
                arbalest_classes=checker.report_cell(),
            )
        )
    return ComparisonResult(size=size, rows=rows)


def render(result: ComparisonResult) -> str:
    table = Table(
        ["program", "OMPDataPerf", "Arbalest-Vec", "paper (OMPDataPerf | Arbalest-Vec)"],
        title=f"Table 2: Issues detected by OMPDataPerf and Arbalest-Vec ({result.size.value} inputs)",
    )
    for row in result.rows:
        paper = PAPER_TABLE2.get(row.app)
        paper_cell = f"{paper[0]} | {paper[1]}" if paper else "-"
        table.add_row([row.app, row.ompdataperf_classes, row.arbalest_classes, paper_cell])
    return table.render()
