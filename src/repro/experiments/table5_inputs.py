"""Table 5: programs, domains and inputs used in the evaluation.

Static metadata drawn from the application registry; useful as a sanity
check that every benchmark exposes the three problem sizes with the intended
parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import ProblemSize
from repro.apps.registry import EVALUATION_APP_NAMES, get_app
from repro.util.tables import Table


@dataclass(frozen=True)
class InputRow:
    app: str
    domain: str
    suite: str
    small: str
    medium: str
    large: str


@dataclass
class InputsResult:
    rows: list[InputRow]

    def find(self, app: str) -> InputRow | None:
        for row in self.rows:
            if row.app == app:
                return row
        return None


def run(*, apps: tuple[str, ...] = EVALUATION_APP_NAMES) -> InputsResult:
    rows = []
    for name in apps:
        app = get_app(name)
        info = app.info()
        rows.append(
            InputRow(
                app=name,
                domain=info.domain,
                suite=info.suite,
                small=info.inputs[ProblemSize.SMALL],
                medium=info.inputs[ProblemSize.MEDIUM],
                large=info.inputs[ProblemSize.LARGE],
            )
        )
    return InputsResult(rows=rows)


def render(result: InputsResult) -> str:
    table = Table(
        ["application", "domain", "suite", "small", "medium", "large"],
        title="Table 5: Programs and inputs used for evaluating OMPDataPerf",
    )
    for row in result.rows:
        table.add_row([row.app, row.domain, row.suite, row.small, row.medium, row.large])
    return table.render()
