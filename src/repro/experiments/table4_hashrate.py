"""Table 4: effective hash rate per hash function per benchmark.

Appendix B measures, for every candidate hash, the throughput achieved over
the transfer payloads each benchmark actually produces.  The harness here
replays a sample of each application's transfer payloads through every
registered hasher.  Absolute numbers are not comparable with the paper's
native measurements (pure-Python hashes cannot reach tens of GB/s); what
reproduces is the *relative* ordering — the vectorised / library hashes are
orders of magnitude faster than the byte-at-a-time hashes and are therefore
the only viable collector defaults in this implementation, just as the
AVX2-accelerated hashes are in the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppVariant, ProblemSize
from repro.apps.registry import EVALUATION_APP_NAMES, get_app
from repro.core.collector import TraceCollector
from repro.hashing.base import Hasher, available_hashers
from repro.hashing.ratebench import measure_hash_rate
from repro.omp.runtime import OffloadRuntime
from repro.ompt.callbacks import CallbackType, Endpoint, TargetDataOpRecord
from repro.ompt.interface import OmptInterface
from repro.util.tables import Table


class _PayloadSampler:
    """OMPT tool that keeps copies of transfer payloads up to a budget."""

    def __init__(self, max_payloads: int, max_bytes: int) -> None:
        self.max_payloads = max_payloads
        self.max_bytes = max_bytes
        self.payloads: list[np.ndarray] = []
        self.total_bytes = 0
        self.seen_payloads = 0
        self.seen_bytes = 0

    def initialize(self, interface: OmptInterface) -> None:
        interface.set_callback(CallbackType.TARGET_DATA_OP_EMI, self._on_data_op)

    def finalize(self) -> None:
        pass

    def _on_data_op(self, record: TargetDataOpRecord) -> float:
        if record.endpoint is not Endpoint.END or record.payload is None:
            return 0.0
        self.seen_payloads += 1
        self.seen_bytes += record.bytes
        if len(self.payloads) >= self.max_payloads or self.total_bytes >= self.max_bytes:
            return 0.0
        payload = np.ascontiguousarray(record.payload).reshape(-1).view(np.uint8)
        self.payloads.append(np.array(payload, copy=True))
        self.total_bytes += payload.nbytes
        return 0.0


@dataclass(frozen=True)
class HashRateCell:
    app: str
    hasher: str
    gib_per_second: float


@dataclass
class HashRateResult:
    size: ProblemSize
    hashers: list[str]
    cells: list[HashRateCell]

    def rate(self, app: str, hasher: str) -> float | None:
        for cell in self.cells:
            if cell.app == app and cell.hasher == hasher:
                return cell.gib_per_second
        return None

    def average_rate(self, hasher: str) -> float:
        rates = [c.gib_per_second for c in self.cells if c.hasher == hasher]
        return sum(rates) / len(rates) if rates else 0.0

    def fastest_hasher(self) -> str:
        return max(self.hashers, key=self.average_rate)


def sample_payloads(
    app_name: str,
    size: ProblemSize,
    *,
    max_payloads: int = 128,
    max_bytes: int = 4 << 20,
) -> list[np.ndarray]:
    """Collect a sample of the transfer payloads an application produces."""
    app = get_app(app_name)
    ompt = OmptInterface()
    sampler = _PayloadSampler(max_payloads=max_payloads, max_bytes=max_bytes)
    ompt.connect_tool(sampler)
    runtime = OffloadRuntime(ompt=ompt, program_name=app.program_name(size, AppVariant.BASELINE))
    app.build_program(size, AppVariant.BASELINE)(runtime)
    runtime.finish()
    return sampler.payloads


def run(
    *,
    apps: tuple[str, ...] = EVALUATION_APP_NAMES,
    size: ProblemSize = ProblemSize.SMALL,
    hashers: dict[str, Hasher] | None = None,
    max_payloads: int = 128,
    max_bytes: int = 2 << 20,
) -> HashRateResult:
    hashers = hashers or available_hashers()
    cells: list[HashRateCell] = []
    for app_name in apps:
        payloads = sample_payloads(
            app_name, size, max_payloads=max_payloads, max_bytes=max_bytes
        )
        if not payloads:
            continue
        for name, hasher in hashers.items():
            sample = measure_hash_rate(hasher, payloads, repeats=1)
            cells.append(
                HashRateCell(app=app_name, hasher=name, gib_per_second=sample.gib_per_second)
            )
    return HashRateResult(size=size, hashers=list(hashers), cells=cells)


def render(result: HashRateResult) -> str:
    table = Table(
        ["program"] + result.hashers,
        title=f"Table 4: Hash rate in GiB/s over sampled transfer payloads ({result.size.value} inputs)",
    )
    apps = sorted({c.app for c in result.cells})
    for app in apps:
        row = [app]
        for hasher in result.hashers:
            rate = result.rate(app, hasher)
            row.append("-" if rate is None else f"{rate:.3f}")
        table.add_row(row)
    avg_row = ["AVERAGE"] + [f"{result.average_rate(h):.3f}" for h in result.hashers]
    table.add_row(avg_row)
    footer = (
        f"\nfastest hasher on average: {result.fastest_hasher()}"
        "\n(paper: t1ha0_avx2 fastest at ~32 GB/s native; the ordering "
        "vectorised/library >> word-at-a-time >> byte-at-a-time reproduces)"
    )
    return table.render() + footer
