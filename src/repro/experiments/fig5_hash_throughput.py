"""Figure 5: hash throughput vs data size, against transfer throughput.

Sweeps synthetic buffers across power-of-two sizes, measuring each selected
hasher's throughput, and plots (as a table of series) the modelled
host-to-device transfer throughput for the same sizes.  The paper's
qualitative findings that should reproduce: throughput rises with buffer
size until a cache-related plateau, small payloads are hashed far faster
than they can be transferred, and the fastest hashes beat the interconnect
at every size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hashing.base import Hasher, get_hasher
from repro.hashing.ratebench import sweep_sizes
from repro.omp.costmodel import CostModel, TransferDirection, default_cost_model
from repro.util.tables import Table, format_bytes

#: Hashers plotted by default: the collector default, the zlib checksums and
#: the fastest pure-Python word-at-a-time hash (one series per family).
DEFAULT_HASHERS = ("vector64", "crc32", "adler32", "xxh64")


@dataclass(frozen=True)
class ThroughputPoint:
    series: str
    nbytes: int
    bytes_per_second: float

    @property
    def gib_per_second(self) -> float:
        return self.bytes_per_second / float(1 << 30)


@dataclass
class ThroughputResult:
    sizes: list[int]
    points: list[ThroughputPoint]

    def series(self, name: str) -> list[ThroughputPoint]:
        return [p for p in self.points if p.series == name]

    def series_names(self) -> list[str]:
        names: list[str] = []
        for p in self.points:
            if p.series not in names:
                names.append(p.series)
        return names


def default_sizes(max_power: int = 22) -> list[int]:
    """Buffer sizes 2^1 .. 2^max_power (the paper sweeps up to 2^28)."""
    return [1 << p for p in range(1, max_power + 1)]


def run(
    *,
    hasher_names: tuple[str, ...] = DEFAULT_HASHERS,
    sizes: list[int] | None = None,
    cost_model: CostModel | None = None,
) -> ThroughputResult:
    sizes = sizes or default_sizes()
    cost_model = cost_model or default_cost_model()
    points: list[ThroughputPoint] = []
    for name in hasher_names:
        hasher: Hasher = get_hasher(name)
        for sample in sweep_sizes(hasher, sizes):
            points.append(
                ThroughputPoint(
                    series=name,
                    nbytes=sample.nbytes,
                    bytes_per_second=sample.bytes_per_second,
                )
            )
    for size in sizes:
        points.append(
            ThroughputPoint(
                series="data transfer (modelled)",
                nbytes=size,
                bytes_per_second=cost_model.transfer_bandwidth(
                    size, TransferDirection.HOST_TO_DEVICE
                ),
            )
        )
    return ThroughputResult(sizes=sizes, points=points)


def render(result: ThroughputResult) -> str:
    names = result.series_names()
    table = Table(
        ["data size"] + [f"{n} (GiB/s)" for n in names],
        title="Figure 5: throughput vs data size",
    )
    for size in result.sizes:
        row = [format_bytes(size)]
        for name in names:
            match = [p for p in result.series(name) if p.nbytes == size]
            row.append(f"{match[0].gib_per_second:.3f}" if match else "-")
        table.add_row(row)
    return table.render()
