"""Table 6: compiler and runtime support of OMPT target features.

Appendix D surveys how well the OMPT target-related features are supported
across nine compiler stacks.  That information is a static survey (no code
runs on our side), so this module encodes the published matrix and provides
the queries OMPDataPerf cares about: which runtimes support the two EMI
callbacks the tool requires.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.tables import Table

#: Feature keys, in the order of the paper's table.
FEATURES: tuple[str, ...] = (
    "tool_initialization",
    "target_callback",
    "target_data_op_callback",
    "target_submit_callback",
    "target_map_callback",
    "tracing_interface",
    "target_emi_callback",
    "target_data_op_emi_callback",
    "target_submit_emi_callback",
    "target_map_emi_callback",
)

#: Features OMPDataPerf requires (marked ‡ in the paper's table).
REQUIRED_FEATURES: tuple[str, ...] = (
    "target_emi_callback",
    "target_data_op_emi_callback",
)


@dataclass(frozen=True)
class CompilerSupport:
    """OMPT support of one compiler stack; values are the first supporting
    version, or ``None`` when the feature is unsupported."""

    name: str
    runtime: str
    support: dict[str, str | None]

    def supports(self, feature: str) -> bool:
        if feature not in FEATURES:
            raise KeyError(f"unknown OMPT feature {feature!r}")
        return self.support.get(feature) is not None

    def supports_ompdataperf(self) -> bool:
        """Whether OMPDataPerf can run against this compiler's runtime."""
        return all(self.supports(f) for f in REQUIRED_FEATURES)


def _support(**kwargs: str | None) -> dict[str, str | None]:
    table: dict[str, str | None] = {feature: None for feature in FEATURES}
    table.update(kwargs)
    return table


#: The published support matrix (Appendix D, Table 6).
COMPILERS: tuple[CompilerSupport, ...] = (
    CompilerSupport("AMD AOCC", "libomp", _support(
        tool_initialization="2.0", target_callback="5.0", target_data_op_callback="5.0",
        target_submit_callback="5.0", target_emi_callback="5.0",
        target_data_op_emi_callback="5.0", target_submit_emi_callback="5.0")),
    CompilerSupport("AMD AOMP", "libomp", _support(
        tool_initialization="0.8-0", target_callback="17.0-3", target_data_op_callback="17.0-3",
        target_submit_callback="17.0-3", tracing_interface="14.0-1",
        target_emi_callback="17.0-3", target_data_op_emi_callback="17.0-3",
        target_submit_emi_callback="17.0-3")),
    CompilerSupport("AMD ROCm", "libomp", _support(
        tool_initialization="3.5.0", target_callback="5.7.0", target_data_op_callback="5.7.0",
        target_submit_callback="5.7.0", tracing_interface="5.1.0",
        target_emi_callback="5.7.0", target_data_op_emi_callback="5.7.0",
        target_submit_emi_callback="5.7.0")),
    CompilerSupport("Arm ACfL", "libomp", _support(tool_initialization="20.0")),
    CompilerSupport("GNU GCC", "libgomp", _support()),
    CompilerSupport("HPE CCE", "libcraymp", _support(
        tool_initialization="11.0.0", target_callback="16.0.0", target_data_op_callback="16.0.0",
        target_submit_callback="16.0.0", target_emi_callback="16.0.0",
        target_data_op_emi_callback="16.0.0", target_submit_emi_callback="16.0.0")),
    CompilerSupport("Intel ICX/IFX", "libomp", _support(
        tool_initialization="2021.1", target_callback="2023.2", target_data_op_callback="2023.2",
        target_submit_callback="2023.2", target_emi_callback="2023.2",
        target_data_op_emi_callback="2023.2", target_submit_emi_callback="2023.2")),
    CompilerSupport("LLVM Clang/Flang", "libomp", _support(
        tool_initialization="8.0.0", target_callback="17.0.1", target_data_op_callback="17.0.1",
        target_submit_callback="17.0.1", target_emi_callback="17.0.1",
        target_data_op_emi_callback="17.0.1", target_submit_emi_callback="17.0.1")),
    CompilerSupport("NVIDIA NVHPC", "libnvomp", _support(
        tool_initialization="22.7", target_callback="22.7", target_data_op_callback="22.7",
        target_submit_callback="22.7", target_map_callback="22.7",
        target_emi_callback="22.7", target_data_op_emi_callback="22.7",
        target_submit_emi_callback="22.7", target_map_emi_callback="22.7")),
)


@dataclass
class SupportResult:
    compilers: tuple[CompilerSupport, ...] = COMPILERS

    def compatible_compilers(self) -> list[str]:
        return [c.name for c in self.compilers if c.supports_ompdataperf()]

    def incompatible_compilers(self) -> list[str]:
        return [c.name for c in self.compilers if not c.supports_ompdataperf()]


def run() -> SupportResult:
    return SupportResult()


def render(result: SupportResult) -> str:
    table = Table(
        ["feature"] + [c.name for c in result.compilers],
        title="Table 6: Compiler and runtime support of OMPT target features (first supporting version)",
    )
    for feature in FEATURES:
        row = [feature]
        for compiler in result.compilers:
            row.append(compiler.support.get(feature) or "-")
        table.add_row(row)
    footer = (
        "\ncompilers able to run OMPDataPerf: "
        + ", ".join(result.compatible_compilers())
        + "\ncompilers unable to run OMPDataPerf: "
        + ", ".join(result.incompatible_compilers())
    )
    return table.render() + footer
