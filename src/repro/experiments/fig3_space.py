"""Figure 3: peak space overhead (bytes) of the collector per application.

The collector allocates 72 B per data-op event and 24 B per target launch
event (Section 7.4); the figure reports the resulting footprint for every
application and size, and the text reports the accumulation rate (tealeaf is
the heaviest at roughly 1 MB/s of uncompressed event log).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppVariant, ProblemSize
from repro.apps.registry import EVALUATION_APP_NAMES
from repro.core.overhead import overhead_accumulation_rate
from repro.experiments.common import GLOBAL_CACHE, RunCache, default_sizes
from repro.util.stats import geometric_mean
from repro.util.tables import Table, format_bytes


@dataclass(frozen=True)
class SpaceRow:
    app: str
    size: ProblemSize
    num_data_op_events: int
    num_target_events: int
    overhead_bytes: int
    accumulation_rate: float  # bytes per second of program runtime


@dataclass
class SpaceResult:
    rows: list[SpaceRow]

    @property
    def geometric_mean_rate(self) -> float:
        rates = [row.accumulation_rate for row in self.rows if row.accumulation_rate > 0]
        return geometric_mean(rates) if rates else 0.0

    def heaviest_app(self) -> str:
        return max(self.rows, key=lambda r: r.accumulation_rate).app


def run(
    *,
    apps: tuple[str, ...] = EVALUATION_APP_NAMES,
    sizes: list[ProblemSize] | None = None,
    cache: RunCache | None = None,
) -> SpaceResult:
    cache = cache or GLOBAL_CACHE
    sizes = sizes or default_sizes()
    rows: list[SpaceRow] = []
    for app_name in apps:
        for size in sizes:
            app_run = cache.run(app_name, size, AppVariant.BASELINE)
            trace = app_run.profile.trace
            rows.append(
                SpaceRow(
                    app=app_name,
                    size=size,
                    num_data_op_events=len(trace.data_op_events),
                    num_target_events=len(trace.target_events),
                    overhead_bytes=trace.space_overhead_bytes(),
                    accumulation_rate=overhead_accumulation_rate(trace),
                )
            )
    return SpaceResult(rows=rows)


def render(result: SpaceResult) -> str:
    table = Table(
        ["program", "size", "data-op events", "target events", "overhead", "rate (B/s)"],
        title="Figure 3: Peak space overhead when analyzing with OMPDataPerf",
    )
    for row in result.rows:
        table.add_row(
            [
                row.app,
                row.size.value,
                row.num_data_op_events,
                row.num_target_events,
                format_bytes(row.overhead_bytes),
                f"{row.accumulation_rate:,.0f}",
            ]
        )
    footer = (
        f"\nheaviest accumulation: {result.heaviest_app()}"
        f"   geometric-mean rate: {result.geometric_mean_rate:,.0f} B/s"
        "\n(paper: tealeaf heaviest at ~1 MB/s; ~43 KB/s geometric mean)"
    )
    return table.render() + footer
