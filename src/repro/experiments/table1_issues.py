"""Table 1: issues detected by OMPDataPerf in each application.

Three groups of rows, exactly as in the paper: the shipped (baseline)
applications, the applications with injected synthetic issues, and the
applications after the key issues were fixed.  Counts are produced by
running every variant at the chosen problem size (Medium by default) with
the collector attached and analysing the trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppVariant, ProblemSize
from repro.apps.registry import EVALUATION_APP_NAMES
from repro.core.analysis import IssueCounts
from repro.experiments.common import GLOBAL_CACHE, RunCache
from repro.util.tables import Table

#: The paper's Table 1 baseline rows (DD, RT, RA, UA, UT), for the
#: side-by-side comparison in EXPERIMENTS.md and the reproduction tests.
PAPER_BASELINE_COUNTS: dict[str, tuple[int, int, int, int, int]] = {
    "babelstream": (499, 0, 499, 0, 0),
    "bfs": (18, 10, 9, 0, 0),
    "hotspot": (2, 0, 0, 0, 0),
    "lud": (0, 0, 0, 0, 0),
    "minife": (402, 4, 398, 0, 0),
    "minifmm": (3, 0, 0, 0, 0),
    "nw": (0, 0, 0, 0, 0),
    "rsbench": (0, 1, 0, 0, 0),
    "tealeaf": (4720, 11, 4706, 0, 0),
    "xsbench": (0, 1, 0, 0, 0),
}

#: The paper's Table 1 rows for the fixed applications.
PAPER_FIXED_COUNTS: dict[str, tuple[int, int, int, int, int]] = {
    "bfs": (1, 0, 0, 0, 0),
    "minife": (3, 0, 0, 0, 0),
    "rsbench": (0, 0, 0, 0, 0),
    "xsbench": (0, 0, 0, 0, 0),
}

#: The paper's Table 1 rows for the synthetic-issue applications.
PAPER_SYNTHETIC_COUNTS: dict[str, tuple[int, int, int, int, int]] = {
    "babelstream": (499, 0, 499, 0, 0),
    "hotspot": (12, 4, 10, 0, 0),
    "lud": (1737, 1243, 747, 250, 252),
    "minifmm": (75, 64, 57, 57, 76),
    "nw": (8, 0, 4, 1, 3),
    "tealeaf": (17408, 25614, 4706, 0, 1),
}


@dataclass(frozen=True)
class IssueRow:
    app: str
    variant: AppVariant
    counts: IssueCounts

    def as_tuple(self) -> tuple[int, int, int, int, int]:
        c = self.counts
        return (
            c.duplicate_transfers,
            c.round_trips,
            c.repeated_allocations,
            c.unused_allocations,
            c.unused_transfers,
        )


@dataclass
class IssueTableResult:
    size: ProblemSize
    baseline: list[IssueRow]
    synthetic: list[IssueRow]
    fixed: list[IssueRow]

    def find(self, app: str, variant: AppVariant) -> IssueRow | None:
        group = {
            AppVariant.BASELINE: self.baseline,
            AppVariant.SYNTHETIC: self.synthetic,
            AppVariant.FIXED: self.fixed,
        }[variant]
        for row in group:
            if row.app == app:
                return row
        return None


def run(
    *,
    apps: tuple[str, ...] = EVALUATION_APP_NAMES,
    size: ProblemSize = ProblemSize.MEDIUM,
    include_synthetic: bool = True,
    include_fixed: bool = True,
    cache: RunCache | None = None,
) -> IssueTableResult:
    cache = cache or GLOBAL_CACHE
    baseline: list[IssueRow] = []
    synthetic: list[IssueRow] = []
    fixed: list[IssueRow] = []
    for app_name in apps:
        base_run = cache.run(app_name, size, AppVariant.BASELINE)
        baseline.append(
            IssueRow(app=app_name, variant=AppVariant.BASELINE,
                     counts=base_run.profile.analysis.counts)
        )
        if include_synthetic and cache.supports(app_name, AppVariant.SYNTHETIC):
            syn_run = cache.run(app_name, size, AppVariant.SYNTHETIC)
            synthetic.append(
                IssueRow(app=app_name, variant=AppVariant.SYNTHETIC,
                         counts=syn_run.profile.analysis.counts)
            )
        if include_fixed and cache.supports(app_name, AppVariant.FIXED):
            fix_run = cache.run(app_name, size, AppVariant.FIXED)
            fixed.append(
                IssueRow(app=app_name, variant=AppVariant.FIXED,
                         counts=fix_run.profile.analysis.counts)
            )
    return IssueTableResult(size=size, baseline=baseline, synthetic=synthetic, fixed=fixed)


def _add_rows(table: Table, rows: list[IssueRow], paper: dict) -> None:
    for row in rows:
        dd, rt, ra, ua, ut = row.as_tuple()
        expected = paper.get(row.app)
        paper_cell = "/".join(str(v) for v in expected) if expected else "-"
        table.add_row([row.app, dd, rt, ra, ua, ut, paper_cell])


def render(result: IssueTableResult) -> str:
    table = Table(
        ["program", "DD", "RT", "RA", "UA", "UT", "paper (DD/RT/RA/UA/UT)"],
        title=f"Table 1: Issues detected by OMPDataPerf ({result.size.value} inputs)",
    )
    _add_rows(table, result.baseline, PAPER_BASELINE_COUNTS)
    sections = [table.render()]

    if result.synthetic:
        syn = Table(["program", "DD", "RT", "RA", "UA", "UT", "paper (DD/RT/RA/UA/UT)"],
                    title="Applications with injected synthetic issues")
        _add_rows(syn, result.synthetic, PAPER_SYNTHETIC_COUNTS)
        sections.append(syn.render())
    if result.fixed:
        fix = Table(["program", "DD", "RT", "RA", "UA", "UT", "paper (DD/RT/RA/UA/UT)"],
                    title="Applications with key issues fixed")
        _add_rows(fix, result.fixed, PAPER_FIXED_COUNTS)
        sections.append(fix.render())
    return "\n\n".join(sections)
