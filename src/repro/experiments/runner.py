"""Run every experiment (or a named subset) and collect the rendered output.

Used by ``examples/run_paper_experiments.py`` and the CLI's ``--experiments``
mode.  Experiments that sweep every application at every size are expensive;
``quick=True`` restricts them to the small problem size so the whole suite
finishes in well under a minute.

Independent experiment specs can execute concurrently (``jobs > 1``): each
spec runs in a worker thread, the shared
:data:`~repro.experiments.common.GLOBAL_CACHE` deduplicates the application
executions the specs have in common, and results are collected (and echoed)
in spec order so the rendered output is byte-identical to a serial run.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional

from repro.apps.base import ProblemSize
from repro.experiments import (
    fig2_overhead,
    fig3_space,
    fig4_speedup,
    fig5_hash_throughput,
    table1_issues,
    table2_comparison,
    table3_runtime,
    table4_hashrate,
    table5_inputs,
    table6_ompt_support,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible table or figure."""

    key: str
    title: str
    run_full: Callable[[], object]
    run_quick: Callable[[], object]
    render: Callable[[object], str]
    #: Whether the experiment may share the machine with other experiments.
    #: The hash-throughput experiments (Table 4, Figure 5) measure real
    #: wall-clock rates, so they always run alone — executing them while
    #: other specs compete for cores would systematically depress the
    #: measured rates.  Everything else is a deterministic simulation.
    parallel_safe: bool = True


def _specs() -> list[ExperimentSpec]:
    small = [ProblemSize.SMALL]
    return [
        ExperimentSpec(
            "fig2", "Figure 2: runtime overhead",
            lambda: fig2_overhead.run(),
            lambda: fig2_overhead.run(sizes=small),
            fig2_overhead.render,
        ),
        ExperimentSpec(
            "fig3", "Figure 3: space overhead",
            lambda: fig3_space.run(),
            lambda: fig3_space.run(sizes=small),
            fig3_space.render,
        ),
        ExperimentSpec(
            "table1", "Table 1: issues detected",
            lambda: table1_issues.run(),
            lambda: table1_issues.run(size=ProblemSize.SMALL),
            table1_issues.render,
        ),
        ExperimentSpec(
            "fig4", "Figure 4: predicted vs actual speedup",
            lambda: fig4_speedup.run(),
            lambda: fig4_speedup.run(sizes=small),
            fig4_speedup.render,
        ),
        ExperimentSpec(
            "table2", "Table 2: comparison with Arbalest-Vec",
            lambda: table2_comparison.run(),
            lambda: table2_comparison.run(size=ProblemSize.SMALL),
            table2_comparison.render,
        ),
        ExperimentSpec(
            "table3", "Table 3: runtime before/after fixes",
            lambda: table3_runtime.run(),
            lambda: table3_runtime.run(size=ProblemSize.SMALL),
            table3_runtime.render,
        ),
        ExperimentSpec(
            "table4", "Table 4: hash rates",
            lambda: table4_hashrate.run(),
            lambda: table4_hashrate.run(apps=("bfs", "hotspot"), max_bytes=1 << 20),
            table4_hashrate.render,
            parallel_safe=False,
        ),
        ExperimentSpec(
            "fig5", "Figure 5: hash throughput vs data size",
            lambda: fig5_hash_throughput.run(),
            lambda: fig5_hash_throughput.run(
                hasher_names=("vector64", "crc32"),
                sizes=fig5_hash_throughput.default_sizes(max_power=16),
            ),
            fig5_hash_throughput.render,
            parallel_safe=False,
        ),
        ExperimentSpec(
            "table5", "Table 5: benchmark inputs",
            lambda: table5_inputs.run(),
            lambda: table5_inputs.run(),
            table5_inputs.render,
        ),
        ExperimentSpec(
            "table6", "Table 6: OMPT support matrix",
            lambda: table6_ompt_support.run(),
            lambda: table6_ompt_support.run(),
            table6_ompt_support.render,
        ),
    ]


def available_experiments() -> list[str]:
    return [spec.key for spec in _specs()]


def run_all(*, quick: bool = False, jobs: int = 1) -> dict[str, str]:
    """Run every experiment (the CI smoke entry point)."""
    return run_experiments(None, quick=quick, jobs=jobs)


def run_experiments(
    keys: Optional[list[str]] = None,
    *,
    quick: bool = False,
    echo: Callable[[str], None] | None = None,
    jobs: int = 1,
) -> dict[str, str]:
    """Run the selected experiments and return ``{key: rendered output}``.

    With ``jobs > 1`` the specs execute concurrently in a thread pool.
    Output order (and content) is independent of ``jobs``: results are
    rendered and echoed in spec order as they become available.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    selected = {spec.key: spec for spec in _specs()}
    if keys:
        unknown = [k for k in keys if k not in selected]
        if unknown:
            raise KeyError(
                f"unknown experiments: {', '.join(unknown)}; "
                f"available: {', '.join(selected)}"
            )
        specs = [selected[k] for k in keys]
    else:
        specs = list(selected.values())

    def execute(spec: ExperimentSpec) -> object:
        return spec.run_quick() if quick else spec.run_full()

    outputs: dict[str, str] = {}
    if jobs == 1 or len(specs) <= 1:
        results = map(execute, specs)
        for spec, result in zip(specs, results):
            text = f"{'=' * 72}\n{spec.title}\n{'=' * 72}\n{spec.render(result)}"
            outputs[spec.key] = text
            if echo is not None:
                echo(text)
        return outputs

    pooled = [spec for spec in specs if spec.parallel_safe]
    with ThreadPoolExecutor(max_workers=max(min(jobs, len(pooled)), 1)) as pool:
        futures = {spec.key: pool.submit(execute, spec) for spec in pooled}
        for spec in specs:
            if spec.parallel_safe:
                result = futures[spec.key].result()
            else:
                # Wait for every pooled experiment first: timing-sensitive
                # experiments get the machine to themselves, exactly as in
                # a serial run.
                for future in futures.values():
                    future.result()
                result = execute(spec)
            text = f"{'=' * 72}\n{spec.title}\n{'=' * 72}\n{spec.render(result)}"
            outputs[spec.key] = text
            if echo is not None:
                echo(text)
    return outputs
