"""Run every experiment (or a named subset) and collect the rendered output.

Used by ``examples/run_paper_experiments.py`` and the CLI's ``--experiments``
mode.  Experiments that sweep every application at every size are expensive;
``quick=True`` restricts them to the small problem size so the whole suite
finishes in well under a minute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.apps.base import ProblemSize
from repro.experiments import (
    fig2_overhead,
    fig3_space,
    fig4_speedup,
    fig5_hash_throughput,
    table1_issues,
    table2_comparison,
    table3_runtime,
    table4_hashrate,
    table5_inputs,
    table6_ompt_support,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible table or figure."""

    key: str
    title: str
    run_full: Callable[[], object]
    run_quick: Callable[[], object]
    render: Callable[[object], str]


def _specs() -> list[ExperimentSpec]:
    small = [ProblemSize.SMALL]
    return [
        ExperimentSpec(
            "fig2", "Figure 2: runtime overhead",
            lambda: fig2_overhead.run(),
            lambda: fig2_overhead.run(sizes=small),
            fig2_overhead.render,
        ),
        ExperimentSpec(
            "fig3", "Figure 3: space overhead",
            lambda: fig3_space.run(),
            lambda: fig3_space.run(sizes=small),
            fig3_space.render,
        ),
        ExperimentSpec(
            "table1", "Table 1: issues detected",
            lambda: table1_issues.run(),
            lambda: table1_issues.run(size=ProblemSize.SMALL),
            table1_issues.render,
        ),
        ExperimentSpec(
            "fig4", "Figure 4: predicted vs actual speedup",
            lambda: fig4_speedup.run(),
            lambda: fig4_speedup.run(sizes=small),
            fig4_speedup.render,
        ),
        ExperimentSpec(
            "table2", "Table 2: comparison with Arbalest-Vec",
            lambda: table2_comparison.run(),
            lambda: table2_comparison.run(size=ProblemSize.SMALL),
            table2_comparison.render,
        ),
        ExperimentSpec(
            "table3", "Table 3: runtime before/after fixes",
            lambda: table3_runtime.run(),
            lambda: table3_runtime.run(size=ProblemSize.SMALL),
            table3_runtime.render,
        ),
        ExperimentSpec(
            "table4", "Table 4: hash rates",
            lambda: table4_hashrate.run(),
            lambda: table4_hashrate.run(apps=("bfs", "hotspot"), max_bytes=1 << 20),
            table4_hashrate.render,
        ),
        ExperimentSpec(
            "fig5", "Figure 5: hash throughput vs data size",
            lambda: fig5_hash_throughput.run(),
            lambda: fig5_hash_throughput.run(
                hasher_names=("vector64", "crc32"),
                sizes=fig5_hash_throughput.default_sizes(max_power=16),
            ),
            fig5_hash_throughput.render,
        ),
        ExperimentSpec(
            "table5", "Table 5: benchmark inputs",
            lambda: table5_inputs.run(),
            lambda: table5_inputs.run(),
            table5_inputs.render,
        ),
        ExperimentSpec(
            "table6", "Table 6: OMPT support matrix",
            lambda: table6_ompt_support.run(),
            lambda: table6_ompt_support.run(),
            table6_ompt_support.render,
        ),
    ]


def available_experiments() -> list[str]:
    return [spec.key for spec in _specs()]


def run_experiments(
    keys: Optional[list[str]] = None,
    *,
    quick: bool = False,
    echo: Callable[[str], None] | None = None,
) -> dict[str, str]:
    """Run the selected experiments and return ``{key: rendered output}``."""
    selected = {spec.key: spec for spec in _specs()}
    if keys:
        unknown = [k for k in keys if k not in selected]
        if unknown:
            raise KeyError(
                f"unknown experiments: {', '.join(unknown)}; "
                f"available: {', '.join(selected)}"
            )
        specs = [selected[k] for k in keys]
    else:
        specs = list(selected.values())

    outputs: dict[str, str] = {}
    for spec in specs:
        result = spec.run_quick() if quick else spec.run_full()
        text = f"{'=' * 72}\n{spec.title}\n{'=' * 72}\n{spec.render(result)}"
        outputs[spec.key] = text
        if echo is not None:
            echo(text)
    return outputs
