"""Figure 4: predicted vs actual speedup.

For every application that has an optimisation (a ``fixed`` variant) the
*unoptimised* program is the shipped baseline and the *optimised* program is
the fixed variant; for applications whose issues are synthetic the
unoptimised program is the synthetic variant and the optimised program is
the baseline.  The predicted speedup comes from OMPDataPerf's analysis of
the unoptimised run; the actual speedup is the ratio of the two
uninstrumented runtimes.  The paper reports a mean relative error of 14 %
and an MSE of 0.17 (excluding the tealeaf-large outlier).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppVariant, ProblemSize
from repro.apps.registry import EVALUATION_APP_NAMES, get_app
from repro.experiments.common import GLOBAL_CACHE, RunCache, default_sizes
from repro.util.stats import mean_relative_error, mean_squared_error
from repro.util.tables import Table


@dataclass(frozen=True)
class SpeedupPoint:
    app: str
    size: ProblemSize
    #: variant analysed as the unoptimised program
    unoptimized_variant: AppVariant
    predicted_speedup: float
    actual_speedup: float

    @property
    def relative_error(self) -> float:
        if self.actual_speedup == 0.0:
            return float("inf")
        return abs(self.predicted_speedup - self.actual_speedup) / self.actual_speedup


@dataclass
class SpeedupResult:
    points: list[SpeedupPoint]

    def _filtered(self, exclude_outliers: bool) -> list[SpeedupPoint]:
        if not exclude_outliers:
            return self.points
        # The paper excludes points whose actual speedup is an order of
        # magnitude away from the prediction when reporting aggregate error.
        return [p for p in self.points if p.relative_error < 2.0]

    def mean_relative_error(self, *, exclude_outliers: bool = True) -> float:
        pts = self._filtered(exclude_outliers)
        if not pts:
            return 0.0
        return mean_relative_error(
            [p.predicted_speedup for p in pts], [p.actual_speedup for p in pts]
        )

    def mean_squared_error(self, *, exclude_outliers: bool = True) -> float:
        pts = self._filtered(exclude_outliers)
        if not pts:
            return 0.0
        return mean_squared_error(
            [p.predicted_speedup for p in pts], [p.actual_speedup for p in pts]
        )


def _speedup_pair(app_name: str) -> tuple[AppVariant, AppVariant] | None:
    """Return (unoptimised, optimised) variants for an application, if any."""
    app = get_app(app_name)
    if app.supports_variant(AppVariant.FIXED):
        return (AppVariant.BASELINE, AppVariant.FIXED)
    if app.supports_variant(AppVariant.SYNTHETIC) and app_name != "babelstream":
        # babelstream's synthetic row is identical to its baseline, so there
        # is no optimisation to measure.
        return (AppVariant.SYNTHETIC, AppVariant.BASELINE)
    return None


def run(
    *,
    apps: tuple[str, ...] = EVALUATION_APP_NAMES,
    sizes: list[ProblemSize] | None = None,
    cache: RunCache | None = None,
) -> SpeedupResult:
    cache = cache or GLOBAL_CACHE
    sizes = sizes or default_sizes()
    points: list[SpeedupPoint] = []
    for app_name in apps:
        pair = _speedup_pair(app_name)
        if pair is None:
            continue
        unopt_variant, opt_variant = pair
        for size in sizes:
            unopt_run = cache.run(app_name, size, unopt_variant)
            predicted = unopt_run.profile.analysis.potential.predicted_speedup
            unopt_native = unopt_run.native_runtime
            opt_native = cache.native_runtime(app_name, size, opt_variant)
            actual = unopt_native / opt_native if opt_native > 0 else float("inf")
            points.append(
                SpeedupPoint(
                    app=app_name,
                    size=size,
                    unoptimized_variant=unopt_variant,
                    predicted_speedup=predicted,
                    actual_speedup=actual,
                )
            )
    return SpeedupResult(points=points)


def render(result: SpeedupResult) -> str:
    table = Table(
        ["program", "size", "unoptimized variant", "predicted", "actual", "rel. error"],
        title="Figure 4: Predicted vs actual speedup",
    )
    for p in result.points:
        table.add_row(
            [
                p.app,
                p.size.value,
                p.unoptimized_variant.value,
                f"{p.predicted_speedup:.2f}x",
                f"{p.actual_speedup:.2f}x",
                f"{100.0 * p.relative_error:.1f}%",
            ]
        )
    footer = (
        f"\nmean relative error: {100.0 * result.mean_relative_error():.1f}%"
        f"   MSE: {result.mean_squared_error():.3f}"
        "\n(paper: 14% mean relative error, 0.17 MSE, excluding one outlier)"
    )
    return table.render() + footer
