"""Table 3: runtime before and after fixing the issues each tool reported.

``Before`` is the shipped program's (uninstrumented) runtime.  The
``OMPDataPerf`` column is the runtime after applying the fixes its report
suggests (the ``fixed`` variant); ``N/A`` means the tool reported nothing to
fix.  The ``Arbalest-Vec`` column is ``FP`` when the checker's reports were
false positives (nothing to fix, so no runtime is reported) and ``N/A`` when
it reported nothing — exactly the structure of the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.base import AppVariant, ProblemSize
from repro.apps.registry import HECBENCH_APP_NAMES, get_app
from repro.experiments.common import GLOBAL_CACHE, RunCache
from repro.experiments.table2_comparison import _run_arbalest
from repro.util.tables import Table

#: The paper's Table 3 (seconds; FP = false positive, N/A = nothing reported).
PAPER_TABLE3: dict[str, tuple[float, Optional[float], str]] = {
    "resize-omp": (11.604, 11.065, "N/A"),
    "mandelbrot-omp": (3.974, 3.950, "FP"),
    "accuracy-omp": (11.644, 11.640, "N/A"),
    "lif-omp": (10.802, None, "FP"),
    "bspline-vgh-omp": (6.736, 5.899, "FP"),
}


@dataclass(frozen=True)
class RuntimeRow:
    app: str
    before: float
    after_ompdataperf: Optional[float]  # None when there was nothing to fix
    arbalest_cell: str                   # "FP" or "N/A"

    @property
    def ompdataperf_speedup(self) -> Optional[float]:
        if self.after_ompdataperf is None or self.after_ompdataperf <= 0:
            return None
        return self.before / self.after_ompdataperf


@dataclass
class RuntimeResult:
    size: ProblemSize
    rows: list[RuntimeRow]

    def find(self, app: str) -> RuntimeRow | None:
        for row in self.rows:
            if row.app == app:
                return row
        return None


def run(
    *,
    apps: tuple[str, ...] = HECBENCH_APP_NAMES,
    size: ProblemSize = ProblemSize.MEDIUM,
    cache: RunCache | None = None,
) -> RuntimeResult:
    cache = cache or GLOBAL_CACHE
    rows: list[RuntimeRow] = []
    for app_name in apps:
        app = get_app(app_name)
        before = cache.native_runtime(app_name, size, AppVariant.BASELINE)
        after: Optional[float] = None
        if app.supports_variant(AppVariant.FIXED):
            after = cache.native_runtime(app_name, size, AppVariant.FIXED)
        checker = _run_arbalest(app_name, size)
        # Every Arbalest report on these programs is a false positive (the
        # flagged variables are write-only), so a report maps to "FP".
        arbalest_cell = "FP" if checker.issues else "N/A"
        rows.append(
            RuntimeRow(
                app=app_name,
                before=before,
                after_ompdataperf=after,
                arbalest_cell=arbalest_cell,
            )
        )
    return RuntimeResult(size=size, rows=rows)


def render(result: RuntimeResult) -> str:
    table = Table(
        ["program", "before (s)", "OMPDP (s)", "AV", "paper before/OMPDP/AV"],
        title=f"Table 3: Runtime before and after fixing the identified issues ({result.size.value} inputs)",
    )
    for row in result.rows:
        paper = PAPER_TABLE3.get(row.app)
        paper_cell = "-"
        if paper:
            before, after, av = paper
            after_text = f"{after:.3f}" if after is not None else "N/A"
            paper_cell = f"{before:.3f} / {after_text} / {av}"
        after_cell = f"{row.after_ompdataperf:.6f}" if row.after_ompdataperf is not None else "N/A"
        table.add_row([row.app, f"{row.before:.6f}", after_cell, row.arbalest_cell, paper_cell])
    return table.render()
