"""Figure 2: runtime overhead (slowdown) of analysing each benchmark.

For every application and problem size the program is executed twice — once
natively and once with the OMPDataPerf collector attached — and the ratio of
virtual runtimes is the slowdown.  The paper reports a geometric-mean
slowdown of 1.05x with a 1.33x worst case (xsbench, large), and observes
that programs dominated by host/device communication incur more overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppVariant, ProblemSize
from repro.apps.registry import EVALUATION_APP_NAMES
from repro.experiments.common import GLOBAL_CACHE, RunCache, default_sizes
from repro.util.stats import geometric_mean
from repro.util.tables import Table


@dataclass(frozen=True)
class OverheadRow:
    app: str
    size: ProblemSize
    native_runtime: float
    instrumented_runtime: float

    @property
    def slowdown(self) -> float:
        if self.native_runtime <= 0.0:
            return 1.0
        return self.instrumented_runtime / self.native_runtime


@dataclass
class OverheadResult:
    rows: list[OverheadRow]

    @property
    def geometric_mean_slowdown(self) -> float:
        return geometric_mean([row.slowdown for row in self.rows])

    @property
    def worst_slowdown(self) -> float:
        return max(row.slowdown for row in self.rows)


def run(
    *,
    apps: tuple[str, ...] = EVALUATION_APP_NAMES,
    sizes: list[ProblemSize] | None = None,
    cache: RunCache | None = None,
) -> OverheadResult:
    """Measure the runtime overhead of the collector for every app and size."""
    cache = cache or GLOBAL_CACHE
    sizes = sizes or default_sizes()
    rows: list[OverheadRow] = []
    for app_name in apps:
        for size in sizes:
            app_run = cache.run(app_name, size, AppVariant.BASELINE)
            rows.append(
                OverheadRow(
                    app=app_name,
                    size=size,
                    native_runtime=app_run.native_runtime,
                    instrumented_runtime=app_run.instrumented_runtime,
                )
            )
    return OverheadResult(rows=rows)


def render(result: OverheadResult) -> str:
    table = Table(
        ["program", "size", "native (s)", "instrumented (s)", "slowdown"],
        title="Figure 2: Runtime overhead when analyzing with OMPDataPerf",
    )
    for row in result.rows:
        table.add_row(
            [
                row.app,
                row.size.value,
                f"{row.native_runtime:.6f}",
                f"{row.instrumented_runtime:.6f}",
                f"{row.slowdown:.3f}x",
            ]
        )
    footer = (
        f"\ngeometric-mean slowdown: {result.geometric_mean_slowdown:.3f}x"
        f"   worst case: {result.worst_slowdown:.3f}x"
        "\n(paper: 1.05x geometric mean, 1.33x worst case)"
    )
    return table.render() + footer
