"""Shared machinery for the experiment modules.

The expensive operation in every experiment is executing a simulated
application; most experiments need the same (application, size, variant)
execution in both instrumented and uninstrumented form.  ``RunCache``
memoises those executions for the lifetime of the process so that, e.g.,
the Figure 2 and Figure 3 harnesses share one set of runs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.apps.base import AppVariant, ProblemSize
from repro.apps.registry import get_app
from repro.core.profiler import OMPDataPerf, ProfileResult, run_uninstrumented


@dataclass(frozen=True)
class RunKey:
    app: str
    size: ProblemSize
    variant: AppVariant


@dataclass
class AppRun:
    """One memoised execution of an application variant."""

    key: RunKey
    #: profiling result of the instrumented run (collector attached)
    profile: ProfileResult
    #: virtual runtime of the uninstrumented (native) run
    native_runtime: float

    @property
    def instrumented_runtime(self) -> float:
        return self.profile.instrumented_runtime

    @property
    def slowdown(self) -> float:
        """Instrumented / native runtime (the Figure 2 metric)."""
        if self.native_runtime <= 0.0:
            return 1.0
        return self.instrumented_runtime / self.native_runtime


class RunCache:
    """Memoises application executions across experiment modules.

    The cache is thread-safe so the experiment runner can execute specs
    concurrently: a per-key lock serialises the first execution of each
    (application, size, variant) — two experiments that need the same run
    share one execution instead of duplicating it — while distinct keys
    proceed in parallel.  The simulated executions themselves are
    deterministic (seeded RNG, per-runtime code-pointer registries), so
    the cached result is identical no matter which thread computes it.
    """

    def __init__(self, tool: Optional[OMPDataPerf] = None) -> None:
        self.tool = tool or OMPDataPerf()
        self._runs: dict[RunKey, AppRun] = {}
        self._native_only: dict[RunKey, float] = {}
        self._mutex = threading.Lock()
        self._key_locks: dict[tuple[str, RunKey], threading.Lock] = {}

    def _lock_for(self, kind: str, key: RunKey) -> threading.Lock:
        with self._mutex:
            return self._key_locks.setdefault((kind, key), threading.Lock())

    # ------------------------------------------------------------------ #
    def run(self, app_name: str, size: ProblemSize, variant: AppVariant) -> AppRun:
        """Instrumented + uninstrumented execution of one application variant."""
        key = RunKey(app_name, size, variant)
        cached = self._runs.get(key)
        if cached is not None:
            return cached
        with self._lock_for("run", key):
            cached = self._runs.get(key)
            if cached is not None:
                return cached
            app = get_app(app_name)
            program_name = app.program_name(size, variant)
            profile = self.tool.profile(
                app.build_program(size, variant), program_name=program_name
            )
            native = self.native_runtime(app_name, size, variant)
            run = AppRun(key=key, profile=profile, native_runtime=native)
            self._runs[key] = run
            return run

    def native_runtime(self, app_name: str, size: ProblemSize, variant: AppVariant) -> float:
        """Uninstrumented execution only (no collector, no overhead)."""
        key = RunKey(app_name, size, variant)
        cached = self._native_only.get(key)
        if cached is not None:
            return cached
        with self._lock_for("native", key):
            cached = self._native_only.get(key)
            if cached is not None:
                return cached
            app = get_app(app_name)
            runtime = run_uninstrumented(
                app.build_program(size, variant),
                program_name=app.program_name(size, variant),
            )
            self._native_only[key] = runtime
            return runtime

    def supports(self, app_name: str, variant: AppVariant) -> bool:
        return get_app(app_name).supports_variant(variant)

    def clear(self) -> None:
        with self._mutex:
            self._runs.clear()
            self._native_only.clear()
            self._key_locks.clear()


#: Process-wide cache shared by all experiments (and the benchmark suite).
GLOBAL_CACHE = RunCache()


def default_sizes() -> list[ProblemSize]:
    """The three input classes of the evaluation, smallest first."""
    return [ProblemSize.SMALL, ProblemSize.MEDIUM, ProblemSize.LARGE]
