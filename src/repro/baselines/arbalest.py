"""An Arbalest-Vec-style correctness checker (the Table 2 comparison tool).

Arbalest / Arbalest-Vec detect data-mapping *correctness* anomalies in
OpenMP offload programs: use of uninitialised memory (UUM), use of stale
data (USD), use after free (UAF) and buffer overflow (BO).  The real tool
combines OMPT with binary instrumentation of kernel memory accesses and a
per-variable shadow state machine; here the same state machine runs over the
simulator's OMPT callbacks plus the instrumentation probe
(:meth:`repro.omp.runtime.OffloadRuntime.set_access_probe`), which is the
substitution for binary instrumentation.

The checker is deliberately *conservative*, as the paper observes the real
tool to be: a kernel access to a mapped buffer that still contains
uninitialised elements is reported as UUM even when the access only writes
— that is exactly the class of false positives Section 7.7 describes for
``mandelbrot-omp`` (``b[0]``), ``lif-omp`` (``spikes[0]``) and
``bspline-vgh-omp`` (``walkers_*[0]``).  Pass ``conservative=False`` for a
precise variant that only reports reads of uninitialised data (used by the
tests to show the false positives disappear).

Like its namesake, the checker reports issue *classes* per variable; it says
nothing about performance, which is the paper's point in Section 7.7.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.events.records import DataOpKind
from repro.ompt.callbacks import CallbackType, Endpoint, TargetDataOpRecord
from repro.ompt.interface import OmptInterface
from repro.omp.runtime import KernelLaunchRecord, OffloadRuntime

#: Average slowdown reported for Arbalest-Vec over native execution
#: (Section 8); the probe charges this against the monitored program so that
#: comparisons of tool overhead remain honest.
ARBALEST_SLOWDOWN_FACTOR = 3.5


class IssueKind(enum.Enum):
    """Anomaly classes detected by Arbalest-Vec."""

    UUM = "use of uninitialized memory"
    USD = "use of stale data"
    UAF = "use after free"
    BO = "buffer overflow"


@dataclass(frozen=True)
class CorrectnessIssue:
    """One reported anomaly."""

    kind: IssueKind
    variable: str
    device_num: int
    target_id: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        return f"{self.kind.name}: {self.variable} (device {self.device_num}) {self.detail}".rstrip()


@dataclass
class _ShadowBuffer:
    """Per-mapping shadow state."""

    variable: str
    device_num: int
    nbytes: int
    #: device copy fully initialised (transferred or fully written by a kernel)
    initialized: bool = False
    #: host copy modified after the last transfer to the device
    host_dirty: bool = False
    freed: bool = False


class ArbalestVecChecker:
    """Dynamic data-mapping correctness checker."""

    def __init__(self, *, conservative: bool = True) -> None:
        self.conservative = conservative
        self.issues: list[CorrectnessIssue] = []
        self._shadow: dict[tuple[int, int], _ShadowBuffer] = {}
        self._reported: set[tuple[IssueKind, str, int]] = set()
        self._interface: Optional[OmptInterface] = None

    # ------------------------------------------------------------------ #
    # Attachment
    # ------------------------------------------------------------------ #
    def attach(self, runtime: OffloadRuntime) -> "ArbalestVecChecker":
        """Attach to a runtime: OMPT callbacks + instrumentation probe."""
        runtime.ompt.connect_tool(self)
        runtime.set_access_probe(self._on_kernel_launch)
        return self

    # OmptTool protocol ------------------------------------------------- #
    def initialize(self, interface: OmptInterface) -> None:
        self._interface = interface
        interface.set_callback(CallbackType.TARGET_DATA_OP_EMI, self._on_data_op)

    def finalize(self) -> None:
        pass

    # ------------------------------------------------------------------ #
    # Event handling
    # ------------------------------------------------------------------ #
    def _key(self, host_addr: int, device_num: int) -> tuple[int, int]:
        return (host_addr, device_num)

    def _on_data_op(self, record: TargetDataOpRecord) -> float:
        if record.endpoint is not Endpoint.END:
            return 0.0
        name = record.variable or f"var@{record.src_addr:#x}"
        if record.optype is DataOpKind.ALLOC:
            key = self._key(record.src_addr, record.dest_device_num)
            self._shadow[key] = _ShadowBuffer(
                variable=name,
                device_num=record.dest_device_num,
                nbytes=record.bytes,
            )
        elif record.optype is DataOpKind.TRANSFER_TO_DEVICE:
            key = self._key(record.src_addr, record.dest_device_num)
            shadow = self._shadow.get(key)
            if shadow is not None:
                shadow.initialized = True
                shadow.host_dirty = False
        elif record.optype is DataOpKind.TRANSFER_FROM_DEVICE:
            # Host copy now matches the device copy.
            key = self._key(record.dest_addr, record.src_device_num)
            shadow = self._shadow.get(key)
            if shadow is not None:
                shadow.host_dirty = False
        elif record.optype is DataOpKind.DELETE:
            key = self._key(record.src_addr, record.dest_device_num)
            shadow = self._shadow.get(key)
            if shadow is not None:
                shadow.freed = True
        return 0.0

    def _on_kernel_launch(self, record: KernelLaunchRecord) -> float:
        """Instrumentation probe: inspect each declared kernel access."""
        overhead = (record.end_time - record.start_time) * (ARBALEST_SLOWDOWN_FACTOR - 1.0)
        for access in record.accesses:
            key = self._key(access.host_addr, record.device_num)
            shadow = self._shadow.get(key)
            if shadow is None:
                # The kernel touches data with no live mapping on this device.
                self._report(
                    IssueKind.UAF,
                    variable=f"var@{access.host_addr:#x}",
                    device_num=record.device_num,
                    target_id=record.target_id,
                    detail="access to unmapped or freed storage",
                )
                continue
            if shadow.freed:
                self._report(
                    IssueKind.UAF, shadow.variable, record.device_num, record.target_id,
                    detail="mapping was deleted before this kernel",
                )
                continue
            if not shadow.initialized:
                flag_uum = access.reads or (self.conservative and not access.full_write)
                if flag_uum:
                    self._report(
                        IssueKind.UUM,
                        f"{shadow.variable}[0]",
                        record.device_num,
                        record.target_id,
                        detail="device copy contains uninitialized elements",
                    )
            if access.reads and shadow.host_dirty:
                self._report(
                    IssueKind.USD, shadow.variable, record.device_num, record.target_id,
                    detail="host copy was modified after the last transfer",
                )
            if access.full_write:
                shadow.initialized = True
        return overhead

    def notify_host_write(self, host_addr: int, nbytes: int) -> None:
        """Record a host-side write to a mapped variable (stale-data tracking).

        Applications (or tests) call this to model host code mutating data
        whose device copy is live; a subsequent kernel read without an
        intervening ``target update`` is a use of stale data.  Buffer
        overflows are flagged when the write extends past the mapped size.
        """
        for (addr, _dev), shadow in self._shadow.items():
            if addr == host_addr and not shadow.freed:
                shadow.host_dirty = True
                if nbytes > shadow.nbytes:
                    self._report(
                        IssueKind.BO, shadow.variable, shadow.device_num, None,
                        detail=f"host write of {nbytes} bytes exceeds mapped {shadow.nbytes}",
                    )

    # ------------------------------------------------------------------ #
    def _report(
        self,
        kind: IssueKind,
        variable: str,
        device_num: int,
        target_id: Optional[int] = None,
        *,
        detail: str = "",
    ) -> None:
        dedup = (kind, variable, device_num)
        if dedup in self._reported:
            return
        self._reported.add(dedup)
        self.issues.append(
            CorrectnessIssue(
                kind=kind,
                variable=variable,
                device_num=device_num,
                target_id=target_id,
                detail=detail,
            )
        )

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def issue_kinds(self) -> list[str]:
        """Sorted unique issue-class abbreviations (Table 2 cell content)."""
        return sorted({issue.kind.name for issue in self.issues})

    def report_cell(self) -> str:
        """The Table 2 cell: issue classes, or ``N/A`` when nothing was found."""
        kinds = self.issue_kinds()
        return ", ".join(kinds) if kinds else "N/A"

    def render(self) -> str:
        if not self.issues:
            return "Arbalest-Vec: no data mapping anomalies detected."
        lines = ["Arbalest-Vec report:"]
        lines.extend(f"  - {issue}" for issue in self.issues)
        return "\n".join(lines)
