"""Comparison tools.

* :mod:`repro.baselines.arbalest` — an Arbalest-Vec-style data-mapping
  *correctness* checker (UUM / USD / UAF / BO), used for the Table 2 / 3
  comparison.  It consumes the OMPT callbacks *plus* the runtime's
  instrumentation probe (the stand-in for binary instrumentation).
* :mod:`repro.baselines.coarse_profiler` — a coarse-grained timing/volume
  profiler in the spirit of the vendor tools discussed in Section 3: it
  reports how much time and volume went into transfers, but never *which*
  transfers were unnecessary.
"""

from repro.baselines.arbalest import ArbalestVecChecker, CorrectnessIssue, IssueKind
from repro.baselines.coarse_profiler import CoarseProfile, CoarseProfiler

__all__ = [
    "ArbalestVecChecker",
    "CorrectnessIssue",
    "IssueKind",
    "CoarseProfile",
    "CoarseProfiler",
]
