"""A coarse-grained transfer profiler (the "vendor tool" strawman).

Section 3 motivates OMPDataPerf by observing that existing profilers report
only aggregate timing and volume for data transfers, leaving the programmer
to infer whether optimization potential exists.  This module implements that
level of reporting over the same OMPT callbacks so the contrast can be
demonstrated (and tested): the coarse profile sees *how much* was
transferred, never *which* transfers were unnecessary.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from repro.events.records import DataOpKind
from repro.ompt.callbacks import CallbackType, Endpoint, TargetDataOpRecord, TargetSubmitRecord
from repro.ompt.interface import OmptInterface


@dataclass
class CoarseProfile:
    """Aggregate transfer/kernel statistics for one run."""

    h2d_bytes: int = 0
    h2d_time: float = 0.0
    h2d_count: int = 0
    d2h_bytes: int = 0
    d2h_time: float = 0.0
    d2h_count: int = 0
    alloc_count: int = 0
    alloc_time: float = 0.0
    kernel_count: int = 0
    kernel_time: float = 0.0
    per_location: dict[int, float] = field(default_factory=lambda: defaultdict(float))

    @property
    def total_transfer_time(self) -> float:
        return self.h2d_time + self.d2h_time

    @property
    def total_transfer_bytes(self) -> int:
        return self.h2d_bytes + self.d2h_bytes

    def as_dict(self) -> dict:
        return {
            "h2d_bytes": self.h2d_bytes,
            "h2d_time": self.h2d_time,
            "h2d_count": self.h2d_count,
            "d2h_bytes": self.d2h_bytes,
            "d2h_time": self.d2h_time,
            "d2h_count": self.d2h_count,
            "alloc_count": self.alloc_count,
            "alloc_time": self.alloc_time,
            "kernel_count": self.kernel_count,
            "kernel_time": self.kernel_time,
        }


class CoarseProfiler:
    """OMPT tool that accumulates aggregate statistics only."""

    def __init__(self) -> None:
        self.profile = CoarseProfile()
        self._interface: Optional[OmptInterface] = None

    def initialize(self, interface: OmptInterface) -> None:
        self._interface = interface
        interface.set_callback(CallbackType.TARGET_DATA_OP_EMI, self._on_data_op)
        interface.set_callback(CallbackType.TARGET_SUBMIT_EMI, self._on_submit)

    def finalize(self) -> None:
        pass

    def _on_data_op(self, record: TargetDataOpRecord) -> float:
        if record.endpoint is not Endpoint.END:
            return 0.0
        duration = (record.end_time or record.time) - (record.start_time or record.time)
        profile = self.profile
        if record.optype is DataOpKind.TRANSFER_TO_DEVICE:
            profile.h2d_bytes += record.bytes
            profile.h2d_time += duration
            profile.h2d_count += 1
        elif record.optype is DataOpKind.TRANSFER_FROM_DEVICE:
            profile.d2h_bytes += record.bytes
            profile.d2h_time += duration
            profile.d2h_count += 1
        elif record.optype in (DataOpKind.ALLOC, DataOpKind.DELETE):
            profile.alloc_count += 1
            profile.alloc_time += duration
        if record.codeptr_ra is not None:
            profile.per_location[record.codeptr_ra] += duration
        return 0.0

    def _on_submit(self, record: TargetSubmitRecord) -> float:
        if record.endpoint is Endpoint.END and record.start_time is not None:
            self.profile.kernel_count += 1
            self.profile.kernel_time += (record.end_time or record.time) - record.start_time
        return 0.0
