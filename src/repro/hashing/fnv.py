"""FNV-1a hashes (32- and 64-bit).

FNV-1a is the classic byte-at-a-time multiplicative hash.  It is the slowest
family in the evaluation (it processes one byte per step), which makes it a
useful lower bound in the Table 4 / Figure 5 reproduction, mirroring the role
the 32-bit CityHash/XXH32 variants play in the paper.
"""

from __future__ import annotations

from repro.hashing.base import HashFamily, Hasher

_FNV32_OFFSET = 0x811C9DC5
_FNV32_PRIME = 0x01000193
_FNV64_OFFSET = 0xCBF29CE484222325
_FNV64_PRIME = 0x100000001B3

_MASK32 = (1 << 32) - 1
_MASK64 = (1 << 64) - 1


class FNV1a32(Hasher):
    """32-bit FNV-1a."""

    name = "fnv1a32"
    bits = 32
    family = HashFamily.FNV

    def hash_bytes(self, data: bytes, seed: int = 0) -> int:
        h = (_FNV32_OFFSET ^ (seed & _MASK32)) & _MASK32
        for b in data:
            h ^= b
            h = (h * _FNV32_PRIME) & _MASK32
        return h


class FNV1a64(Hasher):
    """64-bit FNV-1a."""

    name = "fnv1a64"
    bits = 64
    family = HashFamily.FNV

    def hash_bytes(self, data: bytes, seed: int = 0) -> int:
        h = (_FNV64_OFFSET ^ (seed & _MASK64)) & _MASK64
        for b in data:
            h ^= b
            h = (h * _FNV64_PRIME) & _MASK64
        return h
