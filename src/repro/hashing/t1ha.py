"""A t1ha-style 64-bit hash ("Fast Positive Hash" family).

t1ha0_avx2 is the default hash selected by the paper (Appendix B.1).  This
implementation reproduces the t1ha structure — 32-byte stripes folded through
a 128-bit multiply-and-fold mixer — in portable Python integer arithmetic.
"""

from __future__ import annotations

import struct

from repro.hashing.base import HashFamily, Hasher, rotl

_MASK64 = (1 << 64) - 1

# t1ha prime constants.
_P0 = 0xEC99BF0D8372CAAB
_P1 = 0x82434FE90EDCEF39
_P2 = 0xD4F06DB99D67BE4B
_P3 = 0xBD9CACC22C6E9571
_P4 = 0x9C06FAF4D023E3AB
_P5 = 0xC060724A8424F345
_P6 = 0xCB5AF53AE3AAAC31


def _mux64(v: int, prime: int) -> int:
    """128-bit multiply, fold the halves together (t1ha's core mixer)."""
    product = v * prime
    lo = product & _MASK64
    hi = (product >> 64) & _MASK64
    return lo ^ hi


class T1HAStyle64(Hasher):
    """t1ha-style 64-bit hash."""

    name = "t1ha64"
    bits = 64
    family = HashFamily.T1HA

    def hash_bytes(self, data: bytes, seed: int = 0) -> int:
        length = len(data)
        a = (seed ^ length) & _MASK64
        b = (_P0 + length) & _MASK64

        idx = 0
        # 32-byte stripes, two lanes.
        while idx + 32 <= length:
            w0, w1, w2, w3 = struct.unpack_from("<QQQQ", data, idx)
            d = (w0 + rotl(w2 + length, 17)) & _MASK64
            c = (w1 + rotl(w3, 31)) & _MASK64
            a ^= _mux64((c + rotl(d, 41)) & _MASK64, _P1)
            b ^= _mux64((d + rotl(c, 23)) & _MASK64, _P2)
            idx += 32

        remaining = length - idx
        if remaining >= 16:
            w0, w1 = struct.unpack_from("<QQ", data, idx)
            a ^= _mux64(w0, _P3)
            b ^= _mux64(w1, _P4)
            idx += 16
            remaining -= 16
        if remaining >= 8:
            (w0,) = struct.unpack_from("<Q", data, idx)
            a ^= _mux64(w0, _P5)
            idx += 8
            remaining -= 8
        if remaining > 0:
            tail = int.from_bytes(data[idx:length], "little")
            b ^= _mux64((tail + remaining) & _MASK64, _P6)

        # Final squash.
        h = _mux64((a + rotl(b, 41)) & _MASK64, _P4)
        h = _mux64((h ^ b) & _MASK64, _P0)
        return h & _MASK64
