"""A CityHash-style 64-bit mixing hash.

This follows the structure of Google's CityHash64 (16-byte chunks combined
with the ShiftMix / HashLen16 primitives) without reproducing the full
length-specialised dispatch.  In the evaluation it stands in for the
CityHash/FarmHash family column of Table 4.
"""

from __future__ import annotations

import struct

from repro.hashing.base import HashFamily, Hasher, rotl

_MASK64 = (1 << 64) - 1
_K0 = 0xC3A5C85C97CB3127
_K1 = 0xB492B66FBE98F273
_K2 = 0x9AE16A3B2F90404F
_KMUL = 0x9DDFEA08EB382D69


def _shift_mix(v: int) -> int:
    return (v ^ (v >> 47)) & _MASK64


def _hash_len_16(u: int, v: int) -> int:
    a = ((u ^ v) * _KMUL) & _MASK64
    a ^= a >> 47
    b = ((v ^ a) * _KMUL) & _MASK64
    b ^= b >> 47
    return (b * _KMUL) & _MASK64


class CityMix64(Hasher):
    """CityHash-style 64-bit hash."""

    name = "citymix64"
    bits = 64
    family = HashFamily.CITY

    def hash_bytes(self, data: bytes, seed: int = 0) -> int:
        length = len(data)
        seed &= _MASK64

        if length == 0:
            return _hash_len_16(_K2 ^ seed, _K0)

        if length < 8:
            padded = data + b"\x00" * (8 - length)
            (a,) = struct.unpack("<Q", padded)
            return _hash_len_16((a + length) & _MASK64, _K2 ^ seed)

        h = (seed ^ _K2) & _MASK64
        idx = 0
        # Consume 16-byte chunks.
        while idx + 16 <= length:
            a, b = struct.unpack_from("<QQ", data, idx)
            a = (a * _K1) & _MASK64
            a = rotl(a, 29)
            b = (b * _K2) & _MASK64
            b = rotl(b, 43)
            h = _hash_len_16((h + a) & _MASK64, b)
            h = (h + _K0) & _MASK64
            idx += 16

        # Tail: re-read the final 8 bytes (overlapping is fine and matches
        # CityHash's approach of hashing the last word unconditionally).
        if idx < length:
            (tail,) = struct.unpack_from("<Q", data, max(0, length - 8))
            h = _hash_len_16(h, (tail * _K1) & _MASK64)

        h = (_shift_mix((h + length) & _MASK64) * _K1) & _MASK64
        return _shift_mix(h)
