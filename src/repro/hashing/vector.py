"""Bulk/vectorised hashes: the fast path actually used by the collector.

The paper selects ``t1ha0_avx2`` as the default because SIMD hashes keep the
hashing cost below the host/device transfer cost.  The pure-Python byte- and
word-at-a-time hashes in this package can never reach that regime, so the
reproduction's default hash (``VectorHash64``) hashes the payload with numpy
wide operations (the Python analogue of a SIMD hash), and ``CRC32Hash`` /
``Adler32Hash`` expose zlib's C-speed checksums as additional "library"
hashes.  These three occupy the top of the Table 4 reproduction just as the
AVX2-accelerated hashes top the paper's table.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.hashing.base import HashFamily, Hasher, as_bytes, BytesLike

_MASK64 = (1 << 64) - 1

# Splitmix64-style constants for the per-lane multipliers and finaliser.
_MULT_A = 0xBF58476D1CE4E5B9
_MULT_B = 0x94D049BB133111EB
_GOLDEN = 0x9E3779B97F4A7C15


def _splitmix64(x: int) -> int:
    x = (x + _GOLDEN) & _MASK64
    x ^= x >> 30
    x = (x * _MULT_A) & _MASK64
    x ^= x >> 27
    x = (x * _MULT_B) & _MASK64
    x ^= x >> 31
    return x


class VectorHash64(Hasher):
    """A numpy-vectorised 64-bit mixing hash.

    The payload is viewed as little-endian 64-bit lanes; each lane is mixed
    with a position-dependent multiplier (derived from a splitmix64 stream)
    and the lanes are XOR/sum-folded into a single word, followed by a
    splitmix64 finaliser.  The per-lane work is a handful of numpy ufunc
    calls, so throughput scales with memory bandwidth rather than the Python
    interpreter — the same property the AVX2 hashes have natively.
    """

    name = "vector64"
    bits = 64
    family = HashFamily.VECTOR

    #: number of pre-generated position multipliers; positions beyond this
    #: reuse the table cyclically, offset by a block counter, which keeps the
    #: table small without making lane positions interchangeable.
    _TABLE_SIZE = 4096

    def __init__(self) -> None:
        stream = np.empty(self._TABLE_SIZE, dtype=np.uint64)
        x = 0x0DDB1A5E55ED1CE5
        for i in range(self._TABLE_SIZE):
            x = _splitmix64(x)
            # Force odd multipliers so the per-lane multiply is a bijection.
            stream[i] = np.uint64(x | 1)
        self._multipliers = stream

    def hash_bytes(self, data: bytes, seed: int = 0) -> int:
        return self._hash_buffer(np.frombuffer(data, dtype=np.uint8), len(data), seed)

    def hash(self, data: BytesLike, seed: int = 0) -> int:
        """Hash without forcing a bytes copy when given a contiguous array."""
        if isinstance(data, np.ndarray):
            arr = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
            return self._hash_buffer(arr, arr.size, seed)
        raw = as_bytes(data)
        return self._hash_buffer(np.frombuffer(raw, dtype=np.uint8), len(raw), seed)

    def _hash_buffer(self, buf: np.ndarray, length: int, seed: int) -> int:
        if length == 0:
            return _splitmix64(seed & _MASK64)

        n_lanes = length // 8
        acc = np.uint64(0)
        err = np.seterr(over="ignore")
        try:
            if n_lanes:
                lanes = buf[: n_lanes * 8].view("<u8")
                mults = self._multipliers
                if n_lanes <= self._TABLE_SIZE:
                    mixed = lanes * mults[:n_lanes]
                else:
                    mixed = np.empty(n_lanes, dtype=np.uint64)
                    for block_start in range(0, n_lanes, self._TABLE_SIZE):
                        block_end = min(block_start + self._TABLE_SIZE, n_lanes)
                        block_salt = np.uint64(_splitmix64(block_start) | 1)
                        np.multiply(
                            lanes[block_start:block_end] ^ block_salt,
                            mults[: block_end - block_start],
                            out=mixed[block_start:block_end],
                        )
                # Two independent folds so that lane reordering changes the result.
                xor_fold = np.bitwise_xor.reduce(mixed)
                sum_fold = np.add.reduce(mixed, dtype=np.uint64)
                acc = xor_fold ^ np.uint64(_splitmix64(int(sum_fold)))

            tail = buf[n_lanes * 8 :]
            tail_word = 0
            if tail.size:
                tail_word = int.from_bytes(tail.tobytes(), "little")
        finally:
            np.seterr(**err)

        h = int(acc) ^ ((length * _GOLDEN) & _MASK64) ^ (seed & _MASK64)
        h = _splitmix64(h)
        h = _splitmix64(h ^ tail_word)
        return h & _MASK64


class CRC32Hash(Hasher):
    """zlib's CRC-32 exposed through the hasher interface.

    CRC-32 is only 32 bits wide, so it is *not* suitable as the collector
    default (birthday collisions are plausible for large traces); it is kept
    as a throughput reference point in the hash evaluation.
    """

    name = "crc32"
    bits = 32
    family = HashFamily.LIBRARY

    def hash_bytes(self, data: bytes, seed: int = 0) -> int:
        return zlib.crc32(data, seed & 0xFFFFFFFF) & 0xFFFFFFFF


class Adler32Hash(Hasher):
    """zlib's Adler-32 exposed through the hasher interface.

    Adler-32 is a checksum rather than a hash (short inputs with equal byte
    sums collide); it is kept purely as a throughput reference point in the
    hash evaluation and must never be used as the collector default.  The
    seed is folded into the result with a splitmix-style mix because the
    checksum's own initial value only affects the low half of the state.
    """

    name = "adler32"
    bits = 32
    family = HashFamily.LIBRARY

    def hash_bytes(self, data: bytes, seed: int = 0) -> int:
        value = zlib.adler32(data, 1) & 0xFFFFFFFF
        if seed:
            value ^= (_splitmix64(seed) & 0xFFFFFFFF)
        return value
