"""Content-hashing substrate (paper Appendix B).

OMPDataPerf identifies duplicate and round-trip transfers by hashing the
transferred payloads.  The paper evaluates 19 native non-cryptographic hash
functions; this package provides a from-scratch family of non-cryptographic
hashes with a common interface, a registry, a hash-rate measurement harness
(Table 4 / Figure 5) and a collision-audit mode (Appendix B.1).
"""

from repro.hashing.base import Hasher, HashFamily, available_hashers, get_hasher, register_hasher
from repro.hashing.fnv import FNV1a32, FNV1a64
from repro.hashing.murmur import Murmur3_32
from repro.hashing.xx import XXH32, XXH64
from repro.hashing.city import CityMix64
from repro.hashing.t1ha import T1HAStyle64
from repro.hashing.vector import VectorHash64, CRC32Hash, Adler32Hash
from repro.hashing.collision import CollisionAuditor, CollisionRecord
from repro.hashing.ratebench import HashRateSample, measure_hash_rate, sweep_sizes

#: Name of the hash OMPDataPerf uses by default.  The paper picks
#: ``t1ha0_avx2`` because it is the fastest native hash on its machine; in
#: this pure-Python reproduction the numpy-vectorised hash plays that role.
DEFAULT_HASHER = "vector64"

__all__ = [
    "Hasher",
    "HashFamily",
    "available_hashers",
    "get_hasher",
    "register_hasher",
    "FNV1a32",
    "FNV1a64",
    "Murmur3_32",
    "XXH32",
    "XXH64",
    "CityMix64",
    "T1HAStyle64",
    "VectorHash64",
    "CRC32Hash",
    "Adler32Hash",
    "CollisionAuditor",
    "CollisionRecord",
    "HashRateSample",
    "measure_hash_rate",
    "sweep_sizes",
    "DEFAULT_HASHER",
]
