"""xxHash32 and xxHash64 implemented from the reference algorithm.

These are the canonical "fast word-at-a-time" hashes in the paper's
evaluation (XXH32 / XXH64 / XXH3 columns of Table 4).  The implementations
follow the published specification (stripe processing, lane accumulators and
the avalanche finalisation); only XXH3's SIMD path is not reproduced since
there is no meaningful Python equivalent.
"""

from __future__ import annotations

import struct

from repro.hashing.base import HashFamily, Hasher, rotl

_MASK32 = (1 << 32) - 1
_MASK64 = (1 << 64) - 1

_P32_1 = 0x9E3779B1
_P32_2 = 0x85EBCA77
_P32_3 = 0xC2B2AE3D
_P32_4 = 0x27D4EB2F
_P32_5 = 0x165667B1

_P64_1 = 0x9E3779B185EBCA87
_P64_2 = 0xC2B2AE3D27D4EB4F
_P64_3 = 0x165667B19E3779F9
_P64_4 = 0x85EBCA77C2B2AE63
_P64_5 = 0x27D4EB2F165667C5


class XXH32(Hasher):
    """xxHash, 32-bit variant."""

    name = "xxh32"
    bits = 32
    family = HashFamily.XXHASH

    def hash_bytes(self, data: bytes, seed: int = 0) -> int:
        seed &= _MASK32
        length = len(data)
        idx = 0

        if length >= 16:
            v1 = (seed + _P32_1 + _P32_2) & _MASK32
            v2 = (seed + _P32_2) & _MASK32
            v3 = seed
            v4 = (seed - _P32_1) & _MASK32
            limit = length - 16
            while idx <= limit:
                l1, l2, l3, l4 = struct.unpack_from("<IIII", data, idx)
                v1 = self._round(v1, l1)
                v2 = self._round(v2, l2)
                v3 = self._round(v3, l3)
                v4 = self._round(v4, l4)
                idx += 16
            h = (rotl(v1, 1, 32) + rotl(v2, 7, 32) + rotl(v3, 12, 32) + rotl(v4, 18, 32)) & _MASK32
        else:
            h = (seed + _P32_5) & _MASK32

        h = (h + length) & _MASK32

        while idx + 4 <= length:
            (lane,) = struct.unpack_from("<I", data, idx)
            h = (h + lane * _P32_3) & _MASK32
            h = (rotl(h, 17, 32) * _P32_4) & _MASK32
            idx += 4

        while idx < length:
            h = (h + data[idx] * _P32_5) & _MASK32
            h = (rotl(h, 11, 32) * _P32_1) & _MASK32
            idx += 1

        h ^= h >> 15
        h = (h * _P32_2) & _MASK32
        h ^= h >> 13
        h = (h * _P32_3) & _MASK32
        h ^= h >> 16
        return h

    @staticmethod
    def _round(acc: int, lane: int) -> int:
        acc = (acc + lane * _P32_2) & _MASK32
        acc = rotl(acc, 13, 32)
        return (acc * _P32_1) & _MASK32


class XXH64(Hasher):
    """xxHash, 64-bit variant."""

    name = "xxh64"
    bits = 64
    family = HashFamily.XXHASH

    def hash_bytes(self, data: bytes, seed: int = 0) -> int:
        seed &= _MASK64
        length = len(data)
        idx = 0

        if length >= 32:
            v1 = (seed + _P64_1 + _P64_2) & _MASK64
            v2 = (seed + _P64_2) & _MASK64
            v3 = seed
            v4 = (seed - _P64_1) & _MASK64
            limit = length - 32
            while idx <= limit:
                l1, l2, l3, l4 = struct.unpack_from("<QQQQ", data, idx)
                v1 = self._round(v1, l1)
                v2 = self._round(v2, l2)
                v3 = self._round(v3, l3)
                v4 = self._round(v4, l4)
                idx += 32
            h = (rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18)) & _MASK64
            h = self._merge_round(h, v1)
            h = self._merge_round(h, v2)
            h = self._merge_round(h, v3)
            h = self._merge_round(h, v4)
        else:
            h = (seed + _P64_5) & _MASK64

        h = (h + length) & _MASK64

        while idx + 8 <= length:
            (lane,) = struct.unpack_from("<Q", data, idx)
            h ^= self._round(0, lane)
            h = (rotl(h, 27) * _P64_1 + _P64_4) & _MASK64
            idx += 8

        if idx + 4 <= length:
            (lane,) = struct.unpack_from("<I", data, idx)
            h ^= (lane * _P64_1) & _MASK64
            h = (rotl(h, 23) * _P64_2 + _P64_3) & _MASK64
            idx += 4

        while idx < length:
            h ^= (data[idx] * _P64_5) & _MASK64
            h = (rotl(h, 11) * _P64_1) & _MASK64
            idx += 1

        h ^= h >> 33
        h = (h * _P64_2) & _MASK64
        h ^= h >> 29
        h = (h * _P64_3) & _MASK64
        h ^= h >> 32
        return h

    @staticmethod
    def _round(acc: int, lane: int) -> int:
        acc = (acc + lane * _P64_2) & _MASK64
        acc = rotl(acc, 31)
        return (acc * _P64_1) & _MASK64

    @classmethod
    def _merge_round(cls, acc: int, val: int) -> int:
        val = cls._round(0, val)
        acc ^= val
        return (acc * _P64_1 + _P64_4) & _MASK64
