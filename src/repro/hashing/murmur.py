"""MurmurHash3 (x86, 32-bit) implemented from the reference algorithm."""

from __future__ import annotations

import struct

from repro.hashing.base import HashFamily, Hasher, rotl

_MASK32 = (1 << 32) - 1
_C1 = 0xCC9E2D51
_C2 = 0x1B873593


class Murmur3_32(Hasher):
    """MurmurHash3 x86_32."""

    name = "murmur3_32"
    bits = 32
    family = HashFamily.MURMUR

    def hash_bytes(self, data: bytes, seed: int = 0) -> int:
        h = seed & _MASK32
        length = len(data)
        nblocks = length // 4

        for (k,) in struct.iter_unpack("<I", data[: nblocks * 4]):
            k = (k * _C1) & _MASK32
            k = rotl(k, 15, 32)
            k = (k * _C2) & _MASK32
            h ^= k
            h = rotl(h, 13, 32)
            h = (h * 5 + 0xE6546B64) & _MASK32

        # tail
        tail = data[nblocks * 4 :]
        k = 0
        if len(tail) >= 3:
            k ^= tail[2] << 16
        if len(tail) >= 2:
            k ^= tail[1] << 8
        if len(tail) >= 1:
            k ^= tail[0]
            k = (k * _C1) & _MASK32
            k = rotl(k, 15, 32)
            k = (k * _C2) & _MASK32
            h ^= k

        # finalisation mix
        h ^= length
        h ^= h >> 16
        h = (h * 0x85EBCA6B) & _MASK32
        h ^= h >> 13
        h = (h * 0xC2B2AE35) & _MASK32
        h ^= h >> 16
        return h
