"""Common hasher interface and registry.

Every hasher maps an arbitrary byte payload to a fixed-width unsigned
integer.  The collector only ever stores the integer (that is the point of
the content-based approach: constant memory per transfer regardless of
payload size), so the interface is deliberately tiny.
"""

from __future__ import annotations

import abc
import enum
from typing import Union

import numpy as np

BytesLike = Union[bytes, bytearray, memoryview, np.ndarray]

_MASK64 = (1 << 64) - 1
_MASK32 = (1 << 32) - 1


def as_bytes(data: BytesLike) -> bytes:
    """Normalise a payload to ``bytes``.

    numpy arrays are serialised through their raw buffer; non-contiguous
    arrays are copied first (matching what a real tool sees: the bytes that
    actually cross the interconnect).
    """
    if isinstance(data, np.ndarray):
        return np.ascontiguousarray(data).tobytes()
    if isinstance(data, (bytes, bytearray)):
        return bytes(data)
    if isinstance(data, memoryview):
        return data.tobytes()
    raise TypeError(f"cannot hash object of type {type(data).__name__}")


class HashFamily(enum.Enum):
    """Rough grouping used when reporting Table 4 / Figure 5 results."""

    FNV = "fnv"
    MURMUR = "murmur"
    XXHASH = "xxhash"
    CITY = "city"
    T1HA = "t1ha"
    VECTOR = "vector"
    LIBRARY = "library"


class Hasher(abc.ABC):
    """A non-cryptographic content hash."""

    #: registry name, e.g. ``"xxh64"``
    name: str = "abstract"
    #: output width in bits
    bits: int = 64
    #: family used for grouping in the hash evaluation
    family: HashFamily = HashFamily.VECTOR

    @abc.abstractmethod
    def hash_bytes(self, data: bytes, seed: int = 0) -> int:
        """Hash a byte string, returning an unsigned integer of ``self.bits`` bits."""

    def hash(self, data: BytesLike, seed: int = 0) -> int:
        """Hash an arbitrary payload (bytes or numpy array)."""
        return self.hash_bytes(as_bytes(data), seed)

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} bits={self.bits}>"


_REGISTRY: dict[str, Hasher] = {}


def register_hasher(hasher: Hasher, *, replace: bool = False) -> Hasher:
    """Add a hasher instance to the global registry."""
    if not replace and hasher.name in _REGISTRY:
        raise ValueError(f"hasher {hasher.name!r} is already registered")
    _REGISTRY[hasher.name] = hasher
    return hasher


def get_hasher(name: str) -> Hasher:
    """Look up a registered hasher by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown hasher {name!r}; known hashers: {known}") from None


def available_hashers() -> dict[str, Hasher]:
    """Return a copy of the registry (name -> hasher instance)."""
    _ensure_builtins()
    return dict(_REGISTRY)


_builtins_loaded = False


def _ensure_builtins() -> None:
    """Register the built-in hashers on first use (avoids import cycles)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    from repro.hashing.fnv import FNV1a32, FNV1a64
    from repro.hashing.murmur import Murmur3_32
    from repro.hashing.xx import XXH32, XXH64
    from repro.hashing.city import CityMix64
    from repro.hashing.t1ha import T1HAStyle64
    from repro.hashing.vector import VectorHash64, CRC32Hash, Adler32Hash

    for hasher in (
        FNV1a32(),
        FNV1a64(),
        Murmur3_32(),
        XXH32(),
        XXH64(),
        CityMix64(),
        T1HAStyle64(),
        VectorHash64(),
        CRC32Hash(),
        Adler32Hash(),
    ):
        if hasher.name not in _REGISTRY:
            _REGISTRY[hasher.name] = hasher


def rotl(value: int, count: int, bits: int = 64) -> int:
    """Rotate ``value`` left by ``count`` within a ``bits``-wide word."""
    mask = (1 << bits) - 1
    count %= bits
    value &= mask
    return ((value << count) | (value >> (bits - count))) & mask


def mask64(value: int) -> int:
    return value & _MASK64


def mask32(value: int) -> int:
    return value & _MASK32
