"""Collision auditing (Appendix B.1).

The detection algorithms assume the hash is collision-free.  The paper adds
an optional mode that stores a copy of every transferred payload and checks,
for each hash value, that all payloads mapping to it are identical.  This is
exactly what :class:`CollisionAuditor` does; it is used by the hash-quality
tests and can be attached to the collector for paranoid runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hashing.base import BytesLike, Hasher, as_bytes


@dataclass(frozen=True)
class CollisionRecord:
    """Two distinct payloads that hashed to the same value."""

    hash_value: int
    first_payload: bytes
    second_payload: bytes

    def __post_init__(self) -> None:
        if self.first_payload == self.second_payload:
            raise ValueError("a collision requires two distinct payloads")


@dataclass
class CollisionAuditor:
    """Stores payload copies keyed by hash value and reports collisions.

    This trades "extremely high memory overhead" (the paper's words) for
    certainty: when enabled, every unique payload is retained.  Identical
    payloads are deduplicated, so repeated transfers of the same data — the
    common case in the traces we audit — do not grow memory further.
    """

    hasher: Hasher
    _payloads: dict[int, bytes] = field(default_factory=dict, init=False, repr=False)
    collisions: list[CollisionRecord] = field(default_factory=list, init=False)
    observed: int = field(default=0, init=False)
    stored_bytes: int = field(default=0, init=False)

    def observe(self, data: BytesLike, seed: int = 0) -> int:
        """Hash a payload, recording it for collision checking.

        Returns the hash value so the auditor can be used as a drop-in
        wrapper around the hasher.
        """
        payload = as_bytes(data)
        value = self.hasher.hash_bytes(payload, seed)
        self.observed += 1
        existing = self._payloads.get(value)
        if existing is None:
            self._payloads[value] = payload
            self.stored_bytes += len(payload)
        elif existing != payload:
            self.collisions.append(
                CollisionRecord(hash_value=value, first_payload=existing, second_payload=payload)
            )
        return value

    @property
    def num_unique_payloads(self) -> int:
        return len(self._payloads)

    @property
    def num_collisions(self) -> int:
        return len(self.collisions)

    def is_collision_free(self) -> bool:
        return not self.collisions

    def report(self) -> dict:
        return {
            "hasher": self.hasher.name,
            "observed": self.observed,
            "unique_payloads": self.num_unique_payloads,
            "stored_bytes": self.stored_bytes,
            "collisions": self.num_collisions,
        }
