"""Hash-rate measurement (Table 4 and Figure 5 of the paper).

Table 4 reports, for each benchmark's medium problem size, the effective
hashing throughput of every candidate hash over the transfer payloads the
collector actually sees.  Figure 5 sweeps synthetic buffer sizes from 2 B to
256 MiB and compares hash throughput against host/device transfer throughput.
Both harnesses live here; the experiment modules only format the results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.hashing.base import Hasher
from repro.util.rng import make_rng


@dataclass(frozen=True)
class HashRateSample:
    """One throughput measurement."""

    hasher: str
    nbytes: int
    seconds: float
    repeats: int

    @property
    def bytes_per_second(self) -> float:
        if self.seconds <= 0.0:
            return float("inf")
        return (self.nbytes * self.repeats) / self.seconds

    @property
    def gib_per_second(self) -> float:
        return self.bytes_per_second / float(1 << 30)


def _time_callable(fn: Callable[[], None], *, repeats: int, timer=time.perf_counter) -> float:
    start = timer()
    for _ in range(repeats):
        fn()
    return max(timer() - start, 1e-12)


def measure_hash_rate(
    hasher: Hasher,
    payloads: Sequence[np.ndarray | bytes],
    *,
    repeats: int = 1,
    timer=time.perf_counter,
) -> HashRateSample:
    """Measure the effective hash rate over a set of payloads.

    The payload set is hashed ``repeats`` times back-to-back and the total
    byte volume divided by wall-clock time, matching the paper's "effective
    hash rate of the data transferred" metric.
    """
    if not payloads:
        raise ValueError("need at least one payload")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    total_bytes = 0
    for p in payloads:
        total_bytes += p.nbytes if isinstance(p, np.ndarray) else len(p)

    def run() -> None:
        for p in payloads:
            hasher.hash(p)

    # One warm-up pass so first-touch / allocation effects don't pollute the
    # measurement (the guides' "no optimization without measuring" rule).
    run()
    seconds = _time_callable(run, repeats=repeats, timer=timer)
    return HashRateSample(hasher=hasher.name, nbytes=total_bytes, seconds=seconds, repeats=repeats)


def sweep_sizes(
    hasher: Hasher,
    sizes: Iterable[int],
    *,
    repeats_for: Callable[[int], int] | None = None,
    seed: int = 0,
    timer=time.perf_counter,
) -> list[HashRateSample]:
    """Measure hash throughput across a sweep of buffer sizes (Figure 5).

    ``repeats_for`` maps a buffer size to a repeat count; the default aims
    for a few megabytes of hashed data per size so that small buffers are
    timed over many iterations while huge buffers are hashed once or twice.
    """
    if repeats_for is None:
        def repeats_for(size: int) -> int:
            target = 8 << 20  # ~8 MiB of hashed data per sample
            return max(1, min(4096, target // max(size, 1)))

    rng = make_rng("hash-size-sweep", hasher.name, seed)
    samples: list[HashRateSample] = []
    for size in sizes:
        if size <= 0:
            raise ValueError("buffer sizes must be positive")
        payload = rng.integers(0, 256, size=size, dtype=np.uint8)
        sample = measure_hash_rate(
            hasher, [payload], repeats=repeats_for(size), timer=timer
        )
        samples.append(sample)
    return samples


def default_figure5_sizes() -> list[int]:
    """The buffer sizes used by Figure 5: powers of two from 2^1 to 2^28."""
    return [1 << p for p in range(1, 29)]
