#!/usr/bin/env python3
"""Performance profiling vs correctness checking (Section 7.7).

Runs the HeCBench ``bspline-vgh-omp`` program under both tools:

* OMPDataPerf reports the duplicate coefficient updates inside the walker
  loop (plus an unused transfer and an unused allocation) and quantifies the
  benefit of staging the coefficients once;
* the Arbalest-Vec-style correctness checker reports only a conservative
  use-of-uninitialised-memory warning for the write-only output arrays — a
  false positive that, even if "fixed", would not make the program faster.

Run with::

    python examples/correctness_vs_performance.py
"""

from repro import OMPDataPerf
from repro.apps.base import AppVariant, ProblemSize
from repro.apps.registry import get_app
from repro.baselines.arbalest import ArbalestVecChecker
from repro.core.profiler import run_uninstrumented
from repro.omp.runtime import OffloadRuntime

SIZE = ProblemSize.MEDIUM
APP = "bspline-vgh-omp"


def run_with_arbalest(app, variant: AppVariant) -> ArbalestVecChecker:
    runtime = OffloadRuntime(program_name=app.program_name(SIZE, variant))
    checker = ArbalestVecChecker().attach(runtime)
    app.build_program(SIZE, variant)(runtime)
    runtime.finish()
    return checker


def main() -> None:
    app = get_app(APP)
    tool = OMPDataPerf()

    print(f"=== OMPDataPerf on {APP} ===")
    profile = tool.profile(
        app.build_program(SIZE, AppVariant.BASELINE),
        program_name=app.program_name(SIZE, AppVariant.BASELINE),
    )
    print(profile.render_report())

    print()
    print(f"=== Arbalest-Vec-style checker on {APP} ===")
    checker = run_with_arbalest(app, AppVariant.BASELINE)
    print(checker.render())
    print("(the flagged variables are write-only inside the kernel: false positives)")

    print()
    print("=== What actually makes the program faster ===")
    before = run_uninstrumented(app.build_program(SIZE, AppVariant.BASELINE))
    after = run_uninstrumented(app.build_program(SIZE, AppVariant.FIXED))
    h2d_before = len(profile.trace.transfers_to_devices())
    fixed_profile = tool.profile(app.build_program(SIZE, AppVariant.FIXED))
    h2d_after = len(fixed_profile.trace.transfers_to_devices())
    print(f"copy-to-device calls: {h2d_before} -> {h2d_after} "
          f"({100 * (1 - h2d_after / h2d_before):.1f}% reduction)")
    print(f"runtime             : {before * 1e3:.3f} ms -> {after * 1e3:.3f} ms "
          f"({100 * (before - after) / before:.1f}% faster)")


if __name__ == "__main__":
    main()
