#!/usr/bin/env python3
"""Quickstart: detect the paper's Listing 1 / Listing 2 patterns.

Writes a tiny "OpenMP offload program" against the runtime simulator,
profiles it with OMPDataPerf, and prints the analysis report with source
attribution and the optimization-potential estimate.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import OMPDataPerf
from repro.core.profiler import run_uninstrumented
from repro.omp.mapping import to, tofrom
from repro.omp.runtime import OffloadRuntime

N = 50_000


def listing1_and_listing2(rt: OffloadRuntime) -> None:
    """The two motivating examples from Section 4 of the paper.

    Listing 1: array ``a`` is mapped ``to`` each of two consecutive target
    regions, so its second transfer is a duplicate and its storage is
    re-allocated.  Listing 2: a kernel inside a loop with an implicit
    ``tofrom`` mapping sends the unmodified intermediate result back and
    forth every iteration.
    """
    a = np.arange(N, dtype=np.float64)
    total = np.zeros(1)
    prod = np.ones(1)

    # --- Listing 1: duplicate transfer of `a` ---------------------------
    rt.target(
        maps=[to(a), tofrom(total)],
        reads=[a],
        writes=[total],
        kernel=lambda dev: dev[total].__setitem__(0, dev[a].sum()),
        name="sum_kernel",
    )
    rt.target(
        maps=[to(a), tofrom(prod)],
        reads=[a],
        writes=[prod],
        kernel=lambda dev: dev[prod].__setitem__(0, dev[a][:8].prod()),
        name="prod_kernel",
    )

    # --- Listing 2: round trips from an implicit mapping in a loop ------
    work = np.zeros(N // 10)
    for _ in range(5):
        rt.target(
            reads=[work],
            writes=[work],
            kernel=lambda dev: dev[work].__iadd__(np.arange(work.size)),
            name="loop_kernel",
        )


def main() -> None:
    tool = OMPDataPerf()
    result = tool.profile(listing1_and_listing2, program_name="quickstart")

    print(result.render_report())
    print()
    counts = result.analysis.counts.as_dict()
    print(f"issue counts: {counts}")
    print(f"instrumented runtime : {result.instrumented_runtime * 1e3:.3f} ms")
    print(f"tool overhead        : {result.tool_overhead * 1e6:.1f} us "
          f"({100 * result.tool_overhead / result.instrumented_runtime:.2f}%)")
    native = run_uninstrumented(listing1_and_listing2)
    print(f"native runtime       : {native * 1e3:.3f} ms "
          f"(slowdown {result.instrumented_runtime / native:.3f}x)")
    print(f"predicted speedup if fixed: "
          f"{result.analysis.potential.predicted_speedup:.2f}x")


if __name__ == "__main__":
    main()
