#!/usr/bin/env python3
"""Regenerate the paper's tables and figures.

Usage::

    python examples/run_paper_experiments.py                 # everything, full sizes
    python examples/run_paper_experiments.py --quick         # small inputs only
    python examples/run_paper_experiments.py table1 fig2     # a subset

The rendered tables are printed and also written to ``experiment_results/``.
"""

import argparse
from pathlib import Path

from repro.experiments.runner import available_experiments, run_experiments


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*",
                        help=f"subset to run (default: all). Available: {', '.join(available_experiments())}")
    parser.add_argument("--quick", action="store_true",
                        help="restrict the application sweeps to the small problem size")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run independent experiments on N worker threads "
                             "(default: 1; the rendered output is identical for any N)")
    parser.add_argument("--output-dir", default="experiment_results",
                        help="directory for the rendered tables (default: experiment_results/)")
    args = parser.parse_args()

    outputs = run_experiments(args.experiments or None, quick=args.quick, echo=print,
                              jobs=args.jobs)

    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for key, text in outputs.items():
        (out_dir / f"{key}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\nwrote {len(outputs)} result file(s) to {out_dir}/")


if __name__ == "__main__":
    main()
