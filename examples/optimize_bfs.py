#!/usr/bin/env python3
"""Case study: using OMPDataPerf's report to optimise Rodinia's bfs.

This mirrors Section 7.5 of the paper: the shipped bfs offload port bounces
a termination flag between host and device every BFS level; the report
attributes the duplicate transfers, round trips and repeated allocations to
the flag's map clause and predicts the benefit of fixing it; the fixed
variant (loop check moved into the target region) then realises roughly the
predicted speedup (~2.1x at the small problem size).

Run with::

    python examples/optimize_bfs.py [small|medium|large]
"""

import sys

from repro import OMPDataPerf
from repro.apps.base import AppVariant, ProblemSize
from repro.apps.registry import get_app
from repro.core.profiler import run_uninstrumented


def main() -> None:
    size = ProblemSize.parse(sys.argv[1]) if len(sys.argv) > 1 else ProblemSize.SMALL
    app = get_app("bfs")
    tool = OMPDataPerf()

    print(f"=== Analysing the shipped bfs ({size.value} input) ===")
    baseline = tool.profile(
        app.build_program(size, AppVariant.BASELINE),
        program_name=app.program_name(size, AppVariant.BASELINE),
    )
    print(baseline.render_report())

    predicted = baseline.analysis.potential.predicted_speedup
    base_native = run_uninstrumented(app.build_program(size, AppVariant.BASELINE))
    fixed_native = run_uninstrumented(app.build_program(size, AppVariant.FIXED))
    actual = base_native / fixed_native

    print()
    print("=== Applying the paper's fix (loop check moved onto the device) ===")
    fixed = tool.profile(
        app.build_program(size, AppVariant.FIXED),
        program_name=app.program_name(size, AppVariant.FIXED),
    )
    print(f"issues before fix : {baseline.analysis.counts.as_dict()}")
    print(f"issues after fix  : {fixed.analysis.counts.as_dict()}")
    print(f"predicted speedup : {predicted:.2f}x")
    print(f"actual speedup    : {actual:.2f}x "
          f"({base_native * 1e3:.3f} ms -> {fixed_native * 1e3:.3f} ms)")


if __name__ == "__main__":
    main()
