"""Shared fixtures and trace-construction helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events.records import DataOpEvent, DataOpKind, TargetEvent, TargetKind
from repro.events.trace import Trace


class TraceBuilder:
    """Convenience builder for hand-written traces.

    Events are appended with automatically increasing sequence numbers and a
    simple advancing clock; every helper returns the created event so tests
    can refer to it later.
    """

    def __init__(self, num_devices: int = 1) -> None:
        self.trace = Trace(num_devices=num_devices, program_name="test")
        self._seq = 0
        self._time = 0.0

    # ------------------------------------------------------------------ #
    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _span(self, duration: float) -> tuple[float, float]:
        start = self._time
        self._time += duration
        return start, self._time

    @property
    def host(self) -> int:
        return self.trace.host_device_num

    # ------------------------------------------------------------------ #
    def alloc(self, host_addr: int, device_addr: int, nbytes: int = 1024,
              device: int = 0, duration: float = 1e-5, codeptr: int | None = None) -> DataOpEvent:
        start, end = self._span(duration)
        event = DataOpEvent(
            seq=self._next_seq(), kind=DataOpKind.ALLOC,
            src_device_num=self.host, dest_device_num=device,
            src_addr=host_addr, dest_addr=device_addr, nbytes=nbytes,
            start_time=start, end_time=end, codeptr=codeptr,
        )
        self.trace.append_data_op_event(event)
        return event

    def delete(self, host_addr: int, device_addr: int, nbytes: int = 1024,
               device: int = 0, duration: float = 5e-6, codeptr: int | None = None) -> DataOpEvent:
        start, end = self._span(duration)
        event = DataOpEvent(
            seq=self._next_seq(), kind=DataOpKind.DELETE,
            src_device_num=self.host, dest_device_num=device,
            src_addr=host_addr, dest_addr=device_addr, nbytes=nbytes,
            start_time=start, end_time=end, codeptr=codeptr,
        )
        self.trace.append_data_op_event(event)
        return event

    def h2d(self, host_addr: int, device_addr: int, content_hash: int, nbytes: int = 1024,
            device: int = 0, duration: float = 2e-5, codeptr: int | None = None) -> DataOpEvent:
        start, end = self._span(duration)
        event = DataOpEvent(
            seq=self._next_seq(), kind=DataOpKind.TRANSFER_TO_DEVICE,
            src_device_num=self.host, dest_device_num=device,
            src_addr=host_addr, dest_addr=device_addr, nbytes=nbytes,
            start_time=start, end_time=end, content_hash=content_hash, codeptr=codeptr,
        )
        self.trace.append_data_op_event(event)
        return event

    def d2h(self, host_addr: int, device_addr: int, content_hash: int, nbytes: int = 1024,
            device: int = 0, duration: float = 2e-5, codeptr: int | None = None) -> DataOpEvent:
        start, end = self._span(duration)
        event = DataOpEvent(
            seq=self._next_seq(), kind=DataOpKind.TRANSFER_FROM_DEVICE,
            src_device_num=device, dest_device_num=self.host,
            src_addr=device_addr, dest_addr=host_addr, nbytes=nbytes,
            start_time=start, end_time=end, content_hash=content_hash, codeptr=codeptr,
        )
        self.trace.append_data_op_event(event)
        return event

    def kernel(self, device: int = 0, duration: float = 1e-4,
               codeptr: int | None = None, name: str | None = None) -> TargetEvent:
        start, end = self._span(duration)
        event = TargetEvent(
            seq=self._next_seq(), kind=TargetKind.TARGET, device_num=device,
            start_time=start, end_time=end, codeptr=codeptr, name=name,
        )
        self.trace.append_target_event(event)
        return event

    def idle(self, duration: float) -> None:
        """Advance time without recording an event."""
        self._span(duration)

    def build(self) -> Trace:
        self.trace.total_runtime = max(self._time, self.trace.end_time)
        return self.trace


@pytest.fixture
def builder() -> TraceBuilder:
    return TraceBuilder()


@pytest.fixture
def small_arrays():
    """A few distinct numpy arrays used by runtime-level tests."""
    rng = np.random.default_rng(7)
    return {
        "a": rng.random(128),
        "b": rng.random(128),
        "c": rng.random(64),
        "flag": np.zeros(1),
    }
