"""Tests for the offload runtime simulator: mapping semantics, events, costs."""

import numpy as np
import pytest

from repro.core.collector import TraceCollector
from repro.events.records import DataOpKind, TargetKind
from repro.omp.costmodel import CostModel, TransferDirection
from repro.omp.errors import MappingError, OutOfDeviceMemoryError, UnmappedAccessError
from repro.omp.mapping import release, to, tofrom
from repro.omp.runtime import OffloadRuntime
from repro.ompt.interface import OmptInterface


def _instrumented_runtime(num_devices: int = 1):
    ompt = OmptInterface()
    collector = TraceCollector(overhead_model=None)
    ompt.connect_tool(collector)
    rt = OffloadRuntime(num_devices=num_devices, ompt=ompt)
    return rt, collector


class TestMappingSemantics:
    def test_target_maps_and_unmaps(self, small_arrays):
        rt, collector = _instrumented_runtime()
        a = small_arrays["a"]
        rt.target(maps=[to(a)], reads=[a], kernel=None)
        assert rt.environment().find_array(a) is None  # unmapped after region
        total = rt.finish()
        trace = collector.finish_trace(total_runtime=total)
        kinds = [e.kind for e in trace.data_op_events]
        assert kinds == [DataOpKind.ALLOC, DataOpKind.TRANSFER_TO_DEVICE, DataOpKind.DELETE]

    def test_tofrom_copies_back(self, small_arrays):
        rt, _ = _instrumented_runtime()
        a = small_arrays["a"].copy()
        original = a.copy()
        rt.target(maps=[tofrom(a)], reads=[a], writes=[a],
                  kernel=lambda dev: dev[a].__imul__(2.0))
        rt.finish()
        assert np.allclose(a, original * 2.0)

    def test_to_does_not_copy_back(self, small_arrays):
        rt, _ = _instrumented_runtime()
        a = small_arrays["a"].copy()
        original = a.copy()
        rt.target(maps=[to(a)], reads=[a], writes=[a],
                  kernel=lambda dev: dev[a].__imul__(2.0))
        rt.finish()
        assert np.allclose(a, original)

    def test_target_data_keeps_data_resident(self, small_arrays):
        rt, collector = _instrumented_runtime()
        a = small_arrays["a"]
        with rt.target_data(to(a)):
            rt.target(reads=[a], kernel=None)
            rt.target(reads=[a], kernel=None)
        total = rt.finish()
        trace = collector.finish_trace(total_runtime=total)
        # Data stays resident across both kernels: exactly one transfer/alloc.
        assert len(trace.transfers_to_devices()) == 1
        assert len(trace.allocations()) == 1

    def test_reference_counting_defers_release(self, small_arrays):
        rt, _ = _instrumented_runtime()
        a = small_arrays["a"]
        with rt.target_data(to(a)):
            with rt.target_data(to(a)):
                assert rt.environment().find_array(a).ref_count == 2
            assert rt.environment().find_array(a).ref_count == 1
        assert rt.environment().find_array(a) is None
        rt.finish()

    def test_implicit_tofrom_mapping(self, small_arrays):
        rt, collector = _instrumented_runtime()
        a = small_arrays["a"]
        rt.target(reads=[a], kernel=None)  # no explicit map clause
        total = rt.finish()
        trace = collector.finish_trace(total_runtime=total)
        kinds = [e.kind for e in trace.data_op_events]
        assert DataOpKind.TRANSFER_TO_DEVICE in kinds
        assert DataOpKind.TRANSFER_FROM_DEVICE in kinds

    def test_enter_exit_data_lifetime(self, small_arrays):
        rt, collector = _instrumented_runtime()
        a = small_arrays["a"]
        rt.target_enter_data(to(a))
        rt.target(reads=[a], kernel=None)
        rt.target_exit_data(release(a))
        total = rt.finish()
        trace = collector.finish_trace(total_runtime=total)
        assert len(trace.allocations()) == 1
        assert len(trace.deletions()) == 1

    def test_target_update_requires_presence(self, small_arrays):
        rt, _ = _instrumented_runtime()
        with pytest.raises(MappingError):
            rt.target_update(to=[small_arrays["a"]])

    def test_target_update_moves_data(self, small_arrays):
        rt, collector = _instrumented_runtime()
        a = small_arrays["a"].copy()
        with rt.target_data(to(a)):
            a[:] = 123.0
            rt.target_update(to=[a])
            rt.target(reads=[a], writes=[a], kernel=lambda dev: dev[a].__iadd__(1.0))
            rt.target_update(from_=[a])
        rt.finish()
        assert np.allclose(a, 124.0)

    def test_always_modifier_forces_transfer(self, small_arrays):
        rt, collector = _instrumented_runtime()
        a = small_arrays["a"]
        with rt.target_data(to(a)):
            rt.target(maps=[to(a, always=True)], reads=[a], kernel=None)
        total = rt.finish()
        trace = collector.finish_trace(total_runtime=total)
        assert len(trace.transfers_to_devices()) == 2

    def test_exit_only_map_types_rejected_on_enter(self, small_arrays):
        rt, _ = _instrumented_runtime()
        with pytest.raises(MappingError):
            rt.target_enter_data(release(small_arrays["a"]))
        with pytest.raises(MappingError):
            rt.target(maps=[release(small_arrays["a"])], kernel=None)

    def test_unmapped_kernel_access_raises(self, small_arrays):
        rt, _ = _instrumented_runtime()
        a, b = small_arrays["a"], small_arrays["b"]
        with pytest.raises(UnmappedAccessError):
            rt.target(maps=[to(a)], kernel=lambda dev: dev[b].sum())

    def test_finish_with_live_mapping_is_an_error(self, small_arrays):
        rt, _ = _instrumented_runtime()
        rt.target_enter_data(to(small_arrays["a"]))
        with pytest.raises(MappingError):
            rt.finish()

    def test_use_after_finish_rejected(self, small_arrays):
        rt, _ = _instrumented_runtime()
        rt.finish()
        with pytest.raises(RuntimeError):
            rt.target(maps=[to(small_arrays["a"])], kernel=None)


class TestDevicesAndCosts:
    def test_virtual_time_accumulates(self, small_arrays):
        rt, _ = _instrumented_runtime()
        a = small_arrays["a"]
        rt.target(maps=[to(a)], reads=[a], kernel=None, kernel_time=1e-3)
        total = rt.finish()
        model = rt.cost_model
        expected_min = (
            model.alloc_time(a.nbytes)
            + model.transfer_time(a.nbytes, TransferDirection.HOST_TO_DEVICE)
            + 1e-3
            + model.delete_time(a.nbytes)
        )
        assert total >= expected_min

    def test_kernel_time_callable(self, small_arrays):
        rt, _ = _instrumented_runtime()
        a = small_arrays["a"]
        seen = {}
        rt.target(maps=[to(a)], reads=[a], kernel=None,
                  kernel_time=lambda nbytes: seen.setdefault("bytes", nbytes) and 1e-4 or 1e-4)
        rt.finish()
        assert seen["bytes"] == a.nbytes

    def test_negative_kernel_time_rejected(self, small_arrays):
        rt, _ = _instrumented_runtime()
        with pytest.raises(ValueError):
            rt.target(maps=[to(small_arrays["a"])], kernel=None, kernel_time=-1.0)

    def test_out_of_device_memory(self):
        rt = OffloadRuntime(device_memory_capacity=1024)
        big = np.zeros(4096)
        with pytest.raises(OutOfDeviceMemoryError):
            rt.target(maps=[to(big)], kernel=None)

    def test_multi_device_environments_independent(self, small_arrays):
        rt, _ = _instrumented_runtime(num_devices=2)
        a = small_arrays["a"]
        rt.target_enter_data(to(a), device_num=0)
        assert rt.environment(0).find_array(a) is not None
        assert rt.environment(1).find_array(a) is None
        rt.target_exit_data(release(a), device_num=0)
        rt.finish()

    def test_invalid_device_number_rejected(self, small_arrays):
        rt, _ = _instrumented_runtime()
        with pytest.raises(ValueError):
            rt.target(maps=[to(small_arrays["a"])], kernel=None, device_num=5)

    def test_host_compute_advances_clock(self):
        rt = OffloadRuntime()
        before = rt.clock.now
        rt.host_compute(seconds=0.5)
        assert rt.clock.now == pytest.approx(before + 0.5)
        with pytest.raises(ValueError):
            rt.host_compute(seconds=1.0, nbytes=10)

    def test_device_allocator_reuses_freed_addresses(self):
        rt = OffloadRuntime()
        pool = rt.device(0).memory
        first = pool.allocate(1000)
        pool.free(first.address)
        second = pool.allocate(1000)
        assert second.address == first.address
        assert pool.total_allocs == 2 and pool.total_frees == 1

    def test_cost_model_validation(self):
        with pytest.raises(ValueError):
            CostModel(h2d_bandwidth=0.0)
        with pytest.raises(ValueError):
            CostModel().transfer_time(-1, TransferDirection.HOST_TO_DEVICE)
        model = CostModel()
        assert model.transfer_time(1 << 20, TransferDirection.HOST_TO_DEVICE) > model.h2d_latency
        assert model.transfer_bandwidth(1 << 26, TransferDirection.HOST_TO_DEVICE) <= model.h2d_bandwidth


class TestOmptEmission:
    def test_callback_counts(self, small_arrays):
        rt, _ = _instrumented_runtime()
        a = small_arrays["a"]
        rt.target(maps=[to(a)], reads=[a], kernel=None)
        rt.finish()
        from repro.ompt.callbacks import CallbackType

        counts = rt.ompt.emission_counts
        assert counts[CallbackType.TARGET_EMI] == 2          # begin + end
        assert counts[CallbackType.TARGET_SUBMIT_EMI] == 2   # begin + end
        assert counts[CallbackType.TARGET_DATA_OP_EMI] == 6  # 3 ops x begin/end

    def test_source_attribution_points_at_caller(self, small_arrays):
        rt, collector = _instrumented_runtime()
        a = small_arrays["a"]
        rt.target(maps=[to(a)], reads=[a], kernel=None)
        total = rt.finish()
        trace = collector.finish_trace(total_runtime=total)
        location = rt.debug_info.lookup(trace.target_events[0].codeptr)
        assert location is not None
        assert location.file.endswith("test_runtime.py")

    def test_stripped_debug_info_degrades(self, small_arrays):
        rt, collector = _instrumented_runtime()
        a = small_arrays["a"]
        rt.target(maps=[to(a)], reads=[a], kernel=None)
        rt.finish()
        rt.debug_info.stripped = True
        assert rt.debug_info.lookup(collector.trace.target_events[0].codeptr) is None
